"""Process distribution strategies (paper Sec. 4.3)."""

from repro.distribution.strategies import (
    DistributionStrategy,
    RowCyclicDistribution,
    BlockCyclicDistribution,
    ElementCyclicDistribution,
    distribute_handles,
)

__all__ = [
    "DistributionStrategy",
    "RowCyclicDistribution",
    "BlockCyclicDistribution",
    "ElementCyclicDistribution",
    "distribute_handles",
]
