"""Process distribution strategies for matrix blocks (paper Sec. 4.3, Fig. 7).

* **Row cyclic** (HATRIX-DTD): every block of block-row ``i`` at a given HSS
  level is owned by process ``i mod P``.  After a merge, the two children rows
  collapse onto the parent's owner (``P0`` and ``P1`` merge into ``P0`` in
  Fig. 7), so upper levels use progressively fewer processes -- this keeps the
  number of tasks per process balanced against the task granularity.
* **Block cyclic** (STRUMPACK / LORAPO): blocks are dealt to a ``Pr x Pc``
  process grid in a round-robin fashion, the distribution used by ScaLAPACK.
* **Element cyclic** (Elemental): provided for completeness; modelled as a
  finer block-cyclic distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.runtime.data import DataHandle

__all__ = [
    "DistributionStrategy",
    "RowCyclicDistribution",
    "BlockCyclicDistribution",
    "ElementCyclicDistribution",
    "available_distributions",
    "distribute_handles",
    "strategy_by_name",
]


class DistributionStrategy:
    """Assigns an owning process to each :class:`DataHandle`.

    Handles are expected to carry ``meta`` entries describing their position:
    ``level`` (HSS level or 0 for single-level formats), ``row`` and ``col``
    (block indices).  Handles without position metadata go to process 0.
    """

    def __init__(self, nodes: int) -> None:
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        self.nodes = nodes

    def owner(self, handle: DataHandle) -> int:
        raise NotImplementedError

    def assign(self, handles: Iterable[DataHandle]) -> None:
        """Set ``handle.owner`` for every handle."""
        for handle in handles:
            handle.owner = self.owner(handle)


@dataclass
class _GridShape:
    rows: int
    cols: int


def _process_grid(nodes: int) -> _GridShape:
    """Nearly-square process grid ``Pr x Pc`` with ``Pr * Pc == nodes``."""
    rows = int(math.sqrt(nodes))
    while rows > 1 and nodes % rows != 0:
        rows -= 1
    return _GridShape(rows=max(rows, 1), cols=nodes // max(rows, 1))


class RowCyclicDistribution(DistributionStrategy):
    """HATRIX-DTD's row-cyclic distribution with merge-aware coarsening (Fig. 7).

    At the leaf level (``max_level``) block-row ``i`` belongs to process
    ``i mod P``.  At level ``l`` (counting from the root), only
    ``min(P, 2**l)`` processes participate; block-row ``i`` of that level
    belongs to process ``i mod min(P, 2**l)`` scaled so that the merged block
    lands on the process that owned the first of the two children rows.
    """

    def __init__(self, nodes: int, max_level: Optional[int] = None) -> None:
        super().__init__(nodes)
        self.max_level = max_level

    def owner(self, handle: DataHandle) -> int:
        meta = handle.meta
        if "row" not in meta:
            return 0
        row = int(meta["row"])
        level = int(meta.get("level", 0))
        max_level = self.max_level if self.max_level is not None else int(meta.get("max_level", level))
        # Number of block rows at this level of a complete binary HSS tree.
        rows_at_level = 2**level if level >= 0 else 1
        active = min(self.nodes, max(rows_at_level, 1))
        if active <= 0:
            return 0
        # The parent of rows (2k, 2k+1) is row k one level up; keeping
        # owner(level, 2k) == owner(level-1, k) makes the merge communication-free
        # for the left child, exactly as in Fig. 7.
        return row % active


class BlockCyclicDistribution(DistributionStrategy):
    """ScaLAPACK-style 2D block-cyclic distribution over a process grid."""

    def owner(self, handle: DataHandle) -> int:
        meta = handle.meta
        if "row" not in meta:
            return 0
        row = int(meta["row"])
        col = int(meta.get("col", row))
        grid = _process_grid(self.nodes)
        return (row % grid.rows) * grid.cols + (col % grid.cols)


class ElementCyclicDistribution(DistributionStrategy):
    """Elemental-style element-cyclic distribution (modelled as fine block-cyclic)."""

    def owner(self, handle: DataHandle) -> int:
        meta = handle.meta
        if "row" not in meta:
            return 0
        row = int(meta["row"])
        col = int(meta.get("col", row))
        level = int(meta.get("level", 0))
        return (row * 31 + col * 17 + level * 7) % self.nodes


def distribute_handles(
    handles: Iterable[DataHandle], strategy: DistributionStrategy
) -> None:
    """Assign owners to all handles with the given strategy (convenience wrapper)."""
    strategy.assign(handles)


_STRATEGIES = {
    "row": RowCyclicDistribution,
    "row-cyclic": RowCyclicDistribution,
    "block": BlockCyclicDistribution,
    "block-cyclic": BlockCyclicDistribution,
    "element": ElementCyclicDistribution,
    "element-cyclic": ElementCyclicDistribution,
}


def available_distributions() -> tuple:
    """The canonical (short) strategy names, sorted -- the single source of CLI choices."""
    return tuple(sorted(name for name in _STRATEGIES if "-" not in name))


def strategy_by_name(
    name: str, nodes: int, *, max_level: Optional[int] = None
) -> DistributionStrategy:
    """Construct a distribution strategy from its CLI/API name.

    Accepts ``"row"``/``"row-cyclic"`` (HATRIX-DTD), ``"block"``/
    ``"block-cyclic"`` (ScaLAPACK-style) and ``"element"``/``"element-cyclic"``
    (Elemental-style).  ``max_level`` is only honoured by the row-cyclic
    strategy (merge-aware coarsening).
    """
    try:
        cls = _STRATEGIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; expected one of {sorted(_STRATEGIES)}"
        ) from None
    if cls is RowCyclicDistribution:
        return cls(nodes, max_level=max_level)
    return cls(nodes)
