"""Kernel-matrix assembly.

:class:`KernelMatrix` is a lazy, symmetric-positive-definite view of the dense
interaction matrix ``A[i, j] = kernel(p_i, p_j) + shift * delta_ij``.  Blocks
are assembled on demand so that hierarchical constructions never materialise
the full ``N x N`` matrix unless explicitly asked to.

The diagonal shift makes the matrix strictly diagonally dominant (and hence
SPD), which the Cholesky-based ULV factorizations require.  A diagonal shift
does not change any off-diagonal block, so the low-rank structure exploited by
BLR/BLR2/HSS is unaffected -- this mirrors how the HATRIX and LORAPO test
drivers regularise their Green's-function matrices.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.geometry.points import PointCloud
from repro.kernels.base import Kernel, RadialKernel

__all__ = ["KernelMatrix", "build_dense", "estimate_spd_shift"]

IndexLike = Union[slice, Sequence[int], np.ndarray]


def estimate_spd_shift(kernel: RadialKernel, points: PointCloud, *, sample: int = 256, seed: int = 0) -> float:
    """Estimate a diagonal shift that makes the kernel matrix diagonally dominant.

    The shift is the maximum (over a random sample of rows) of the sum of
    absolute off-diagonal kernel values, which by Gershgorin's theorem
    guarantees positive definiteness once added to the diagonal.

    Parameters
    ----------
    kernel:
        A radial kernel.
    points:
        The point cloud.
    sample:
        Number of rows to sample when ``N`` is large (the row sums of radial
        kernels on a uniform grid vary slowly, so a sample is representative).
    seed:
        RNG seed used to choose the sampled rows.
    """
    n = points.n
    rng = np.random.default_rng(seed)
    rows = np.arange(n) if n <= sample else np.sort(rng.choice(n, size=sample, replace=False))
    block = kernel.matrix(points.coords[rows], points.coords)
    # Off-diagonal row sums: subtract the self-interaction term of each sampled row.
    self_val = np.abs(kernel.value_at_zero())
    row_sums = np.sum(np.abs(block), axis=1) - self_val
    # 10% safety margin over the largest sampled row sum
    return float(1.1 * np.max(row_sums))


class KernelMatrix:
    """Lazy SPD kernel matrix ``A = K + shift * I`` over a point cloud.

    Parameters
    ----------
    kernel:
        The interaction kernel.
    points:
        Point cloud defining rows/columns.
    shift:
        Diagonal shift.  ``"auto"`` (default) estimates a shift that makes the
        matrix diagonally dominant; a float uses that value; ``0`` disables
        the shift.
    """

    def __init__(
        self,
        kernel: Kernel,
        points: PointCloud,
        *,
        shift: Union[float, str] = "auto",
    ) -> None:
        self.kernel = kernel
        self.points = points
        if shift == "auto":
            if not isinstance(kernel, RadialKernel):
                raise ValueError("automatic shift estimation requires a RadialKernel")
            self.shift = estimate_spd_shift(kernel, points)
        else:
            self.shift = float(shift)

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.points.n

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def _resolve(self, idx: IndexLike) -> np.ndarray:
        if isinstance(idx, slice):
            return np.arange(*idx.indices(self.n))
        return np.asarray(idx, dtype=np.intp)

    def block(self, rows: IndexLike, cols: IndexLike) -> np.ndarray:
        """Assemble the dense sub-block ``A[rows, cols]`` (including diagonal shift)."""
        r = self._resolve(rows)
        c = self._resolve(cols)
        block = self.kernel.matrix(self.points.coords[r], self.points.coords[c])
        if self.shift != 0.0:
            eq = r[:, None] == c[None, :]
            if np.any(eq):
                block = block + self.shift * eq
        return block

    def diagonal_block(self, start: int, stop: int) -> np.ndarray:
        """Assemble the diagonal block ``A[start:stop, start:stop]``."""
        return self.block(slice(start, stop), slice(start, stop))

    def dense(self) -> np.ndarray:
        """Materialise the full dense matrix (only sensible for moderate N)."""
        a = self.kernel.matrix(self.points.coords, self.points.coords)
        if self.shift != 0.0:
            a[np.diag_indices_from(a)] += self.shift
        return a

    def matvec(self, x: np.ndarray, *, block_rows: int = 2048) -> np.ndarray:
        """Dense matrix-vector product computed in row panels of ``block_rows``.

        Used by the construction-error metric (Eq. 18) without ever holding
        the full dense matrix in memory.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.empty_like(x)
        for start in range(0, self.n, block_rows):
            stop = min(start + block_rows, self.n)
            panel = self.kernel.matrix(self.points.coords[start:stop], self.points.coords)
            y[start:stop] = panel @ x
        if self.shift != 0.0:
            y = y + self.shift * x
        return y

    def __repr__(self) -> str:
        return f"KernelMatrix(kernel={self.kernel!r}, n={self.n}, shift={self.shift:.3g})"


def build_dense(kernel: Kernel, points: PointCloud, *, shift: Union[float, str] = "auto") -> np.ndarray:
    """Convenience wrapper: assemble the full dense SPD kernel matrix."""
    return KernelMatrix(kernel, points, shift=shift).dense()
