"""Green's-function kernels and kernel-matrix assembly (paper Table 3)."""

from repro.kernels.base import Kernel, RadialKernel
from repro.kernels.greens import (
    Laplace2D,
    Yukawa,
    Matern,
    Gaussian,
    InverseDistance,
    Exponential,
    kernel_by_name,
    PAPER_KERNELS,
)
from repro.kernels.assembly import KernelMatrix, build_dense, estimate_spd_shift

__all__ = [
    "Kernel",
    "RadialKernel",
    "Laplace2D",
    "Yukawa",
    "Matern",
    "Gaussian",
    "InverseDistance",
    "Exponential",
    "kernel_by_name",
    "PAPER_KERNELS",
    "KernelMatrix",
    "build_dense",
    "estimate_spd_shift",
]
