"""The Green's-function kernels of paper Table 3 plus a few standard extras.

Paper Table 3:

==========  ==========================================================  ==================
Kernel      Equation                                                    Constants
==========  ==========================================================  ==================
Laplace 2D  ``f(x, y) = -ln(eps + dist(x, y))``                         ``eps = 1e-9``
Yukawa      ``f(x, y) = exp(-alpha * (theta + d)) / (theta + d)``       ``alpha=1, theta=1e-9``
Matern      ``f(x, y) = sigma^2/(2^(rho-1) Gamma(rho)) (d/mu)^rho        ``sigma=1, mu=0.03,
            K_rho(d/mu)``  (``sigma^2`` at d = 0)                        rho=0.5``
==========  ==========================================================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy.special import gamma as gamma_fn
from scipy.special import kv as bessel_kv

from repro.kernels.base import RadialKernel

__all__ = [
    "Laplace2D",
    "Yukawa",
    "Matern",
    "Gaussian",
    "Exponential",
    "InverseDistance",
    "kernel_by_name",
    "PAPER_KERNELS",
]


@dataclass(frozen=True)
class Laplace2D(RadialKernel):
    """2D Laplace (single-layer) Green's function ``-ln(eps + r)``."""

    eps: float = 1e-9
    name: str = "laplace2d"

    def evaluate(self, dist: np.ndarray) -> np.ndarray:
        return -np.log(self.eps + np.asarray(dist, dtype=np.float64))


@dataclass(frozen=True)
class Yukawa(RadialKernel):
    """Yukawa (screened Coulomb) kernel ``exp(-alpha (theta + r)) / (theta + r)``."""

    alpha: float = 1.0
    theta: float = 1e-9
    name: str = "yukawa"

    def evaluate(self, dist: np.ndarray) -> np.ndarray:
        r = self.theta + np.asarray(dist, dtype=np.float64)
        return np.exp(-self.alpha * r) / r


@dataclass(frozen=True)
class Matern(RadialKernel):
    """Matern covariance kernel used in geostatistics.

    ``f(r) = sigma^2 / (2^(rho-1) Gamma(rho)) * (r / mu)^rho * K_rho(r / mu)``
    and ``f(0) = sigma^2``.  With ``rho = 0.5`` this reduces to the
    exponential covariance ``sigma^2 exp(-r / mu)``.
    """

    sigma: float = 1.0
    mu: float = 0.03
    rho: float = 0.5
    name: str = "matern"

    def evaluate(self, dist: np.ndarray) -> np.ndarray:
        r = np.asarray(dist, dtype=np.float64)
        scaled = r / self.mu
        out = np.full(r.shape, self.sigma**2, dtype=np.float64)
        # Below this threshold x^rho * K_rho(x) is numerically unstable (K_rho
        # overflows); the analytic limit for x -> 0 is sigma^2, already set.
        nz = scaled > 1e-10
        if np.any(nz):
            coef = self.sigma**2 / (2.0 ** (self.rho - 1.0) * gamma_fn(self.rho))
            vals = coef * np.power(scaled[nz], self.rho) * bessel_kv(self.rho, scaled[nz])
            out[nz] = vals
        return out


@dataclass(frozen=True)
class Gaussian(RadialKernel):
    """Squared-exponential kernel ``sigma^2 exp(-r^2 / (2 l^2))``."""

    sigma: float = 1.0
    length_scale: float = 0.1
    name: str = "gaussian"

    def evaluate(self, dist: np.ndarray) -> np.ndarray:
        r = np.asarray(dist, dtype=np.float64)
        return self.sigma**2 * np.exp(-0.5 * (r / self.length_scale) ** 2)


@dataclass(frozen=True)
class Exponential(RadialKernel):
    """Exponential covariance ``sigma^2 exp(-r / l)`` (Matern with rho = 1/2)."""

    sigma: float = 1.0
    length_scale: float = 0.1
    name: str = "exponential"

    def evaluate(self, dist: np.ndarray) -> np.ndarray:
        r = np.asarray(dist, dtype=np.float64)
        return self.sigma**2 * np.exp(-r / self.length_scale)


@dataclass(frozen=True)
class InverseDistance(RadialKernel):
    """3D Laplace (Coulomb) kernel ``1 / (eps + r)``."""

    eps: float = 1e-9
    name: str = "inverse_distance"

    def evaluate(self, dist: np.ndarray) -> np.ndarray:
        return 1.0 / (self.eps + np.asarray(dist, dtype=np.float64))


#: The three kernels evaluated in the paper, with the paper's constants.
PAPER_KERNELS: Dict[str, RadialKernel] = {
    "laplace2d": Laplace2D(eps=1e-9),
    "yukawa": Yukawa(alpha=1.0, theta=1e-9),
    "matern": Matern(sigma=1.0, mu=0.03, rho=0.5),
}


def kernel_by_name(name: str, **params: float) -> RadialKernel:
    """Construct a kernel by name (``laplace2d``, ``yukawa``, ``matern``, ...).

    Keyword arguments override the default constants.
    """
    registry = {
        "laplace2d": Laplace2D,
        "laplace": Laplace2D,
        "yukawa": Yukawa,
        "matern": Matern,
        "gaussian": Gaussian,
        "exponential": Exponential,
        "inverse_distance": InverseDistance,
    }
    key = name.lower()
    if key not in registry:
        raise KeyError(f"unknown kernel {name!r}; known: {sorted(set(registry))}")
    return registry[key](**params)
