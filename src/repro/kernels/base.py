"""Kernel interfaces.

A kernel maps a pair of points to a real interaction value.  All kernels in
the paper (Table 3) are *radial*: they depend only on the Euclidean distance
between the two points, which lets the assembly code evaluate them on a dense
distance matrix in a fully vectorised way.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Kernel", "RadialKernel", "pairwise_distance"]


def pairwise_distance(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix between rows of ``x`` (m, d) and ``y`` (n, d).

    Uses the expanded form ``|x|^2 + |y|^2 - 2 x.y`` so the dominant cost is a
    single GEMM, with clipping to guard against negative round-off.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    x_sq = np.sum(x * x, axis=1)[:, None]
    y_sq = np.sum(y * y, axis=1)[None, :]
    d2 = x_sq + y_sq - 2.0 * (x @ y.T)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2, out=d2)


class Kernel:
    """Base class of all interaction kernels.

    Subclasses implement :meth:`matrix` (pairwise evaluation between two
    coordinate sets).  The kernel name is used by experiment drivers and in
    reports.
    """

    name: str = "kernel"

    def matrix(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Evaluate the kernel between all rows of ``x`` and all rows of ``y``."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.matrix(x, y)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RadialKernel(Kernel):
    """A kernel that is a function of the Euclidean distance only."""

    def evaluate(self, dist: np.ndarray) -> np.ndarray:
        """Evaluate the kernel on an array of distances (vectorised)."""
        raise NotImplementedError

    def matrix(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.evaluate(pairwise_distance(x, y))

    def value_at_zero(self) -> float:
        """Kernel value at distance zero (the diagonal of the kernel matrix)."""
        return float(self.evaluate(np.zeros(1))[0])
