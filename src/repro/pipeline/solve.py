"""Solve graph builders on the shared scaffold (factorize once, solve many).

The three ULV solve phases -- forward elimination of the redundant unknowns,
the small dense root solve, and back-substitution -- recorded as
``insert_task`` graphs that *read* the immutable factor pieces and read/write
per-panel right-hand-side blocks:

:class:`HSSULVSolveBuilder`
    The multi-level graph (Eq. 17) over an
    :class:`~repro.core.hss_ulv.HSSULVFactor`.

:class:`LeafULVSolveBuilder`
    The single-level graph (Eq. 15) over any leaf-ULV factor
    (:class:`~repro.core.blr2_ulv.BLR2ULVFactor`,
    :class:`~repro.core.hodlr_ulv.HODLRULVFactor`).

Multi-RHS blocks are split into independent column panels, each carrying its
own forward/root/backward task chain (scaffolded by
:class:`~repro.pipeline.builder.SolveGraphBuilder`); every backend produces
solutions bit-identical to the sequential reference solves.
:func:`solve_through_builder` is the shared driver handling the legacy
``runtime``/``execution`` arguments and the optional one-step iterative
refinement.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

import numpy as np
import scipy.linalg

from repro.pipeline.builder import SolveGraphBuilder
from repro.pipeline.factorize import leaf_virtual_level
from repro.pipeline.panels import refine_once
from repro.pipeline.policy import ExecutionPolicy, resolve_policy
from repro.runtime.dtd import DTDRuntime
from repro.runtime.flops import (
    flops_solve_backward,
    flops_solve_forward,
    flops_solve_root,
)
from repro.runtime.task import AccessMode

__all__ = [
    "HSSULVSolveBuilder",
    "LeafULVSolveBuilder",
    "solve_through_builder",
]


def solve_through_builder(
    builder_cls: Type[SolveGraphBuilder],
    factor,
    b: np.ndarray,
    *,
    runtime: Optional[DTDRuntime] = None,
    execution: Optional[str] = None,
    nodes: int = 1,
    distribution=None,
    n_workers: int = 4,
    panel_size: Optional[int] = None,
    refine: bool = False,
    matvec=None,
    default_op=None,
    policy: Optional[ExecutionPolicy] = None,
) -> Tuple[np.ndarray, DTDRuntime]:
    """Record, execute and post-process one task-graph solve.

    Returns ``(x, runtime)`` with ``x`` shaped like ``b``.  ``refine=True``
    solves the residual against ``matvec`` (default: ``default_op``, the
    factorized operator) through a second recorded graph on the same backend
    and adds the correction.
    """
    if policy is None:
        policy, runtime = resolve_policy(
            runtime,
            execution,
            nodes=nodes,
            distribution=distribution,
            n_workers=n_workers,
            panel_size=panel_size,
        )
    builder = builder_cls(factor, b, policy=policy, runtime=runtime)
    builder.execute()
    x = builder.result()
    if refine:
        op = matvec if matvec is not None else default_op

        def solve_residual(r: np.ndarray) -> np.ndarray:
            # A fresh recording per refinement step; with a caller-supplied
            # runtime the fresh one copies its recording mode.
            fresh = (
                DTDRuntime(execution=builder.runtime.execution)
                if runtime is not None
                else None
            )
            return builder_cls(factor, r, policy=policy, runtime=fresh).run()

        x = refine_once(solve_residual, op, builder.bm, x)
    return (x[:, 0] if builder.single else x), builder.runtime


class HSSULVSolveBuilder(SolveGraphBuilder):
    """The forward/root/backward HSS-ULV solve graph for one RHS block."""

    def __init__(self, factor, b, *, policy=None, runtime=None) -> None:
        super().__init__(factor, b, policy=policy, runtime=runtime)
        self.max_level = factor.hss.max_level
        # Mutable per-panel stores the task bodies operate on.
        self._work: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._zs: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._bs: Dict[Tuple[int, int, int], np.ndarray] = {}
        # Handles.
        self._fac: Dict[Tuple[int, int], object] = {}
        self._root = None
        self._work_h: Dict[Tuple[int, int, int], object] = {}
        self._z_h: Dict[Tuple[int, int, int], object] = {}
        self._s_h: Dict[Tuple[int, int, int], object] = {}
        self._sol_h: Dict[Tuple[int, int, int], object] = {}

    @property
    def n(self) -> int:
        return self.factor.hss.n

    def declare_handles(self) -> None:
        factor, ns, max_level = self.factor, self.ns, self.max_level
        # Immutable factor handles: read-only inputs of every solve task.
        # They have no writer, so they never cross a process boundary (forked
        # workers inherit the factors), but declaring them keeps the recorded
        # graph an honest description of the data each task touches.
        for (level, i), nf in sorted(factor.node_factors.items()):
            self._fac[(level, i)] = self.handle(
                f"ULV[{level};{i}]{ns}",
                nf.U.nbytes + nf.partial.L_rr.nbytes + nf.partial.L_sr.nbytes,
                level=level,
                row=i,
            )
        self._root = self.handle(
            f"ULV_ROOT{ns}", factor.root_chol.nbytes, level=0, row=0
        )
        # Per-panel RHS/solution handles, bound to the stores so the
        # distributed backend can move their values between processes.
        for p, cols in enumerate(self.panels):
            pw = cols.stop - cols.start
            for level in range(max_level, -1, -1):
                for i in range(2**level):
                    if level > 0:
                        nf = factor.node_factors[(level, i)]
                        m, r = nf.block_size, nf.rank
                    else:
                        m = r = factor.root_chol.shape[0]
                    self._work_h[(p, level, i)] = self.handle(
                        f"B[{level};{i};p{p}]{ns}", 8 * m * pw,
                        level=level, row=i, panel=p,
                    ).bind_item(self._work, (p, level, i))
                    self._sol_h[(p, level, i)] = self.handle(
                        f"X[{level};{i};p{p}]{ns}", 8 * m * pw,
                        level=level, row=i, panel=p,
                    ).bind_item(self.sol, (p, level, i))
                    if level > 0:
                        self._z_h[(p, level, i)] = self.handle(
                            f"Z[{level};{i};p{p}]{ns}", 8 * (m - r) * pw,
                            level=level, row=i, panel=p,
                        ).bind_item(self._zs, (p, level, i))
                        self._s_h[(p, level, i)] = self.handle(
                            f"BS[{level};{i};p{p}]{ns}", 8 * r * pw,
                            level=level, row=i, panel=p,
                        ).bind_item(self._bs, (p, level, i))

    def seed(self) -> None:
        # Leaf RHS blocks (inherited by forked workers).
        hss = self.factor.hss
        for p, cols in enumerate(self.panels):
            for i in range(2**self.max_level):
                node = hss.node(self.max_level, i)
                self._work[(p, self.max_level, i)] = self.bm[node.start : node.stop, cols].copy()

    def record_tasks(self) -> None:
        factor, max_level = self.factor, self.max_level
        work, zs, bs, sol = self._work, self._zs, self._bs, self.sol
        for p, cols in enumerate(self.panels):
            pw = cols.stop - cols.start

            # Forward pass: rotate, eliminate redundant unknowns, merge upward.
            for level in range(max_level, 0, -1):
                self.set_phase(max_level - level)
                for i in range(2**level):
                    nf = factor.node_factors[(level, i)]

                    def forward(p=p, level=level, i=i, nf=nf) -> None:
                        bhat = nf.U.T @ work[(p, level, i)]
                        nr = nf.redundant_size
                        br, bsi = bhat[:nr], bhat[nr:]
                        if nr > 0:
                            z = scipy.linalg.solve_triangular(nf.partial.L_rr, br, lower=True)
                            bsi = bsi - nf.partial.L_sr @ z
                        else:
                            z = br
                        zs[(p, level, i)] = z
                        bs[(p, level, i)] = bsi

                    self.insert(
                        forward,
                        [
                            (self._fac[(level, i)], AccessMode.READ),
                            (self._work_h[(p, level, i)], AccessMode.READ),
                            (self._z_h[(p, level, i)], AccessMode.WRITE),
                            (self._s_h[(p, level, i)], AccessMode.WRITE),
                        ],
                        name=f"FWD[{level};{i};p{p}]",
                        kind="SOLVE_FWD",
                        flops=flops_solve_forward(nf.block_size, nf.rank, pw),
                    )
                for k in range(2 ** (level - 1)):

                    def merge_rhs(p=p, level=level, k=k) -> None:
                        work[(p, level - 1, k)] = np.vstack(
                            [bs[(p, level, 2 * k)], bs[(p, level, 2 * k + 1)]]
                        )

                    self.insert(
                        merge_rhs,
                        [
                            (self._s_h[(p, level, 2 * k)], AccessMode.READ),
                            (self._s_h[(p, level, 2 * k + 1)], AccessMode.READ),
                            (self._work_h[(p, level - 1, k)], AccessMode.WRITE),
                        ],
                        name=f"MERGE_RHS[{level - 1};{k};p{p}]",
                        kind="MERGE_RHS",
                    )

            # Root dense solve.
            def root_solve(p=p) -> None:
                y0 = scipy.linalg.solve_triangular(factor.root_chol, work[(p, 0, 0)], lower=True)
                sol[(p, 0, 0)] = scipy.linalg.solve_triangular(
                    factor.root_chol.T, y0, lower=False
                )

            self.set_phase(max_level)
            self.insert(
                root_solve,
                [
                    (self._root, AccessMode.READ),
                    (self._work_h[(p, 0, 0)], AccessMode.READ),
                    (self._sol_h[(p, 0, 0)], AccessMode.WRITE),
                ],
                name=f"ROOT_SOLVE[p{p}]",
                kind="SOLVE_ROOT",
                flops=flops_solve_root(factor.root_chol.shape[0], pw),
            )

            # Backward pass: un-merge, back-substitute, rotate back.
            for level in range(1, max_level + 1):
                self.set_phase(max_level + level)
                for i in range(2**level):
                    nf = factor.node_factors[(level, i)]
                    r_left = factor.node_factors[(level, 2 * (i // 2))].rank

                    def backward(p=p, level=level, i=i, nf=nf, r_left=r_left) -> None:
                        parent = sol[(p, level - 1, i // 2)]
                        ys = parent[:r_left] if i % 2 == 0 else parent[r_left:]
                        nr = nf.redundant_size
                        if nr > 0:
                            rhs = zs[(p, level, i)] - nf.partial.L_sr.T @ ys
                            yr = scipy.linalg.solve_triangular(nf.partial.L_rr.T, rhs, lower=False)
                        else:
                            yr = zs[(p, level, i)][:0]
                        sol[(p, level, i)] = nf.U @ np.vstack([yr, ys])

                    self.insert(
                        backward,
                        [
                            (self._fac[(level, i)], AccessMode.READ),
                            (self._sol_h[(p, level - 1, i // 2)], AccessMode.READ),
                            (self._z_h[(p, level, i)], AccessMode.READ),
                            (self._sol_h[(p, level, i)], AccessMode.WRITE),
                        ],
                        name=f"BWD[{level};{i};p{p}]",
                        kind="SOLVE_BWD",
                        flops=flops_solve_backward(nf.block_size, nf.rank, pw),
                    )

    # Ship only the leaf solution blocks (the ones gather() reads); the
    # interior sol entries are per-worker scratch.
    def collect_local(self):
        leaf_keys = [
            (p, self.max_level, i)
            for p in range(len(self.panels))
            for i in range(2**self.max_level)
        ]
        return {key: self.sol[key] for key in leaf_keys if key in self.sol}

    def gather(self) -> np.ndarray:
        hss = self.factor.hss
        x = np.empty_like(self.bm)
        for p, cols in enumerate(self.panels):
            for i in range(2**self.max_level):
                node = hss.node(self.max_level, i)
                x[node.start : node.stop, cols] = self.sol[(p, self.max_level, i)]
        return x


class LeafULVSolveBuilder(SolveGraphBuilder):
    """The forward/root/backward leaf-ULV solve graph for one RHS block.

    Works for any leaf-ULV factor (``system`` / ``bases`` / ``partials`` /
    ``merged_chol``): per block row one forward task, one root task against
    the merged Cholesky factor per panel, and per block row one
    back-substitution task.
    """

    def __init__(self, factor, b, *, policy=None, runtime=None) -> None:
        super().__init__(factor, b, policy=policy, runtime=runtime)
        # Same virtual tree level as the factorization graph, so the
        # row-cyclic strategy spreads the flat block rows identically.
        self.max_level = leaf_virtual_level(factor.system.nblocks)
        self._offsets = factor._skeleton_offsets()
        # Mutable per-panel stores the task bodies operate on.
        self._bin: Dict[Tuple[int, int], np.ndarray] = {}
        self._zs: Dict[Tuple[int, int], np.ndarray] = {}
        self._bs: Dict[Tuple[int, int], np.ndarray] = {}
        self._ys: Dict[int, np.ndarray] = {}
        # Handles.
        self._fac: Dict[int, object] = {}
        self._root = None
        self._bin_h: Dict[Tuple[int, int], object] = {}
        self._z_h: Dict[Tuple[int, int], object] = {}
        self._s_h: Dict[Tuple[int, int], object] = {}
        self._y_h: Dict[int, object] = {}
        self._sol_h: Dict[Tuple[int, int], object] = {}

    @property
    def n(self) -> int:
        return self.factor.system.n

    def declare_handles(self) -> None:
        factor, ns, level = self.factor, self.ns, self.max_level
        system = factor.system
        nb = system.nblocks
        # Immutable factor handles (no writers: inherited by forked workers).
        for i in range(nb):
            part = factor.partials[i]
            self._fac[i] = self.handle(
                f"ULV[{i}]{ns}",
                factor.bases[i].nbytes + part.L_rr.nbytes + part.L_sr.nbytes,
                level=level,
                row=i,
            )
        self._root = self.handle(
            f"ULV_ROOT{ns}", factor.merged_chol.nbytes, level=0, row=0
        )
        for p, cols in enumerate(self.panels):
            pw = cols.stop - cols.start
            for i in range(nb):
                rng = system.block_range(i)
                m = rng.stop - rng.start
                r = system.rank(i)
                self._bin_h[(p, i)] = self.handle(
                    f"B[{i};p{p}]{ns}", 8 * m * pw, level=level, row=i, panel=p
                ).bind_item(self._bin, (p, i))
                self._z_h[(p, i)] = self.handle(
                    f"Z[{i};p{p}]{ns}", 8 * (m - r) * pw, level=level, row=i, panel=p
                ).bind_item(self._zs, (p, i))
                self._s_h[(p, i)] = self.handle(
                    f"BS[{i};p{p}]{ns}", 8 * r * pw, level=level, row=i, panel=p
                ).bind_item(self._bs, (p, i))
                self._sol_h[(p, i)] = self.handle(
                    f"X[{i};p{p}]{ns}", 8 * m * pw, level=level, row=i, panel=p
                ).bind_item(self.sol, (p, i))
            self._y_h[p] = self.handle(
                f"Y[p{p}]{ns}", 8 * self._offsets[-1] * pw, level=0, row=0, panel=p
            ).bind_item(self._ys, p)

    def seed(self) -> None:
        system = self.factor.system
        for p, cols in enumerate(self.panels):
            for i in range(system.nblocks):
                self._bin[(p, i)] = self.bm[system.block_range(i), cols].copy()

    def record_tasks(self) -> None:
        factor, offsets = self.factor, self._offsets
        system = factor.system
        nb = system.nblocks
        bin_store, zs, bs, ys, sol = self._bin, self._zs, self._bs, self._ys, self.sol
        for p, cols in enumerate(self.panels):
            pw = cols.stop - cols.start

            self.set_phase(0)
            for i in range(nb):

                def forward(p=p, i=i) -> None:
                    bhat = factor.bases[i].T @ bin_store[(p, i)]
                    nr = factor.partials[i].redundant_size
                    br, bsi = bhat[:nr], bhat[nr:]
                    if nr > 0:
                        z = scipy.linalg.solve_triangular(factor.partials[i].L_rr, br, lower=True)
                        bsi = bsi - factor.partials[i].L_sr @ z
                    else:
                        z = br
                    zs[(p, i)] = z
                    bs[(p, i)] = bsi

                rng = system.block_range(i)
                m = rng.stop - rng.start
                self.insert(
                    forward,
                    [
                        (self._fac[i], AccessMode.READ),
                        (self._bin_h[(p, i)], AccessMode.READ),
                        (self._z_h[(p, i)], AccessMode.WRITE),
                        (self._s_h[(p, i)], AccessMode.WRITE),
                    ],
                    name=f"FWD[{i};p{p}]",
                    kind="SOLVE_FWD",
                    flops=flops_solve_forward(m, system.rank(i), pw),
                )

            def root_solve(p=p) -> None:
                # Stacking the skeleton blocks in row order yields exactly the
                # merged_rhs array of the sequential reference.
                merged_rhs = np.vstack([bs[(p, i)] for i in range(nb)])
                y = scipy.linalg.solve_triangular(factor.merged_chol, merged_rhs, lower=True)
                ys[p] = scipy.linalg.solve_triangular(factor.merged_chol.T, y, lower=False)

            self.set_phase(1)
            self.insert(
                root_solve,
                [(self._s_h[(p, i)], AccessMode.READ) for i in range(nb)]
                + [(self._root, AccessMode.READ), (self._y_h[p], AccessMode.WRITE)],
                name=f"ROOT_SOLVE[p{p}]",
                kind="SOLVE_ROOT",
                flops=flops_solve_root(offsets[-1], pw),
            )

            self.set_phase(2)
            for i in range(nb):

                def backward(p=p, i=i) -> None:
                    ysi = ys[p][offsets[i] : offsets[i + 1]]
                    nr = factor.partials[i].redundant_size
                    if nr > 0:
                        rhs = zs[(p, i)] - factor.partials[i].L_sr.T @ ysi
                        yr = scipy.linalg.solve_triangular(factor.partials[i].L_rr.T, rhs, lower=False)
                    else:
                        yr = zs[(p, i)][:0]
                    sol[(p, i)] = factor.bases[i] @ np.vstack([yr, ysi])

                rng = system.block_range(i)
                m = rng.stop - rng.start
                self.insert(
                    backward,
                    [
                        (self._fac[i], AccessMode.READ),
                        (self._y_h[p], AccessMode.READ),
                        (self._z_h[(p, i)], AccessMode.READ),
                        (self._sol_h[(p, i)], AccessMode.WRITE),
                    ],
                    name=f"BWD[{i};p{p}]",
                    kind="SOLVE_BWD",
                    flops=flops_solve_backward(m, system.rank(i), pw),
                )

    def gather(self) -> np.ndarray:
        system = self.factor.system
        x = np.empty_like(self.bm)
        for p, cols in enumerate(self.panels):
            for i in range(system.nblocks):
                x[system.block_range(i), cols] = self.sol[(p, i)]
        return x
