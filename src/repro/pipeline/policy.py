"""The single execution-backend description and dispatch point.

Before this layer existed, every entry point (the :class:`~repro.api.StructuredSolver`
facade, the CLI, the :class:`~repro.service.SolverService`) re-implemented the
``use_runtime`` normalization, and every ``*_dtd`` graph builder carried its own
``if distributed / elif parallel / else`` execution branch.  One
:class:`ExecutionPolicy` now captures the full backend selection -- backend
name, worker threads, worker processes, distribution strategy and RHS panel
width -- and :meth:`ExecutionPolicy.execute` is the only place in the codebase
that dispatches a recorded task graph onto a backend.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Union

from repro.distribution.strategies import (
    DistributionStrategy,
    RowCyclicDistribution,
    strategy_by_name,
)
from repro.runtime.dtd import DTDRuntime

__all__ = ["BACKENDS", "RUNTIME_BACKENDS", "ExecutionPolicy", "resolve_policy"]

#: Every execution backend, in the order the docs present them.  ``"off"`` is
#: the sequential reference implementation (no task graph); the rest record a
#: DTD task graph and differ only in how the recorded graph is executed.
BACKENDS = ("off", "immediate", "deferred", "parallel", "process", "distributed")

#: The backends that go through the DTD runtime (everything but ``"off"``).
RUNTIME_BACKENDS = BACKENDS[1:]


@dataclass(frozen=True)
class ExecutionPolicy:
    """How (and where) a recorded ULV task graph executes.

    Attributes
    ----------
    backend:
        ``"off"`` (sequential reference, no task graph), ``"immediate"``
        (task bodies run at insertion time), ``"deferred"`` (record first,
        then run sequentially), ``"parallel"`` (record first, then execute
        out-of-order on a thread pool), ``"process"`` (record first, fuse,
        then execute on a pool of forked worker processes -- GIL-free) or
        ``"distributed"`` (record first, then execute across forked worker
        processes with owner-computes placement).  All backends produce
        bit-identical results.
    n_workers:
        Thread count for the ``parallel`` backend, process count for the
        ``process`` backend.
    nodes:
        Process count for the data distribution (real worker processes for
        ``distributed``, simulated ranks otherwise).
    distribution:
        Placement strategy for the runtime backends: a
        :class:`~repro.distribution.strategies.DistributionStrategy` instance,
        a name (``"row"`` / ``"block"`` / ``"element"``), or None for the
        paper's row-cyclic default.
    panel_size:
        Columns per RHS panel of the task-graph solves; None keeps all
        columns in one panel (bit-identical to the sequential reference).
    fusion:
        Record-time task fusion/batching (:mod:`repro.runtime.fusion`):
        coalesce short same-phase task chains and batch independent
        same-kind tasks so each scheduled task amortizes its dispatch cost.
        ``None`` (default) enables fusion exactly where it is required --
        the ``process`` backend; ``True``/``False`` force it on the other
        deferred-graph backends.  Fusion never changes results (the member
        bodies run in insertion order), only the task census.
    batch_slots:
        Upper bound on the number of batches a wide task group is split
        into; ``None`` derives ``2 * n_workers`` so every worker keeps two
        batches in flight.
    trace:
        Record a measured :class:`~repro.runtime.tracing.ExecutionTrace`
        (per-task spans, per-worker breakdowns, Chrome-exportable timeline)
        of every runtime execution; the trace rides on the backend report
        (``report.trace``) and on :attr:`DTDRuntime.last_trace`.  Ignored by
        ``"off"`` (no task graph is recorded).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` accumulating task
        counters, latency histograms and memory gauges across every runtime
        execution under this policy (see :mod:`repro.obs.runtime_metrics` for
        the metric vocabulary).  Like ``trace``, ignored by ``"off"``.
    data_plane:
        Wire representation of cross-process edges on the ``distributed``
        backend: ``"shm"`` (zero-copy shared-memory segments, the default) or
        ``"pickle"`` (full pickled payloads); None defers to the backend's
        resolution (``REPRO_DATA_PLANE`` or the default).  Ignored by every
        other backend.
    """

    backend: str = "off"
    n_workers: int = 4
    nodes: int = 1
    distribution: Optional[Union[str, DistributionStrategy]] = None
    panel_size: Optional[int] = None
    fusion: Optional[bool] = None
    batch_slots: Optional[int] = None
    trace: bool = False
    metrics: Optional[Any] = None
    data_plane: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.data_plane is not None:
            from repro.runtime.distributed.blockstore import resolve_data_plane

            resolve_data_plane(self.data_plane)  # validate eagerly
        if self.fusion is not None and not self.fusion and self.backend == "process":
            raise ValueError(
                "the process backend requires fusion; per-leaf task chains pass "
                "state outside handles and must be coarsened to stay colocated"
            )
        if self.fusion and self.backend in ("off", "immediate"):
            raise ValueError(
                f"fusion requires a deferred-graph backend, not {self.backend!r} "
                "(immediate bodies run at insertion time; 'off' records no graph)"
            )

    # -- construction ---------------------------------------------------------
    @classmethod
    def resolve(
        cls,
        use_runtime: Union[bool, str] = False,
        *,
        n_workers: int = 4,
        nodes: int = 1,
        distribution: Optional[Union[str, DistributionStrategy]] = None,
        panel_size: Optional[int] = None,
        fusion: Optional[bool] = None,
        batch_slots: Optional[int] = None,
        trace: bool = False,
        metrics: Optional[Any] = None,
        data_plane: Optional[str] = None,
    ) -> "ExecutionPolicy":
        """Normalize a facade-style ``use_runtime`` argument into a policy.

        ``False`` maps to ``"off"``, ``True`` to ``"immediate"``; strings are
        validated against :data:`BACKENDS`.
        """
        backend = {False: "off", True: "immediate"}.get(use_runtime, use_runtime)
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown use_runtime {use_runtime!r}; expected False, True, "
                "'off', 'immediate', 'deferred', 'parallel', 'process' or "
                "'distributed'"
            )
        return cls(
            backend=backend,
            n_workers=n_workers,
            nodes=nodes,
            distribution=distribution,
            panel_size=panel_size,
            fusion=fusion,
            batch_slots=batch_slots,
            trace=trace,
            metrics=metrics,
            data_plane=data_plane,
        )

    @property
    def uses_runtime(self) -> bool:
        """True when this policy records (and executes) a DTD task graph."""
        return self.backend != "off"

    def with_backend(self, backend: str) -> "ExecutionPolicy":
        """A copy of this policy on a different backend."""
        return replace(self, backend=backend)

    @property
    def fusion_enabled(self) -> bool:
        """True when the graph builders should coarsen recorded graphs.

        ``fusion=None`` resolves to "on exactly for the process backend" --
        its workers rely on fused chains to keep non-handle state colocated.
        """
        if self.fusion is None:
            return self.backend == "process"
        return bool(self.fusion) and self.uses_runtime

    def resolve_batch_slots(self) -> int:
        """Concrete batch-count bound for :meth:`DTDRuntime.fuse`."""
        if self.batch_slots:
            return int(self.batch_slots)
        return 2 * max(1, self.n_workers)

    # -- runtime / strategy construction -------------------------------------
    def make_runtime(self) -> DTDRuntime:
        """A fresh :class:`DTDRuntime` in the recording mode this backend needs.

        ``parallel`` and ``distributed`` require a fully deferred graph; the
        sequential backends record in their own mode.
        """
        if self.backend in ("parallel", "process", "distributed"):
            return DTDRuntime(
                execution="deferred", trace=self.trace, metrics=self.metrics
            )
        if self.backend in ("immediate", "deferred"):
            return DTDRuntime(
                execution=self.backend, trace=self.trace, metrics=self.metrics
            )
        raise ValueError("backend 'off' does not record a task graph")

    def resolve_distribution(self, max_level: int) -> DistributionStrategy:
        """The concrete placement strategy (name or None resolved; instances pass through)."""
        if isinstance(self.distribution, str):
            return strategy_by_name(self.distribution, self.nodes, max_level=max_level)
        if self.distribution is None:
            return RowCyclicDistribution(self.nodes, max_level=max_level)
        return self.distribution

    # -- execution ------------------------------------------------------------
    def execute(
        self,
        runtime: DTDRuntime,
        *,
        strategy: Optional[DistributionStrategy] = None,
        collect: Optional[Callable[[], Any]] = None,
        merge: Optional[Callable[[Any], None]] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Execute ``runtime``'s recorded graph on this policy's backend.

        This is the single backend-dispatch implementation shared by every
        graph builder, the facade, the CLI and the service:

        * ``distributed`` runs the graph across :attr:`nodes` forked worker
          processes (``collect`` gathers per-worker result fragments, and
          ``merge`` is invoked on each returned fragment), returning the
          :class:`~repro.runtime.distributed.DistributedReport`;
        * ``parallel`` runs the graph out-of-order on a :attr:`n_workers`
          thread pool, returning the
          :class:`~repro.runtime.executor.ExecutionReport`;
        * every other backend finishes the graph sequentially in insertion
          order (a no-op for ``immediate`` bodies that already ran), returning
          None.
        """
        if self.trace and not runtime.trace:
            # A caller-supplied runtime may predate the policy; deferred
            # bodies have not run yet, so turning tracing on here still
            # captures every span (immediate bodies recorded their own).
            runtime.trace = True
        if self.metrics is not None and runtime.metrics is None:
            runtime.metrics = self.metrics
        if self.backend == "distributed":
            if runtime.num_tasks == 0:
                return None
            report = runtime.run_distributed(
                nodes=self.nodes, strategy=strategy, collect=collect,
                timeout=timeout, data_plane=self.data_plane,
            )
            if merge is not None:
                for fragment in report.fragments:
                    merge(fragment)
            return report
        if self.backend == "process":
            if runtime.num_tasks == 0:
                return None
            report = runtime.run_process(
                n_workers=self.n_workers, collect=collect, timeout=timeout
            )
            if merge is not None:
                for fragment in report.fragments:
                    merge(fragment)
            return report
        if self.backend == "parallel":
            return runtime.run_parallel(n_workers=self.n_workers, timeout=timeout)
        runtime.run()
        return None


def resolve_policy(
    runtime: Optional[DTDRuntime],
    execution: Optional[str],
    *,
    nodes: int = 1,
    distribution: Optional[Union[str, DistributionStrategy]] = None,
    n_workers: int = 4,
    panel_size: Optional[int] = None,
    data_plane: Optional[str] = None,
) -> tuple:
    """Resolve the legacy ``runtime`` / ``execution`` driver arguments.

    Mirrors the contract of the pre-pipeline ``*_dtd`` drivers: ``execution``
    names the backend (mutually exclusive with ``runtime``); an explicit
    ``runtime`` records into the caller's runtime and executes sequentially.
    Returns ``(policy, runtime)`` for a :class:`~repro.pipeline.builder.GraphBuilder`.
    """
    if execution is not None:
        if runtime is not None:
            raise ValueError("pass either `runtime` or `execution`, not both")
        if execution not in RUNTIME_BACKENDS:
            raise ValueError(
                f"unknown execution mode {execution!r}; "
                "expected 'immediate', 'deferred', 'parallel', 'process' or "
                "'distributed'"
            )
        backend = execution
    else:
        backend = "immediate"
    policy = ExecutionPolicy(
        backend=backend,
        nodes=nodes,
        n_workers=n_workers,
        distribution=distribution,
        panel_size=panel_size,
        data_plane=data_plane,
    )
    return policy, runtime
