"""RHS-panel plumbing shared by every task-graph solve builder.

Panel decomposition of a multi-RHS block, per-recording handle namespacing,
one-step iterative refinement, and a columnwise-safe operator application
(some operators -- ``BLR2Matrix.matvec`` among them -- only accept vectors).
Lifted out of ``repro.solve.common`` so the pipeline scaffold can use it
without importing the solve drivers (which are built *on* the scaffold);
``repro.solve.common`` re-exports everything for backward compatibility.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

__all__ = ["column_panels", "apply_operator", "handle_namespace", "refine_once"]


def handle_namespace(rt: Any) -> str:
    """Unique per-recording suffix for a solve's handle names.

    Handle names must be unique within a runtime; suffixing them with the
    current handle count lets repeated solves share one runtime (the
    ``runtime=`` parameter of the drivers) without colliding.  The first
    recording into a fresh runtime keeps the pretty unsuffixed names.
    """
    return f"@{len(rt.handles)}" if rt.handles else ""


def refine_once(
    solve_fn: Callable[[np.ndarray], np.ndarray], op: Any, bm: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """One iterative-refinement step: ``x + solve(b - A x)``.

    The single implementation shared by the task-graph solve builders and the
    sequential facade path, so the refinement semantics cannot drift between
    backends.  All arguments are 2-D ``(n, k)`` blocks.
    """
    return x + solve_fn(bm - apply_operator(op, x))


def column_panels(k: int, panel_size: Optional[int]) -> List[slice]:
    """Split ``k`` right-hand-side columns into contiguous column panels.

    ``panel_size=None`` (the default of the solve drivers) keeps all columns
    in a single panel, which makes the task-graph solve perform exactly the
    BLAS calls of the sequential reference and therefore stay bit-identical
    to it.  A positive ``panel_size`` yields ``ceil(k / panel_size)``
    independent task chains whose panels overlap inside the runtime.
    """
    if panel_size is not None and panel_size <= 0:
        raise ValueError(f"panel_size must be positive, got {panel_size}")
    if k <= 0:
        return []
    if panel_size is None or panel_size >= k:
        return [slice(0, k)]
    return [slice(s, min(s + panel_size, k)) for s in range(0, k, panel_size)]


def apply_operator(op: Any, x: np.ndarray) -> np.ndarray:
    """Apply a matvec-like operator to a vector or a block of columns.

    ``op`` may be a dense array, an object with a ``matvec`` method or a bare
    callable.  Operators that only support vectors are applied column by
    column.
    """
    if isinstance(op, np.ndarray):
        return op @ x
    matvec = op.matvec if hasattr(op, "matvec") else op
    if x.ndim == 1:
        return matvec(x)
    try:
        y = np.asarray(matvec(x))
        if y.shape == x.shape:
            return y
    except ValueError:
        pass
    return np.column_stack([matvec(x[:, j]) for j in range(x.shape[1])])
