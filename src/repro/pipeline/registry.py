"""The format registry: one entry per structured format, all backends for free.

A :class:`FormatSpec` bundles everything the facade, the CLI and the
:class:`~repro.service.SolverService` need to drive one structured format
end-to-end: compression from a kernel matrix, the sequential reference
factorization, and the policy-driven task-graph factorize/solve drivers.
Registering a spec is all it takes for a new format to appear in
``StructuredSolver(format=...)``, ``python -m repro solve --format ...`` and
the service's :class:`~repro.service.solver_service.FactorKey` -- with every
execution backend (sequential / thread-parallel / distributed) inherited from
the shared pipeline scaffold.

The spec callables import their implementations lazily so registering the
built-in formats at import time stays cheap and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "FormatSpec",
    "register_format",
    "get_format",
    "available_formats",
    "format_titles",
]


@dataclass(frozen=True)
class FormatSpec:
    """Everything the pipeline layer needs to drive one structured format.

    Attributes
    ----------
    name:
        Registry key and CLI ``--format`` value (lowercase).
    title:
        Human-readable name for tables and reports.
    build:
        ``build(kernel_matrix, *, leaf_size, max_rank, tol=None, method=None,
        seed=0)`` -- compress a kernel matrix into the format (``method=None``
        selects the format's default compression).
    factorize:
        ``factorize(matrix) -> factor`` -- the sequential ULV reference.
    factorize_dtd:
        ``factorize_dtd(matrix, *, policy) -> (factor, runtime)`` -- the
        task-graph factorization under an
        :class:`~repro.pipeline.policy.ExecutionPolicy`.
    solve_dtd:
        ``solve_dtd(factor, b, *, policy, refine=False, matvec=None)
        -> (x, runtime)`` -- the task-graph solve under a policy.
    compress_graph:
        ``compress_graph(kernel_matrix, *, leaf_size, max_rank, tol=None,
        method=None, seed=0, policy) -> (matrix, runtime)`` -- the task-graph
        construction under a policy, bit-identical to ``build`` with the same
        arguments.  ``None`` when the format has no graph-built compression
        (the sequential ``build`` is then the only construction path).
    """

    name: str
    title: str
    build: Callable[..., Any]
    factorize: Callable[[Any], Any]
    factorize_dtd: Callable[..., Tuple[Any, Any]]
    solve_dtd: Callable[..., Tuple[Any, Any]]
    default_method: Optional[str] = None
    compress_graph: Optional[Callable[..., Tuple[Any, Any]]] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FormatSpec({self.name!r}, title={self.title!r})"


_REGISTRY: Dict[str, FormatSpec] = {}


def register_format(spec: FormatSpec) -> FormatSpec:
    """Add (or replace) a format in the registry and return the spec."""
    _REGISTRY[spec.name] = spec
    return spec


def get_format(name: str) -> FormatSpec:
    """Look up a registered format by name (case-insensitive)."""
    try:
        return _REGISTRY[str(name).lower()]
    except KeyError:
        raise ValueError(
            f"unknown format {name!r}; registered formats: {available_formats()}"
        ) from None


def available_formats() -> Tuple[str, ...]:
    """Registered format names, sorted -- the single source of CLI choices."""
    return tuple(sorted(_REGISTRY))


def format_titles() -> Dict[str, str]:
    """Mapping of registered format name to its display title."""
    return {name: _REGISTRY[name].title for name in available_formats()}


# ---------------------------------------------------------------------------
# Built-in formats.  The wrappers normalize the per-format build signatures
# (compression method names differ) and adapt the legacy driver interfaces to
# the policy-driven one.
# ---------------------------------------------------------------------------


def _hss_build(kmat, *, leaf_size, max_rank, tol=None, method=None, seed=0):
    from repro.formats.hss import build_hss

    return build_hss(
        kmat,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tol=tol,
        method=method if method is not None else "interpolative",
        seed=seed,
    )


def _hss_compress_graph(kmat, *, leaf_size, max_rank, tol=None, method=None, seed=0, policy):
    from repro.compress.hss import build_hss_dtd

    return build_hss_dtd(
        kmat,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tol=tol,
        method=method,  # None -> the builder's default_method (single source of truth)
        seed=seed,
        policy=policy,
    )


def _hss_factorize(matrix):
    from repro.core.hss_ulv import hss_ulv_factorize

    return hss_ulv_factorize(matrix)


def _hss_factorize_dtd(matrix, *, policy):
    from repro.pipeline.factorize import HSSULVFactorizeBuilder

    builder = HSSULVFactorizeBuilder(matrix, policy=policy)
    builder.execute()
    return builder.result(), builder.runtime


def _hss_solve_dtd(factor, b, *, policy, refine=False, matvec=None):
    from repro.pipeline.solve import HSSULVSolveBuilder, solve_through_builder

    return solve_through_builder(
        HSSULVSolveBuilder, factor, b,
        policy=policy, refine=refine, matvec=matvec, default_op=factor.hss,
    )


def _blr2_build(kmat, *, leaf_size, max_rank, tol=None, method=None, seed=0):
    from repro.formats.blr2 import build_blr2

    return build_blr2(
        kmat,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tol=tol,
        basis_method=method if method is not None else "svd",
    )


def _blr2_compress_graph(kmat, *, leaf_size, max_rank, tol=None, method=None, seed=0, policy):
    from repro.compress.blr2 import build_blr2_dtd

    return build_blr2_dtd(
        kmat,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tol=tol,
        method=method,  # None -> the builder's default_method (single source of truth)
        seed=seed,
        policy=policy,
    )


def _blr2_factorize(matrix):
    from repro.core.blr2_ulv import blr2_ulv_factorize

    return blr2_ulv_factorize(matrix)


def _leaf_factorize_dtd(matrix_to_factor):
    def factorize_dtd(matrix, *, policy):
        from repro.pipeline.factorize import LeafULVFactorizeBuilder

        system, factor = matrix_to_factor(matrix)
        builder = LeafULVFactorizeBuilder(system, factor, policy=policy)
        builder.execute()
        return builder.result(), builder.runtime

    return factorize_dtd


def _leaf_solve_dtd(factor, b, *, policy, refine=False, matvec=None):
    from repro.pipeline.solve import LeafULVSolveBuilder, solve_through_builder

    return solve_through_builder(
        LeafULVSolveBuilder, factor, b,
        policy=policy, refine=refine, matvec=matvec, default_op=factor.system,
    )


def _blr2_system_and_factor(matrix):
    from repro.core.blr2_ulv import BLR2ULVFactor

    return matrix, BLR2ULVFactor(blr2=matrix)


def _hodlr_build(kmat, *, leaf_size, max_rank, tol=None, method=None, seed=0):
    from repro.formats.hodlr import build_hodlr

    return build_hodlr(
        kmat,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tol=tol,
        method=method if method is not None else "svd",
        seed=seed,
    )


def _hodlr_compress_graph(kmat, *, leaf_size, max_rank, tol=None, method=None, seed=0, policy):
    from repro.compress.hodlr import build_hodlr_dtd

    return build_hodlr_dtd(
        kmat,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tol=tol,
        method=method,  # None -> the builder's default_method (single source of truth)
        seed=seed,
        policy=policy,
    )


def _hodlr_factorize(matrix):
    from repro.core.hodlr_ulv import hodlr_ulv_factorize

    return hodlr_ulv_factorize(matrix)


def _hodlr_system_and_factor(matrix):
    from repro.core.hodlr_ulv import HODLRLeafSystem, HODLRULVFactor

    system = HODLRLeafSystem(matrix)
    return system, HODLRULVFactor(hodlr=matrix, system=system)


register_format(
    FormatSpec(
        name="hss",
        title="HSS",
        build=_hss_build,
        factorize=_hss_factorize,
        factorize_dtd=_hss_factorize_dtd,
        solve_dtd=_hss_solve_dtd,
        default_method="interpolative",
        compress_graph=_hss_compress_graph,
    )
)

register_format(
    FormatSpec(
        name="blr2",
        title="BLR2",
        build=_blr2_build,
        factorize=_blr2_factorize,
        factorize_dtd=_leaf_factorize_dtd(_blr2_system_and_factor),
        solve_dtd=_leaf_solve_dtd,
        default_method="svd",
        compress_graph=_blr2_compress_graph,
    )
)

register_format(
    FormatSpec(
        name="hodlr",
        title="HODLR",
        build=_hodlr_build,
        factorize=_hodlr_factorize,
        factorize_dtd=_leaf_factorize_dtd(_hodlr_system_and_factor),
        solve_dtd=_leaf_solve_dtd,
        default_method="svd",
        compress_graph=_hodlr_compress_graph,
    )
)
