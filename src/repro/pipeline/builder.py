"""The shared graph-builder scaffold every ULV task graph is built on.

A :class:`GraphBuilder` owns one :class:`~repro.runtime.dtd.DTDRuntime`, one
:class:`~repro.pipeline.policy.ExecutionPolicy` and the format-specific
recording hooks.  The scaffold provides everything the four former
per-format driver modules duplicated:

* runtime construction and the record-once template (:meth:`record`),
* phase bookkeeping for :meth:`insert` (critical-path priorities and the
  simulator group tasks by phase),
* distribution-strategy resolution and handle assignment,
* distributed execution with per-worker fragment collection and merging,
* comm-plan verification (measured ledger vs the static transfer plan).

Concrete builders (:mod:`repro.pipeline.factorize`,
:mod:`repro.pipeline.solve`) only implement ``declare_handles`` /
``record_tasks`` plus the fragment hooks; backend dispatch lives exclusively
in :meth:`ExecutionPolicy.execute`.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.pipeline.panels import column_panels, handle_namespace
from repro.pipeline.policy import ExecutionPolicy
from repro.runtime.dtd import DTDRuntime

__all__ = ["GraphBuilder", "SolveGraphBuilder"]


class GraphBuilder:
    """Base scaffold for recording one ULV task graph and executing it.

    Parameters
    ----------
    policy:
        The execution policy (must use a runtime backend).  Defaults to
        ``immediate`` execution.
    runtime:
        Record into an existing runtime instead of a fresh one.  Execution
        then stays sequential (:meth:`DTDRuntime.run`) unless the policy says
        otherwise -- this is how the legacy ``runtime=`` / ``execute=False``
        driver arguments are honoured.
    """

    #: Structural depth handed to the distribution strategy; subclasses set
    #: this before ``record()`` runs (HSS tree depth, or the virtual level a
    #: flat block row set is mapped onto).
    max_level: int = 0

    def __init__(
        self,
        *,
        policy: Optional[ExecutionPolicy] = None,
        runtime: Optional[DTDRuntime] = None,
    ) -> None:
        self.policy = policy if policy is not None else ExecutionPolicy(backend="immediate")
        if not self.policy.uses_runtime:
            raise ValueError(
                "graph builders require a runtime backend; "
                "backend 'off' is the sequential reference path"
            )
        self.runtime = runtime if runtime is not None else self.policy.make_runtime()
        self.strategy = None
        self._phase = 0
        self._recorded = False

    # -- recording helpers ----------------------------------------------------
    def set_phase(self, phase: int) -> None:
        """Set the phase tag attached to subsequently inserted tasks."""
        self._phase = phase

    def handle(self, name: str, nbytes: int, **meta: Any):
        """Create a data handle carrying the builder's structural metadata."""
        meta.setdefault("max_level", self.max_level)
        return self.runtime.new_handle(name, nbytes=int(nbytes), **meta)

    def insert(self, func, accesses, *, name: str, kind: str, flops: float = 0.0):
        """Insert one task at the current phase."""
        return self.runtime.insert_task(
            func, accesses, name=name, kind=kind, flops=flops, phase=self._phase
        )

    # -- subclass hooks -------------------------------------------------------
    def declare_handles(self) -> None:
        """Register every data handle of the graph (before strategy assignment)."""
        raise NotImplementedError

    def seed(self) -> None:
        """Populate the pre-execution numerical state (inherited by forked workers)."""

    def record_tasks(self) -> None:
        """Insert every task of the graph."""
        raise NotImplementedError

    def collect_local(self) -> Any:
        """Gather this worker's result fragment (runs *inside* each forked worker)."""
        return None

    def merge_fragment(self, fragment: Any) -> None:
        """Merge one worker's fragment into the builder's result (runs in the parent)."""

    def result(self) -> Any:
        """The built result object (factor, solution block, ...)."""
        raise NotImplementedError

    # -- template -------------------------------------------------------------
    def record(self) -> "GraphBuilder":
        """Declare handles, assign owners, seed state and insert all tasks (once).

        With :attr:`ExecutionPolicy.fusion_enabled` the freshly recorded
        graph is coarsened in place (chain fusion + batching, see
        :mod:`repro.runtime.fusion`) before any backend sees it, so transfer
        planning, comm verification and execution all run on the same fused
        graph.
        """
        if self._recorded:
            return self
        self.declare_handles()
        self.strategy = self.policy.resolve_distribution(self.max_level)
        self.strategy.assign(self.runtime.handles)
        self.seed()
        self.record_tasks()
        if self.policy.fusion_enabled and self.runtime.num_tasks:
            self.runtime.fuse(slots=self.policy.resolve_batch_slots())
        self._recorded = True
        return self

    def execute(self, *, timeout: Optional[float] = None) -> Any:
        """Record (if needed) and execute the graph through the policy.

        Returns whatever :meth:`ExecutionPolicy.execute` returns for the
        backend (a distributed/execution report, or None).
        """
        self.record()
        return self.policy.execute(
            self.runtime,
            strategy=self.strategy,
            collect=self.collect_local,
            merge=self.merge_fragment,
            timeout=timeout,
        )

    def run(self) -> Any:
        """Record, execute and return :meth:`result` in one call."""
        self.execute()
        return self.result()

    # -- verification ---------------------------------------------------------
    def verify_comm_plan(self, report=None) -> None:
        """Check a distributed run's measured ledger against the static plan.

        The recorded graph fully determines which handle values must cross a
        process boundary; the executed transfers must match that plan exactly
        (message count and byte volume).  Raises :class:`RuntimeError` on any
        mismatch -- a mismatch means the backend moved data the graph does not
        explain, or skipped a transfer the graph requires.
        """
        from repro.runtime.distributed import measured_vs_planned_comm

        report = report if report is not None else self.runtime.last_distributed_report
        if report is None:
            raise RuntimeError("no distributed report to verify; run on 'distributed' first")
        measured, planned = measured_vs_planned_comm(
            self.runtime.graph, report, self.policy.nodes
        )
        if measured != planned:
            raise RuntimeError(
                f"communication ledger {measured} does not match the static "
                f"transfer plan {planned}"
            )


class SolveGraphBuilder(GraphBuilder):
    """Scaffold shared by the task-graph solve builders.

    Adds to :class:`GraphBuilder` the right-hand-side handling every solve
    driver used to duplicate: shape validation, 2-D normalization, the split
    into independent RHS column panels (each panel carries its own
    forward/root/backward task chain), per-recording handle namespacing, and
    the scatter of the solved leaf blocks back into a dense ``(n, k)`` block.

    Subclasses store solved blocks into :attr:`sol` and implement
    :meth:`gather` plus the usual recording hooks.
    """

    def __init__(
        self,
        factor: Any,
        b: np.ndarray,
        *,
        policy: Optional[ExecutionPolicy] = None,
        runtime: Optional[DTDRuntime] = None,
    ) -> None:
        # Imported here: repro.core's package __init__ pulls in the *_dtd
        # wrappers, which import this module -- a top-level import would cycle.
        from repro.core.rhs import check_rhs_shape

        super().__init__(policy=policy, runtime=runtime)
        self.factor = factor
        # Normalize without copying: builders only read bm (the leaf seeds are
        # slice copies), so a validate_rhs working copy would be pure overhead.
        check_rhs_shape(b, self.n)
        arr = np.asarray(b, dtype=np.float64)
        self.single = arr.ndim == 1
        self.bm = arr.reshape(self.n, -1)
        self.panels = column_panels(self.bm.shape[1], self.policy.panel_size)
        #: Unique suffix so repeated solves can record into one shared runtime.
        self.ns = handle_namespace(self.runtime)
        #: Mutable store of solved blocks, filled by the backward tasks.
        self.sol: dict = {}

    @property
    def n(self) -> int:
        """System dimension (subclasses know where their factor keeps it)."""
        raise NotImplementedError

    def gather(self) -> np.ndarray:
        """Assemble the dense ``(n, k)`` solution block from :attr:`sol`."""
        raise NotImplementedError

    def result(self) -> np.ndarray:
        """The solution block, always 2-D (drivers flatten vector inputs)."""
        return self.gather()

    # Leaf solution handles have no consumers, so a store entry present inside
    # a worker was computed by one of its local backward tasks; shipping the
    # whole store back and merging is therefore exact, not a heuristic.
    def collect_local(self):
        return dict(self.sol)

    def merge_fragment(self, fragment) -> None:
        self.sol.update(fragment)
