"""Factorization graph builders on the shared scaffold.

Two builders cover every format:

:class:`HSSULVFactorizeBuilder`
    The multi-level HSS-ULV graph (Fig. 8): per-node diagonal-product and
    partial-factorization tasks walking the tree from the leaves to the root,
    sibling Schur complements merged into the parent, one final root POTRF.

:class:`LeafULVFactorizeBuilder`
    The single-level leaf-ULV graph (Alg. 1) over any *leaf system*
    (:mod:`repro.core.leaf_ulv`): per-row diagonal-product / partial-factor
    tasks, per-row merge of the permuted skeleton system, one merged POTRF.
    BLR2 matrices use it directly; HODLR matrices use it through their exact
    leaf view (:class:`~repro.core.hodlr_ulv.HODLRLeafSystem`).

Every backend branch lives in :meth:`ExecutionPolicy.execute
<repro.pipeline.policy.ExecutionPolicy.execute>`; these builders only record
tasks and define the distributed result fragments.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.core.hss_ulv import HSSNodeFactor, HSSULVFactor
from repro.core.partial_cholesky import partial_cholesky
from repro.lowrank.qr import full_orthogonal_basis
from repro.pipeline.builder import GraphBuilder
from repro.runtime.flops import (
    flops_diag_product,
    flops_partial_factor,
    flops_potrf,
)
from repro.runtime.task import AccessMode

__all__ = ["HSSULVFactorizeBuilder", "LeafULVFactorizeBuilder", "leaf_virtual_level"]


def leaf_virtual_level(nblocks: int) -> int:
    """Virtual tree depth a flat set of block rows is mapped onto.

    Deep enough to hold ``nblocks`` rows, so the row-cyclic strategy spreads
    all of them (shared by the leaf factorize and solve builders so both
    graphs of one problem distribute identically).
    """
    return max(1, math.ceil(math.log2(max(nblocks, 2))))


class HSSULVFactorizeBuilder(GraphBuilder):
    """Record (and execute) the HSS-ULV factorization task graph."""

    def __init__(self, hss, *, policy=None, runtime=None) -> None:
        super().__init__(policy=policy, runtime=runtime)
        self.hss = hss
        self.max_level = hss.max_level
        self.factor = HSSULVFactor(hss=hss)
        # Mutable stores the task bodies operate on.
        self._diag: Dict[Tuple[int, int], np.ndarray] = {}
        self._schur: Dict[Tuple[int, int], np.ndarray] = {}
        # Data handles.
        self._d: Dict[Tuple[int, int], object] = {}
        self._s: Dict[Tuple[int, int], object] = {}
        self._schur_h: Dict[Tuple[int, int], object] = {}
        self._u: Dict[Tuple[int, int], object] = {}

    def declare_handles(self) -> None:
        hss, max_level = self.hss, self.max_level
        for level in range(max_level, -1, -1):
            for i in range(2**level):
                m = hss.block_size(level, i)
                # The D/SCHUR handles are bound to the mutable stores so the
                # distributed backend can move their values between processes.
                self._d[(level, i)] = self.handle(
                    f"D[{level};{i}]", 8 * m * m, level=level, row=i
                ).bind_item(self._diag, (level, i))
                if level > 0:
                    node = hss.node(level, i)
                    self._u[(level, i)] = self.handle(
                        f"U[{level};{i}]", 8 * m * node.rank, level=level, row=i
                    )
                    self._schur_h[(level, i)] = self.handle(
                        f"SCHUR[{level};{i}]", 8 * node.rank**2, level=level, row=i
                    ).bind_item(self._schur, (level, i))
        for level in range(1, max_level + 1):
            for k in range(2 ** (level - 1)):
                ri = hss.node(level, 2 * k + 1).rank
                rj = hss.node(level, 2 * k).rank
                self._s[(level, k)] = self.handle(
                    f"S[{level};{2 * k + 1},{2 * k}]",
                    8 * ri * rj,
                    level=level,
                    row=2 * k + 1,
                    col=2 * k,
                )

    def seed(self) -> None:
        for i in range(2**self.max_level):
            self._diag[(self.max_level, i)] = self.hss.node(self.max_level, i).D.copy()

    def record_tasks(self) -> None:
        hss, max_level = self.hss, self.max_level
        factor, diag, schur = self.factor, self._diag, self._schur
        for level in range(max_level, 0, -1):
            # Phases increase as the factorization walks leaves -> root.
            self.set_phase(max_level - level)
            for i in range(2**level):
                node = hss.node(level, i)
                m = hss.block_size(level, i)

                def diag_product(level=level, i=i, node=node) -> None:
                    u_full, _, _ = full_orthogonal_basis(node.U)
                    factor.node_factors[(level, i)] = HSSNodeFactor(
                        U=u_full, rank=node.rank, partial=None  # type: ignore[arg-type]
                    )
                    diag[(level, i)] = u_full.T @ diag[(level, i)] @ u_full

                self.insert(
                    diag_product,
                    [
                        (self._u[(level, i)], AccessMode.READ),
                        (self._d[(level, i)], AccessMode.RW),
                    ],
                    name=f"DIAG_PRODUCT[{level};{i}]",
                    kind="DIAG_PRODUCT",
                    flops=flops_diag_product(m),
                )

                def partial_factor(level=level, i=i, node=node) -> None:
                    part = partial_cholesky(diag[(level, i)], node.rank)
                    factor.node_factors[(level, i)].partial = part
                    schur[(level, i)] = part.schur_ss

                self.insert(
                    partial_factor,
                    [
                        (self._d[(level, i)], AccessMode.RW),
                        (self._schur_h[(level, i)], AccessMode.WRITE),
                    ],
                    name=f"PARTIAL_FACTOR[{level};{i}]",
                    kind="PARTIAL_FACTOR",
                    flops=flops_partial_factor(m, node.rank),
                )

            for k in range(2 ** (level - 1)):

                def merge(level=level, k=k) -> None:
                    s = hss.coupling(level, 2 * k + 1, 2 * k)
                    top = np.hstack([schur[(level, 2 * k)], s.T])
                    bot = np.hstack([s, schur[(level, 2 * k + 1)]])
                    diag[(level - 1, k)] = np.vstack([top, bot])

                self.insert(
                    merge,
                    [
                        (self._schur_h[(level, 2 * k)], AccessMode.READ),
                        (self._schur_h[(level, 2 * k + 1)], AccessMode.READ),
                        (self._s[(level, k)], AccessMode.READ),
                        (self._d[(level - 1, k)], AccessMode.WRITE),
                    ],
                    name=f"MERGE[{level - 1};{k}]",
                    kind="MERGE",
                )

        def root_factor() -> None:
            factor.root_chol = np.linalg.cholesky(diag[(0, 0)])

        self.set_phase(max_level)
        self.insert(
            root_factor,
            [(self._d[(0, 0)], AccessMode.RW)],
            name="ROOT_POTRF",
            kind="POTRF",
            flops=flops_potrf(hss.block_size(0, 0)),
        )

    # Runs inside each worker: ship back the factor pieces its local tasks
    # produced (an entry is complete once its PARTIAL_FACTOR has run, which
    # happens on the D-block owner).
    def collect_local(self):
        return {
            "node_factors": {
                k: v for k, v in self.factor.node_factors.items() if v.partial is not None
            },
            "root_chol": self.factor.root_chol if self.factor.root_chol.size else None,
        }

    def merge_fragment(self, fragment) -> None:
        self.factor.node_factors.update(fragment["node_factors"])
        if fragment["root_chol"] is not None:
            self.factor.root_chol = fragment["root_chol"]

    def result(self) -> HSSULVFactor:
        return self.factor


class LeafULVFactorizeBuilder(GraphBuilder):
    """Record (and execute) the leaf-ULV factorization graph over a leaf system.

    ``factor`` is the format's factor object (``bases`` / ``partials`` /
    ``merged_chol`` stores); ``system`` is the leaf system being factorized.
    The recorded tasks are exactly the operations of
    :func:`repro.core.leaf_ulv.leaf_ulv_factorize_into`, so every backend is
    bit-identical to that sequential reference.
    """

    def __init__(self, system, factor, *, policy=None, runtime=None) -> None:
        super().__init__(policy=policy, runtime=runtime)
        self.system = system
        self.factor = factor
        # The flat block rows are mapped onto a virtual tree level deep
        # enough to hold them so the row-cyclic strategy spreads all rows.
        self.max_level = leaf_virtual_level(system.nblocks)
        self._offsets = factor._skeleton_offsets()
        self._merged = np.zeros((self._offsets[-1], self._offsets[-1]))
        # Mutable stores the task bodies operate on.
        self._diag: Dict[int, np.ndarray] = {}
        self._schur: Dict[int, np.ndarray] = {}
        # Data handles.
        self._d: Dict[int, object] = {}
        self._u: Dict[int, object] = {}
        self._schur_h: Dict[int, object] = {}
        self._row: Dict[int, object] = {}
        self._s: Dict[Tuple[int, int], object] = {}
        self._chol = None

    def declare_handles(self) -> None:
        system, level, offsets = self.system, self.max_level, self._offsets
        merged = self._merged
        for i in range(system.nblocks):
            rng = system.block_range(i)
            m = rng.stop - rng.start
            r = system.rank(i)
            # Mutable handles are bound to their stores so the distributed
            # backend can move their values between worker processes.
            self._d[i] = self.handle(
                f"D[{i}]", 8 * m * m, level=level, row=i
            ).bind_item(self._diag, i)
            self._u[i] = self.handle(f"U[{i}]", 8 * m * r, level=level, row=i)
            self._schur_h[i] = self.handle(
                f"SCHUR[{i}]", 8 * r * r, level=level, row=i
            ).bind_item(self._schur, i)
            self._row[i] = self.handle(
                f"MERGED_ROW[{i}]", 8 * r * offsets[-1], level=level, row=i
            ).bind(
                # The merged-row strip lives inside the shared `merged` array,
                # so the accessors copy the block-row slice in and out.
                lambda i=i: merged[offsets[i] : offsets[i + 1], :].copy(),
                lambda value, i=i: merged.__setitem__(
                    (slice(offsets[i], offsets[i + 1]), slice(None)), value
                ),
            )
        for i in range(system.nblocks):
            for j in range(i):
                self._s[(i, j)] = self.handle(
                    f"S[{i},{j}]",
                    8 * system.rank(i) * system.rank(j),
                    level=level,
                    row=i,
                    col=j,
                )
        self._chol = self.handle("CHOL", 8 * offsets[-1] ** 2, level=0, row=0)

    def seed(self) -> None:
        for i in range(self.system.nblocks):
            self._diag[i] = self.system.diag[i].copy()

    def record_tasks(self) -> None:
        system, factor = self.system, self.factor
        diag, schur, merged, offsets = self._diag, self._schur, self._merged, self._offsets
        nb = system.nblocks

        self.set_phase(0)
        for i in range(nb):

            def diag_product(i=i) -> None:
                u_full, _, _ = full_orthogonal_basis(system.bases[i])
                factor.bases[i] = u_full
                diag[i] = u_full.T @ diag[i] @ u_full

            rng = system.block_range(i)
            m = rng.stop - rng.start
            self.insert(
                diag_product,
                [(self._u[i], AccessMode.READ), (self._d[i], AccessMode.RW)],
                name=f"DIAG_PRODUCT[{i}]",
                kind="DIAG_PRODUCT",
                flops=flops_diag_product(m),
            )

            def partial_factor(i=i) -> None:
                part = partial_cholesky(diag[i], system.rank(i))
                factor.partials[i] = part
                schur[i] = part.schur_ss

            self.insert(
                partial_factor,
                [(self._d[i], AccessMode.RW), (self._schur_h[i], AccessMode.WRITE)],
                name=f"PARTIAL_FACTOR[{i}]",
                kind="PARTIAL_FACTOR",
                flops=flops_partial_factor(m, system.rank(i)),
            )

        # Assemble the permuted skeleton system (Fig. 4) one block row at a
        # time; the rows write disjoint slices of `merged`, so they run
        # concurrently.
        self.set_phase(1)
        for i in range(nb):

            def merge_row(i=i) -> None:
                merged[offsets[i] : offsets[i + 1], offsets[i] : offsets[i + 1]] = schur[i]
                for j in range(nb):
                    if i == j:
                        continue
                    merged[offsets[i] : offsets[i + 1], offsets[j] : offsets[j + 1]] = (
                        system.coupling(i, j)
                    )

            accesses = [(self._schur_h[i], AccessMode.READ)]
            accesses += [
                (self._s[(max(i, j), min(i, j))], AccessMode.READ)
                for j in range(nb)
                if j != i
            ]
            accesses += [(self._row[i], AccessMode.WRITE)]
            self.insert(
                merge_row, accesses, name=f"MERGE[{i}]", kind="MERGE"
            )

        def root_factor() -> None:
            factor.merged_chol = np.linalg.cholesky(merged)

        self.set_phase(2)
        self.insert(
            root_factor,
            [(self._row[i], AccessMode.READ) for i in range(nb)]
            + [(self._chol, AccessMode.WRITE)],
            name="ROOT_POTRF",
            kind="POTRF",
            flops=flops_potrf(offsets[-1]),
        )

    # Runs inside each worker: ship back the per-row factor pieces produced
    # locally plus the root Cholesky if this worker ran it.
    def collect_local(self):
        return {
            "bases": dict(self.factor.bases),
            "partials": dict(self.factor.partials),
            "merged_chol": self.factor.merged_chol if self.factor.merged_chol.size else None,
        }

    def merge_fragment(self, fragment) -> None:
        self.factor.bases.update(fragment["bases"])
        self.factor.partials.update(fragment["partials"])
        if fragment["merged_chol"] is not None:
            self.factor.merged_chol = fragment["merged_chol"]

    def result(self):
        return self.factor
