"""The format-agnostic ULV pipeline layer.

The paper's DTD task-insertion model is format-agnostic by design: the same
insert-task/execute machinery serves any structured format.  This package is
where that promise is kept:

* :mod:`~repro.pipeline.policy` -- :class:`ExecutionPolicy`, the single
  description of *how* a graph executes (backend, workers, nodes,
  distribution, RHS panels) and the single backend-dispatch implementation
  (:meth:`ExecutionPolicy.execute`).
* :mod:`~repro.pipeline.builder` -- the :class:`GraphBuilder` /
  :class:`SolveGraphBuilder` scaffolds (phase recording, distribution
  assignment, distributed fragment collect/merge, comm-plan verification,
  RHS panel chaining) every format's graphs are built on.
* :mod:`~repro.pipeline.factorize` / :mod:`~repro.pipeline.solve` -- the
  concrete ULV factorize/solve builders: one multi-level (HSS) and one
  leaf-level (BLR2, HODLR) of each.
* :mod:`~repro.pipeline.registry` -- :class:`FormatSpec` entries mapping a
  format name to (compressor, factorizer, solver); registering a spec gives
  the format every backend, the CLI ``--format`` flag and service caching
  for free.

``repro.pipeline.factorize`` / ``repro.pipeline.solve`` are imported lazily
by their consumers (the ``repro.core`` / ``repro.solve`` driver wrappers) to
keep the import graph acyclic.
"""

from repro.pipeline.panels import (
    apply_operator,
    column_panels,
    handle_namespace,
    refine_once,
)
from repro.pipeline.policy import (
    BACKENDS,
    RUNTIME_BACKENDS,
    ExecutionPolicy,
    resolve_policy,
)
from repro.pipeline.builder import GraphBuilder, SolveGraphBuilder
from repro.pipeline.registry import (
    FormatSpec,
    available_formats,
    format_titles,
    get_format,
    register_format,
)

__all__ = [
    "BACKENDS",
    "RUNTIME_BACKENDS",
    "ExecutionPolicy",
    "resolve_policy",
    "GraphBuilder",
    "SolveGraphBuilder",
    "FormatSpec",
    "register_format",
    "get_format",
    "available_formats",
    "format_titles",
    "apply_operator",
    "column_panels",
    "handle_namespace",
    "refine_once",
]
