"""High-level convenience API.

The quickstart workflow of the README:

>>> from repro.api import HSSSolver
>>> solver = HSSSolver.from_kernel("yukawa", n=2048, leaf_size=256, max_rank=60)
>>> x = solver.solve(b)                    # direct solve through the ULV factors
>>> solver.construction_error(), solver.solve_error()

Execution modes of the factorization (``HSSSolver.factorize``):

``use_runtime=False`` (or ``"off"``)
    Sequential reference implementation -- the fastest path for small
    problems and the ground truth the other modes are validated against.
``use_runtime=True`` (or ``"immediate"``)
    The factorization is expressed as DTD runtime tasks whose bodies execute
    at insertion time; records the full task graph for inspection/simulation.
``use_runtime="parallel"``
    The task graph is recorded first and then executed *out-of-order* on a
    thread pool (``n_workers`` threads) by the event-driven graph executor --
    the shared-memory analogue of the paper's PaRSEC execution.  Use this for
    large problems where the independent per-block tasks dominate.
``use_runtime="distributed"``
    The task graph is recorded first and then executed across ``nodes`` forked
    worker processes with owner-computes placement from a distribution
    strategy (``distribution="row"`` or ``"block"``), explicit inter-process
    data transfers and communication accounting -- the distributed-memory
    analogue of the paper's deployment.  Sidesteps the GIL entirely.

All modes produce bit-identical factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.analysis.errors import construction_error, solve_error
from repro.core.hss_ulv import HSSULVFactor, hss_ulv_factorize
from repro.core.hss_ulv_dtd import hss_ulv_factorize_dtd
from repro.distribution.strategies import DistributionStrategy, strategy_by_name
from repro.formats.hss import HSSMatrix, build_hss
from repro.geometry.points import PointCloud, uniform_grid_2d
from repro.kernels.assembly import KernelMatrix
from repro.kernels.greens import kernel_by_name

__all__ = ["HSSSolver"]


@dataclass
class HSSSolver:
    """An HSS-compressed direct solver for a kernel (Green's function) matrix.

    Combines kernel-matrix assembly, HSS construction and the ULV
    factorization behind a single object.  Use :meth:`from_kernel` or
    :meth:`from_points` to build one.
    """

    kernel_matrix: KernelMatrix
    hss: HSSMatrix
    factor: Optional[HSSULVFactor] = None

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        kernel_name: str,
        points: PointCloud,
        *,
        leaf_size: int = 256,
        max_rank: int = 100,
        tol: Optional[float] = None,
        method: str = "interpolative",
        shift: float | str = "auto",
        seed: int = 0,
        **kernel_params: float,
    ) -> "HSSSolver":
        """Build the solver for a named kernel over an explicit point cloud."""
        kernel = kernel_by_name(kernel_name, **kernel_params)
        kmat = KernelMatrix(kernel, points, shift=shift)
        hss = build_hss(
            kmat,
            leaf_size=leaf_size,
            max_rank=max_rank,
            tol=tol,
            method=method,
            seed=seed,
        )
        return cls(kernel_matrix=kmat, hss=hss)

    @classmethod
    def from_kernel(
        cls,
        kernel_name: str,
        n: int,
        *,
        leaf_size: int = 256,
        max_rank: int = 100,
        tol: Optional[float] = None,
        method: str = "interpolative",
        shift: float | str = "auto",
        seed: int = 0,
        **kernel_params: float,
    ) -> "HSSSolver":
        """Build the solver on the paper's uniform 2D grid geometry of ``n`` points."""
        points = uniform_grid_2d(n)
        return cls.from_points(
            kernel_name,
            points,
            leaf_size=leaf_size,
            max_rank=max_rank,
            tol=tol,
            method=method,
            shift=shift,
            seed=seed,
            **kernel_params,
        )

    # -- factorization / solve ----------------------------------------------
    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.hss.n

    def factorize(
        self,
        *,
        use_runtime: bool | str = False,
        nodes: int = 1,
        n_workers: int = 4,
        distribution: Optional[Union[str, DistributionStrategy]] = None,
        force: bool = False,
    ) -> HSSULVFactor:
        """Compute (and cache) the HSS-ULV factorization.

        A cached factor is returned as-is regardless of ``use_runtime`` (all
        modes produce identical factors); pass ``force=True`` to discard the
        cache and re-factorize through the requested path, e.g. when timing
        the parallel executor.

        Parameters
        ----------
        use_runtime:
            Selects the execution path.  ``False`` / ``"off"`` (default) uses
            the sequential reference implementation; ``True`` / ``"immediate"``
            runs the factorization through the DTD runtime with task bodies
            executing at insertion time; ``"deferred"`` records the full task
            graph first and then runs it sequentially; ``"parallel"`` records
            the task graph first and then executes it out-of-order on a thread
            pool with ``n_workers`` threads; ``"distributed"`` records the
            task graph first and then executes it across ``nodes`` forked
            worker processes with owner-computes placement (the HATRIX-DTD
            distributed-memory execution model).  All paths produce
            bit-identical factors.
        nodes:
            Number of processes for the data distribution when the runtime is
            used (real worker processes for ``"distributed"``, simulated ranks
            otherwise).
        n_workers:
            Thread count for ``use_runtime="parallel"``.
        distribution:
            Data-distribution strategy for the runtime paths: a
            :class:`~repro.distribution.strategies.DistributionStrategy`
            instance or a name (``"row"`` / ``"block"`` / ``"element"``).
            Default: the paper's row-cyclic distribution.
        force:
            Re-factorize even when a factor is already cached.
        """
        mode = {False: "off", True: "immediate"}.get(use_runtime, use_runtime)
        if mode not in ("off", "immediate", "deferred", "parallel", "distributed"):
            raise ValueError(
                f"unknown use_runtime {use_runtime!r}; expected False, True, "
                "'off', 'immediate', 'deferred', 'parallel' or 'distributed'"
            )
        if isinstance(distribution, str):
            distribution = strategy_by_name(
                distribution, nodes, max_level=self.hss.max_level
            )
        if force:
            self.factor = None
        if self.factor is None:
            if mode == "off":
                self.factor = hss_ulv_factorize(self.hss)
            else:
                self.factor, _ = hss_ulv_factorize_dtd(
                    self.hss,
                    nodes=nodes,
                    execution=mode,
                    n_workers=n_workers,
                    distribution=distribution,
                )
        return self.factor

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (factorizes on first use)."""
        return self.factorize().solve(b)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Fast matrix-vector product with the HSS approximation."""
        return self.hss.matvec(x)

    def logdet(self) -> float:
        """Log-determinant of the compressed matrix (useful in geostatistics)."""
        return self.factorize().logdet()

    # -- accuracy -------------------------------------------------------------
    def construction_error(self, *, seed: int = 0) -> float:
        """Eq. 18: relative error of the HSS approximation against the dense matrix."""
        return construction_error(self.kernel_matrix, self.hss, n=self.n, seed=seed)

    def solve_error(self, *, seed: int = 0) -> float:
        """Eq. 19: relative error of the factorization applied to the HSS matrix."""
        factor = self.factorize()
        return solve_error(self.hss, factor.solve, n=self.n, seed=seed)

    def __repr__(self) -> str:
        return (
            f"HSSSolver(n={self.n}, leaf_size={self.hss.leaf_size}, "
            f"max_rank={self.hss.max_rank()}, factorized={self.factor is not None})"
        )
