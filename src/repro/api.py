"""High-level convenience API.

The quickstart workflow of the README:

>>> from repro.api import StructuredSolver
>>> solver = StructuredSolver.from_kernel("yukawa", n=2048, leaf_size=256, max_rank=60)
>>> x = solver.solve(b)                    # direct solve through the ULV factors
>>> X = solver.solve(B)                    # B of shape (n, k): k RHS at once
>>> solver.construction_error(), solver.solve_error()

``StructuredSolver`` is format-agnostic: ``format="hss"`` (default),
``"blr2"`` or ``"hodlr"`` selects the compressed representation from the
pipeline's :mod:`format registry <repro.pipeline.registry>`, and every format
reaches every execution backend through the same machinery.  ``HSSSolver`` is
kept as an alias of the old name.

Execution modes, shared by the factorization (:meth:`StructuredSolver.factorize`)
and the solve (:meth:`StructuredSolver.solve`):

``use_runtime=False`` (or ``"off"``)
    Sequential reference implementation -- the fastest path for small
    problems and the ground truth the other modes are validated against.
``use_runtime=True`` (or ``"immediate"``)
    Expressed as DTD runtime tasks whose bodies execute at insertion time;
    records the full task graph for inspection/simulation.
``use_runtime="parallel"``
    The task graph is recorded first and then executed *out-of-order* on a
    thread pool (``n_workers`` threads) by the event-driven graph executor --
    the shared-memory analogue of the paper's PaRSEC execution.  Use this for
    large problems where the independent per-block tasks dominate.
``use_runtime="process"``
    The task graph is recorded first, *fused* (record-time task coarsening,
    :mod:`repro.runtime.fusion`) and then executed out-of-order on a pool of
    ``n_workers`` forked worker processes -- GIL-free like the distributed
    backend, but with the pool's dynamic load balancing instead of
    owner-computes placement.
``use_runtime="distributed"``
    The task graph is recorded first and then executed across ``nodes`` forked
    worker processes with owner-computes placement from a distribution
    strategy (``distribution="row"`` or ``"block"``), explicit inter-process
    data transfers and communication accounting -- the distributed-memory
    analogue of the paper's deployment.  Sidesteps the GIL entirely.

All modes produce bit-identical factors *and* bit-identical solutions.  The
solve additionally supports blocked multi-RHS panels (``panel_size``) and one
optional iterative-refinement step (``refine=True``, against the exact kernel
operator).  For serving many right-hand sides from a cache of factorizations,
see :class:`repro.service.SolverService`.

The *construction* phase runs through the runtime too:
``from_kernel(..., compress_runtime="parallel")`` (or ``"distributed"`` with
``compress_nodes=``) records the compression as a DTD task graph
(:mod:`repro.compress`) and executes it on the chosen backend, bit-identical
to the sequential build -- completing the compress -> factorize -> solve
pipeline on the runtime end to end.
"""

from __future__ import annotations

from typing import Any, Optional, Union

import numpy as np

from repro.analysis.errors import construction_error, solve_error
from repro.core.rhs import check_rhs_shape
from repro.distribution.strategies import DistributionStrategy
from repro.geometry.points import PointCloud, uniform_grid_2d
from repro.kernels.assembly import KernelMatrix
from repro.kernels.greens import kernel_by_name
from repro.pipeline.policy import ExecutionPolicy
from repro.pipeline.registry import get_format

__all__ = ["StructuredSolver", "HSSSolver"]


class StructuredSolver:
    """A compressed direct solver for a kernel (Green's function) matrix.

    Combines kernel-matrix assembly, structured compression (HSS, BLR2 or
    HODLR -- any format in the pipeline registry) and the corresponding ULV
    factorization behind a single object.  Use :meth:`from_kernel` or
    :meth:`from_points` to build one.

    ``hss`` is accepted as a constructor alias of ``matrix`` (and stays
    readable/assignable as an attribute) for code written against the
    HSS-only ``HSSSolver``.
    """

    def __init__(
        self,
        kernel_matrix: KernelMatrix,
        matrix: Any = None,
        format: str = "hss",
        factor: Optional[Any] = None,
        *,
        hss: Any = None,
    ) -> None:
        if hss is not None:
            if matrix is not None and matrix is not hss:
                raise ValueError("pass either `matrix` or the legacy `hss`, not both")
            matrix = hss
        if matrix is None:
            raise TypeError("StructuredSolver requires a compressed matrix (matrix=...)")
        self.kernel_matrix = kernel_matrix
        self.matrix = matrix
        self.format = format
        self.factor = factor
        #: DTD runtime that built :attr:`matrix` when compression ran as a
        #: task graph (``compress_runtime=...``); None for a sequential build.
        self.compress_runtime: Any = None
        #: DTD runtime of the most recent task-graph factorization (or None).
        self.factorize_runtime: Any = None
        #: DTD runtime of the most recent task-graph solve (or None).
        self.solve_runtime: Any = None

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        kernel_name: str,
        points: PointCloud,
        *,
        format: str = "hss",
        leaf_size: int = 256,
        max_rank: int = 100,
        tol: Optional[float] = None,
        method: Optional[str] = None,
        shift: float | str = "auto",
        seed: int = 0,
        compress_runtime: bool | str = False,
        compress_nodes: int = 1,
        compress_workers: int = 4,
        compress_distribution: Optional[Union[str, DistributionStrategy]] = None,
        compress_fusion: Optional[bool] = None,
        compress_trace: bool = False,
        compress_metrics: Optional[Any] = None,
        **kernel_params: float,
    ) -> "StructuredSolver":
        """Build the solver for a named kernel over an explicit point cloud.

        ``format`` names the compressed representation (any registered
        format); ``method`` selects its compression scheme (None: the
        format's default, e.g. ``"interpolative"`` for HSS and ``"svd"`` for
        BLR2/HODLR).

        ``compress_runtime`` selects the execution path of the *construction*
        phase, with the same modes and semantics as ``use_runtime`` on
        :meth:`factorize` / :meth:`solve`: ``False``/``"off"`` (default) is
        the sequential ``formats.build_*`` reference, any runtime backend
        records the compression as a DTD task graph
        (:mod:`repro.compress`) and executes it there -- bit-identical to
        the sequential build.  ``compress_nodes`` / ``compress_workers`` /
        ``compress_distribution`` parameterize the runtime backends (named
        separately from the kernel parameters caught by ``**kernel_params``);
        ``compress_fusion`` toggles record-time task fusion/batching (None:
        fused exactly where required, i.e. ``compress_runtime="process"``);
        ``compress_trace`` records a measured
        :class:`~repro.runtime.tracing.ExecutionTrace` of the compression
        (``solver.compress_runtime.last_trace``); ``compress_metrics``
        accumulates task/memory metrics of the compression into a caller
        :class:`~repro.obs.metrics.MetricsRegistry`.
        The recording runtime is kept on :attr:`compress_runtime` for task
        and communication accounting.
        """
        spec = get_format(format)
        kernel = kernel_by_name(kernel_name, **kernel_params)
        kmat = KernelMatrix(kernel, points, shift=shift)
        policy = ExecutionPolicy.resolve(
            compress_runtime,
            nodes=compress_nodes,
            n_workers=compress_workers,
            distribution=compress_distribution,
            fusion=compress_fusion,
            trace=compress_trace,
            metrics=compress_metrics,
        )
        compress_rt = None
        if policy.uses_runtime:
            if spec.compress_graph is None:
                raise ValueError(
                    f"format {spec.name!r} has no task-graph compression; "
                    "use compress_runtime=False"
                )
            matrix, compress_rt = spec.compress_graph(
                kmat,
                leaf_size=leaf_size,
                max_rank=max_rank,
                tol=tol,
                method=method,
                seed=seed,
                policy=policy,
            )
        else:
            matrix = spec.build(
                kmat,
                leaf_size=leaf_size,
                max_rank=max_rank,
                tol=tol,
                method=method,
                seed=seed,
            )
        solver = cls(kernel_matrix=kmat, matrix=matrix, format=spec.name)
        solver.compress_runtime = compress_rt
        return solver

    @classmethod
    def from_kernel(
        cls,
        kernel_name: str,
        n: int,
        *,
        format: str = "hss",
        leaf_size: int = 256,
        max_rank: int = 100,
        tol: Optional[float] = None,
        method: Optional[str] = None,
        shift: float | str = "auto",
        seed: int = 0,
        compress_runtime: bool | str = False,
        compress_nodes: int = 1,
        compress_workers: int = 4,
        compress_distribution: Optional[Union[str, DistributionStrategy]] = None,
        compress_fusion: Optional[bool] = None,
        compress_trace: bool = False,
        compress_metrics: Optional[Any] = None,
        **kernel_params: float,
    ) -> "StructuredSolver":
        """Build the solver on the paper's uniform 2D grid geometry of ``n`` points."""
        points = uniform_grid_2d(n)
        return cls.from_points(
            kernel_name,
            points,
            format=format,
            leaf_size=leaf_size,
            max_rank=max_rank,
            tol=tol,
            method=method,
            shift=shift,
            seed=seed,
            compress_runtime=compress_runtime,
            compress_nodes=compress_nodes,
            compress_workers=compress_workers,
            compress_distribution=compress_distribution,
            compress_fusion=compress_fusion,
            compress_trace=compress_trace,
            compress_metrics=compress_metrics,
            **kernel_params,
        )

    # -- structure ----------------------------------------------------------
    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.matrix.n

    @property
    def hss(self) -> Any:
        """Legacy alias for :attr:`matrix` (from the HSS-only HSSSolver days)."""
        return self.matrix

    @hss.setter
    def hss(self, value: Any) -> None:
        self.matrix = value

    # -- factorization / solve ----------------------------------------------
    def factorize(
        self,
        *,
        use_runtime: bool | str = False,
        nodes: int = 1,
        n_workers: int = 4,
        distribution: Optional[Union[str, DistributionStrategy]] = None,
        fusion: Optional[bool] = None,
        trace: bool = False,
        metrics: Optional[Any] = None,
        data_plane: Optional[str] = None,
        force: bool = False,
    ) -> Any:
        """Compute (and cache) the ULV factorization of the compressed matrix.

        A cached factor is returned as-is regardless of ``use_runtime`` (all
        modes produce identical factors); pass ``force=True`` to discard the
        cache and re-factorize through the requested path, e.g. when timing
        the parallel executor.

        Parameters
        ----------
        use_runtime:
            Selects the execution path.  ``False`` / ``"off"`` (default) uses
            the sequential reference implementation; ``True`` / ``"immediate"``
            runs the factorization through the DTD runtime with task bodies
            executing at insertion time; ``"deferred"`` records the full task
            graph first and then runs it sequentially; ``"parallel"`` records
            the task graph first and then executes it out-of-order on a thread
            pool with ``n_workers`` threads; ``"distributed"`` records the
            task graph first and then executes it across ``nodes`` forked
            worker processes with owner-computes placement (the HATRIX-DTD
            distributed-memory execution model).  All paths produce
            bit-identical factors.
        nodes:
            Number of processes for the data distribution when the runtime is
            used (real worker processes for ``"distributed"``, simulated ranks
            otherwise).
        n_workers:
            Thread count for ``use_runtime="parallel"``.
        distribution:
            Data-distribution strategy for the runtime paths: a
            :class:`~repro.distribution.strategies.DistributionStrategy`
            instance or a name (``"row"`` / ``"block"`` / ``"element"``).
            Default: the paper's row-cyclic distribution.
        fusion:
            Record-time task fusion/batching (None: fused exactly where
            required, i.e. ``use_runtime="process"``).
        trace:
            Record a measured :class:`~repro.runtime.tracing.ExecutionTrace`
            of the factorization; retrieve it with :meth:`last_traces` or
            from ``self.factorize_runtime.last_trace``.
        metrics:
            Optional :class:`~repro.obs.metrics.MetricsRegistry` accumulating
            task/comm/memory metrics of the runtime factorization.
        data_plane:
            Wire representation of cross-process edges for
            ``use_runtime="distributed"``: ``"shm"`` (zero-copy shared-memory
            segments, the default) or ``"pickle"`` (full pickled payloads).
        force:
            Re-factorize even when a factor is already cached.
        """
        policy = ExecutionPolicy.resolve(
            use_runtime,
            nodes=nodes,
            n_workers=n_workers,
            distribution=distribution,
            fusion=fusion,
            trace=trace,
            metrics=metrics,
            data_plane=data_plane,
        )
        if force:
            self.factor = None
        if self.factor is None:
            spec = get_format(self.format)
            if policy.uses_runtime:
                self.factor, self.factorize_runtime = spec.factorize_dtd(
                    self.matrix, policy=policy
                )
            else:
                self.factor = spec.factorize(self.matrix)
                self.factorize_runtime = None
        return self.factor

    def solve(
        self,
        b: np.ndarray,
        *,
        use_runtime: bool | str = False,
        refine: bool = False,
        nodes: int = 1,
        n_workers: int = 4,
        distribution: Optional[Union[str, DistributionStrategy]] = None,
        panel_size: Optional[int] = None,
        fusion: Optional[bool] = None,
        trace: bool = False,
        metrics: Optional[Any] = None,
        data_plane: Optional[str] = None,
    ) -> np.ndarray:
        """Solve ``A x = b`` (factorizes on first use).

        ``b`` may be a vector of length ``n`` or a matrix of shape ``(n, k)``
        holding ``k`` right-hand sides; the solution has the same shape.

        Parameters
        ----------
        use_runtime:
            Execution path of the *solve* (the factorization path is chosen
            by :meth:`factorize` and cached).  Same modes and semantics as
            :meth:`factorize`: ``False``/``"off"`` (sequential reference),
            ``True``/``"immediate"``, ``"deferred"``, ``"parallel"``
            (thread pool with ``n_workers`` threads) or ``"distributed"``
            (``nodes`` forked worker processes).  All paths produce
            bit-identical solutions.
        refine:
            Apply one iterative-refinement step against the *exact* kernel
            operator (not the compressed one), recovering accuracy lost to
            loose compression tolerances.
        nodes / n_workers / distribution:
            Runtime-backend parameters, as in :meth:`factorize`.
        panel_size:
            Columns per RHS panel of the task-graph solve; ``None`` keeps all
            ``k`` columns in one panel (bit-identical to the reference).
        fusion:
            Record-time task fusion/batching (None: fused exactly where
            required, i.e. ``use_runtime="process"``).
        trace:
            Record a measured :class:`~repro.runtime.tracing.ExecutionTrace`
            of the task-graph solve; retrieve it with :meth:`last_traces` or
            from ``self.solve_runtime.last_trace``.
        metrics:
            Optional :class:`~repro.obs.metrics.MetricsRegistry` accumulating
            task/comm/memory metrics of the task-graph solve.
        data_plane:
            Wire representation of cross-process edges for
            ``use_runtime="distributed"`` (``"shm"`` or ``"pickle"``), as in
            :meth:`factorize`.
        """
        policy = ExecutionPolicy.resolve(
            use_runtime,
            nodes=nodes,
            n_workers=n_workers,
            distribution=distribution,
            panel_size=panel_size,
            fusion=fusion,
            trace=trace,
            metrics=metrics,
            data_plane=data_plane,
        )
        if not policy.uses_runtime and (panel_size is not None or distribution is not None):
            raise ValueError(
                "panel_size and distribution only apply to the task-graph solve "
                "paths; pass use_runtime='parallel'/'distributed'/... with them"
            )
        # Fail fast on a mis-shaped b before the (expensive) factorization;
        # the inner solvers are the single validate-and-copy point.
        check_rhs_shape(b, self.n)
        factor = self.factorize()
        if not policy.uses_runtime:
            x = factor.solve(b)
            if refine:
                from repro.pipeline.panels import refine_once

                bm = np.asarray(b, dtype=np.float64).reshape(self.n, -1)
                x = refine_once(
                    factor.solve, self.kernel_matrix, bm, x.reshape(self.n, -1)
                ).reshape(x.shape)
            return x
        spec = get_format(self.format)
        x, self.solve_runtime = spec.solve_dtd(
            factor, b, policy=policy, refine=refine, matvec=self.kernel_matrix.matvec
        )
        return x

    def last_traces(self) -> dict:
        """Measured traces of the most recent traced executions, by phase.

        Returns a dict with any of the keys ``"compress"``, ``"factorize"``,
        ``"solve"`` whose phase both ran through the runtime and was traced
        (``compress_trace=`` / ``factorize(trace=True)`` /
        ``solve(trace=True)``).
        """
        out = {}
        for phase, rt in (
            ("compress", self.compress_runtime),
            ("factorize", self.factorize_runtime),
            ("solve", self.solve_runtime),
        ):
            trace = getattr(rt, "last_trace", None)
            if trace is not None:
                out[phase] = trace
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Fast matrix-vector product with the compressed approximation.

        Applied columnwise for formats whose ``matvec`` only accepts vectors.
        """
        from repro.pipeline.panels import apply_operator

        return apply_operator(self.matrix, x)

    def logdet(self) -> float:
        """Log-determinant of the compressed matrix (useful in geostatistics)."""
        return self.factorize().logdet()

    # -- accuracy -------------------------------------------------------------
    def construction_error(self, *, seed: int = 0) -> float:
        """Eq. 18: relative error of the compressed approximation against the dense matrix."""
        return construction_error(self.kernel_matrix, self.matrix, n=self.n, seed=seed)

    def solve_error(self, *, seed: int = 0, nrhs: int = 1) -> float:
        """Eq. 19: relative error of the factorization applied to the compressed matrix.

        ``nrhs > 1`` probes with a random ``(n, nrhs)`` block instead of a
        single vector (Frobenius-norm relative error).
        """
        if nrhs <= 0:
            raise ValueError(f"nrhs must be positive, got {nrhs}")
        factor = self.factorize()
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(self.n if nrhs == 1 else (self.n, nrhs))
        return solve_error(self.matrix, factor.solve, b=b)

    def __repr__(self) -> str:
        max_rank = getattr(self.matrix, "max_rank", None)
        rank_part = f", max_rank={max_rank()}" if callable(max_rank) else ""
        return (
            f"StructuredSolver(format={self.format!r}, n={self.n}{rank_part}, "
            f"factorized={self.factor is not None})"
        )


#: Backward-compatible alias from the HSS-only era; ``format="hss"`` is the
#: default, so existing code keeps working unchanged.
HSSSolver = StructuredSolver
