"""The :class:`LowRankBlock` container ``A ~= U @ V.T`` and its algebra.

LORAPO-style BLR tile Cholesky performs arithmetic directly on low-rank tiles
(products, sums, recompression after updates), so the container implements the
full closed set of operations needed by the tile algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LowRankBlock"]


@dataclass
class LowRankBlock:
    """A rank-``k`` factorisation ``A ~= U @ V.T``.

    Attributes
    ----------
    U:
        Left factor of shape ``(m, k)``.
    V:
        Right factor of shape ``(n, k)``; the represented block is ``U @ V.T``.
    """

    U: np.ndarray
    V: np.ndarray

    def __post_init__(self) -> None:
        self.U = np.asarray(self.U, dtype=np.float64)
        self.V = np.asarray(self.V, dtype=np.float64)
        if self.U.ndim != 2 or self.V.ndim != 2:
            raise ValueError("U and V must be 2D")
        if self.U.shape[1] != self.V.shape[1]:
            raise ValueError(
                f"rank mismatch: U has {self.U.shape[1]} columns, V has {self.V.shape[1]}"
            )

    # -- basic properties -------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the represented dense block."""
        return (self.U.shape[0], self.V.shape[0])

    @property
    def rank(self) -> int:
        """Number of columns of the factors."""
        return self.U.shape[1]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the factors in bytes."""
        return self.U.nbytes + self.V.nbytes

    def to_dense(self) -> np.ndarray:
        """Materialise the dense block."""
        return self.U @ self.V.T

    def copy(self) -> "LowRankBlock":
        return LowRankBlock(self.U.copy(), self.V.copy())

    # -- algebra ----------------------------------------------------------
    @property
    def T(self) -> "LowRankBlock":
        """Transpose: ``(U V^T)^T = V U^T``."""
        return LowRankBlock(self.V, self.U)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``(U V^T) x`` without forming the dense block."""
        return self.U @ (self.V.T @ x)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``(U V^T)^T x``."""
        return self.V @ (self.U.T @ x)

    def scale(self, alpha: float) -> "LowRankBlock":
        """Return ``alpha * A`` as a low-rank block."""
        return LowRankBlock(alpha * self.U, self.V.copy())

    def left_multiply(self, mat: np.ndarray) -> "LowRankBlock":
        """Return ``mat @ A`` as a low-rank block (rank unchanged)."""
        return LowRankBlock(mat @ self.U, self.V.copy())

    def right_multiply(self, mat: np.ndarray) -> "LowRankBlock":
        """Return ``A @ mat`` as a low-rank block (rank unchanged)."""
        return LowRankBlock(self.U.copy(), mat.T @ self.V)

    def matmul_lowrank(self, other: "LowRankBlock") -> "LowRankBlock":
        """Product of two low-rank blocks; resulting rank is min of the two."""
        if self.shape[1] != other.shape[0]:
            raise ValueError(f"shape mismatch {self.shape} @ {other.shape}")
        core = self.V.T @ other.U  # (k1, k2)
        if self.rank <= other.rank:
            return LowRankBlock(self.U, other.V @ core.T)
        return LowRankBlock(self.U @ core, other.V)

    def add(self, other: "LowRankBlock") -> "LowRankBlock":
        """Exact (rank-additive) sum ``A + B``; recompress afterwards if needed."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch {self.shape} + {other.shape}")
        return LowRankBlock(
            np.hstack([self.U, other.U]),
            np.hstack([self.V, other.V]),
        )

    def subtract(self, other: "LowRankBlock") -> "LowRankBlock":
        """Exact (rank-additive) difference ``A - B``."""
        return self.add(other.scale(-1.0))

    def recompress(self, *, rank: int | None = None, tol: float | None = None) -> "LowRankBlock":
        """Recompress the factors with QR + SVD to the requested rank/tolerance.

        This is the standard recompression used after rank-additive updates in
        BLR arithmetic: QR both factors, SVD the small core, truncate.
        """
        from repro.lowrank.svd import svd_rank

        if self.rank == 0:
            return self.copy()
        qu, ru = np.linalg.qr(self.U)
        qv, rv = np.linalg.qr(self.V)
        core = ru @ rv.T
        uu, ss, vvt = np.linalg.svd(core, full_matrices=False)
        k = svd_rank(ss, rank=rank, tol=tol)
        uu = uu[:, :k] * ss[:k]
        vvt = vvt[:k]
        return LowRankBlock(qu @ uu, qv @ vvt.T)

    def frobenius_norm(self) -> float:
        """Frobenius norm of the represented block, computed from the factors."""
        # ||U V^T||_F^2 = trace(V U^T U V^T) = sum((U^T U) * (V^T V))
        gu = self.U.T @ self.U
        gv = self.V.T @ self.V
        return float(np.sqrt(max(np.sum(gu * gv), 0.0)))

    @classmethod
    def zeros(cls, m: int, n: int) -> "LowRankBlock":
        """A rank-0 block of shape ``(m, n)``."""
        return cls(np.zeros((m, 0)), np.zeros((n, 0)))

    @classmethod
    def from_dense(
        cls, a: np.ndarray, *, rank: int | None = None, tol: float | None = None
    ) -> "LowRankBlock":
        """Compress a dense block with a truncated SVD."""
        from repro.lowrank.svd import compress_svd

        return compress_svd(a, rank=rank, tol=tol)

    def __repr__(self) -> str:
        return f"LowRankBlock(shape={self.shape}, rank={self.rank})"
