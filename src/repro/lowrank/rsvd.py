"""Randomized SVD (Halko-Martinsson-Tropp), the compression used by STRUMPACK.

STRUMPACK constructs its HSS representation by randomized sampling; we provide
the same primitive both for compressing explicit blocks and for building HSS
row bases from sampled far-field columns.
"""

from __future__ import annotations

import numpy as np

from repro.lowrank.block import LowRankBlock
from repro.lowrank.svd import svd_rank

__all__ = ["rsvd", "compress_rsvd", "random_range_finder"]


def random_range_finder(
    a: np.ndarray, rank: int, *, oversample: int = 10, n_iter: int = 1, seed: int = 0
) -> np.ndarray:
    """Approximate orthonormal basis of the column space of ``a`` (m x n).

    Uses a Gaussian test matrix with ``rank + oversample`` columns and
    ``n_iter`` power iterations for spectral-decay sharpening.
    """
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    k = min(rank + oversample, n, m)
    if k == 0:
        return np.zeros((m, 0))
    rng = np.random.default_rng(seed)
    omega = rng.standard_normal((n, k))
    y = a @ omega
    q, _ = np.linalg.qr(y)
    for _ in range(n_iter):
        z = a.T @ q
        z, _ = np.linalg.qr(z)
        y = a @ z
        q, _ = np.linalg.qr(y)
    return q


def rsvd(
    a: np.ndarray,
    rank: int,
    *,
    oversample: int = 10,
    n_iter: int = 1,
    tol: float | None = None,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized truncated SVD ``a ~= U diag(s) Vt`` of target rank ``rank``."""
    a = np.asarray(a, dtype=np.float64)
    q = random_range_finder(a, rank, oversample=oversample, n_iter=n_iter, seed=seed)
    b = q.T @ a
    ub, s, vt = np.linalg.svd(b, full_matrices=False)
    k = svd_rank(s, rank=rank, tol=tol)
    return q @ ub[:, :k], s[:k], vt[:k]


def compress_rsvd(
    a: np.ndarray,
    rank: int,
    *,
    oversample: int = 10,
    n_iter: int = 1,
    tol: float | None = None,
    seed: int = 0,
) -> LowRankBlock:
    """Randomized-SVD compression into a :class:`LowRankBlock`."""
    u, s, vt = rsvd(a, rank, oversample=oversample, n_iter=n_iter, tol=tol, seed=seed)
    return LowRankBlock(u * s, vt.T)
