"""Low-rank compression tools: truncated SVD, pivoted QR bases, ACA, RSVD."""

from repro.lowrank.block import LowRankBlock
from repro.lowrank.svd import truncated_svd, compress_svd, svd_rank
from repro.lowrank.qr import row_basis, orthogonal_complement, full_orthogonal_basis
from repro.lowrank.aca import aca, compress_aca
from repro.lowrank.rsvd import rsvd, compress_rsvd
from repro.lowrank.interpolative import interpolative_rows

__all__ = [
    "interpolative_rows",
    "LowRankBlock",
    "truncated_svd",
    "compress_svd",
    "svd_rank",
    "row_basis",
    "orthogonal_complement",
    "full_orthogonal_basis",
    "aca",
    "compress_aca",
    "rsvd",
    "compress_rsvd",
]
