"""Interpolative (skeleton) row selection via column-pivoted QR.

Used by the fast ("interpolative") HSS construction: a block row ``A`` of a
cluster is approximated as ``A ~= P @ A[sel, :]`` where ``sel`` indexes a
subset of *skeleton* rows (actual points) and ``P`` is the interpolation
operator with ``P[sel, :] = I``.  Because the skeleton rows correspond to real
points, couplings between clusters reduce to kernel evaluations on skeleton
points only, giving a near-linear-time construction (the same idea underlies
HATRIX and STRUMPACK's randomized/ID constructions).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = ["interpolative_rows"]


def interpolative_rows(
    a: np.ndarray, *, rank: int | None = None, tol: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Row interpolative decomposition ``a ~= P @ a[sel, :]``.

    Parameters
    ----------
    a:
        Block of shape ``(m, n)``.
    rank:
        Hard cap on the number of skeleton rows.
    tol:
        Relative tolerance on the pivoted-QR diagonal for adaptive rank.

    Returns
    -------
    (sel, P):
        ``sel`` -- integer array of ``k`` selected row indices (in pivot
        order); ``P`` -- interpolation matrix of shape ``(m, k)`` with
        ``P[sel, :] = I_k``.
    """
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    if m == 0:
        return np.zeros(0, dtype=np.intp), np.zeros((0, 0))
    if n == 0 or (rank is not None and rank <= 0):
        return np.zeros(0, dtype=np.intp), np.zeros((m, 0))

    # Column-pivoted QR of a^T selects columns of a^T == rows of a.
    _, r, piv = scipy.linalg.qr(a.T, mode="economic", pivoting=True)
    diag = np.abs(np.diag(r))
    kmax = diag.size
    k = kmax
    if tol is not None and diag.size > 0 and diag[0] > 0:
        k = int(np.count_nonzero(diag > tol * diag[0]))
        k = max(k, 1)
    if rank is not None:
        k = min(k, int(rank))
    k = min(k, m)
    if k == 0:
        return np.zeros(0, dtype=np.intp), np.zeros((m, 0))

    sel = np.asarray(piv[:k], dtype=np.intp)
    rest = np.asarray(piv[k:], dtype=np.intp)

    # a^T[:, piv] = Q [R11 R12]  =>  a^T[:, rest] ~= a^T[:, sel] (R11^{-1} R12)
    r11 = r[:k, :k]
    r12 = r[:k, k:]
    if r12.shape[1] > 0:
        x = scipy.linalg.solve_triangular(r11, r12, lower=False)
    else:
        x = np.zeros((k, 0))

    p = np.zeros((m, k))
    p[sel, :] = np.eye(k)
    p[rest, :] = x.T
    return sel, p
