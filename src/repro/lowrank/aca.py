"""Adaptive Cross Approximation (ACA) with partial pivoting.

ACA builds a low-rank approximation of a block from O(k (m + n)) kernel
evaluations by greedily selecting cross rows/columns.  It is the compression
algorithm cited by the paper (Rjasanow 2002) for hierarchical matrix
construction and is used here as an alternative to SVD/RSVD compression for
large admissible blocks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.lowrank.block import LowRankBlock

__all__ = ["aca", "compress_aca"]


def aca(
    row_fn: Callable[[int], np.ndarray],
    col_fn: Callable[[int], np.ndarray],
    shape: tuple[int, int],
    *,
    tol: float = 1e-8,
    max_rank: int | None = None,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """ACA with partial pivoting on an implicitly defined block.

    Parameters
    ----------
    row_fn:
        ``row_fn(i)`` returns row ``i`` of the block (length ``n``).
    col_fn:
        ``col_fn(j)`` returns column ``j`` of the block (length ``m``).
    shape:
        ``(m, n)`` of the block.
    tol:
        Relative Frobenius-norm stopping tolerance.
    max_rank:
        Hard cap on the number of crosses.
    seed:
        Seed for the initial pivot row choice.

    Returns
    -------
    (U, V):
        Factors such that the block is approximately ``U @ V.T``.
    """
    m, n = shape
    if m == 0 or n == 0:
        return np.zeros((m, 0)), np.zeros((n, 0))
    max_rank = min(m, n) if max_rank is None else min(int(max_rank), m, n)

    rng = np.random.default_rng(seed)
    u_cols: list[np.ndarray] = []
    v_cols: list[np.ndarray] = []
    used_rows: set[int] = set()
    used_cols: set[int] = set()

    approx_norm_sq = 0.0
    pivot_row = int(rng.integers(m))

    for _ in range(max_rank):
        # Residual row at the pivot row.
        row = row_fn(pivot_row).astype(np.float64).copy()
        for u, v in zip(u_cols, v_cols):
            row -= u[pivot_row] * v
        used_rows.add(pivot_row)

        # Pivot column: largest residual entry not used yet.
        order = np.argsort(-np.abs(row))
        pivot_col = next((int(j) for j in order if int(j) not in used_cols), None)
        if pivot_col is None or abs(row[pivot_col]) < np.finfo(np.float64).tiny:
            break
        used_cols.add(pivot_col)

        col = col_fn(pivot_col).astype(np.float64).copy()
        for u, v in zip(u_cols, v_cols):
            col -= v[pivot_col] * u

        pivot_val = row[pivot_col]
        u_new = col / pivot_val
        v_new = row

        # Stopping criterion (Bebendorf): ||u_k|| ||v_k|| <= tol * ||A_k||_F estimate.
        cross_norm = np.linalg.norm(u_new) * np.linalg.norm(v_new)
        approx_norm_sq += cross_norm**2
        for u, v in zip(u_cols, v_cols):
            approx_norm_sq += 2.0 * abs(np.dot(u_new, u) * np.dot(v_new, v))
        u_cols.append(u_new)
        v_cols.append(v_new)

        if cross_norm <= tol * np.sqrt(max(approx_norm_sq, np.finfo(np.float64).tiny)):
            break

        # Next pivot row: largest residual entry of the new column not used yet.
        order = np.argsort(-np.abs(u_new))
        pivot_row = next((int(i) for i in order if int(i) not in used_rows), None)
        if pivot_row is None:
            break

    if not u_cols:
        return np.zeros((m, 0)), np.zeros((n, 0))
    return np.column_stack(u_cols), np.column_stack(v_cols)


def compress_aca(
    block: np.ndarray, *, tol: float = 1e-8, max_rank: int | None = None, seed: int = 0
) -> LowRankBlock:
    """ACA compression of an explicitly assembled dense block."""
    a = np.asarray(block, dtype=np.float64)
    u, v = aca(
        lambda i: a[i, :],
        lambda j: a[:, j],
        a.shape,
        tol=tol,
        max_rank=max_rank,
        seed=seed,
    )
    return LowRankBlock(u, v)
