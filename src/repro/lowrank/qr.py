"""Pivoted-QR style shared-basis computation (paper Eq. 2-3).

The BLR2/HSS construction computes, for each cluster, an orthonormal *skeleton*
basis ``U^S`` spanning the row space of the concatenated admissible blocks,
plus its orthogonal complement ``U^R`` (the *redundant* part).  The square
orthogonal matrix ``U = [U^R U^S]`` is what the ULV factorization multiplies
each row/column block with (Eq. 3-8).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = ["row_basis", "orthogonal_complement", "full_orthogonal_basis"]


def row_basis(
    block_row: np.ndarray,
    *,
    rank: int | None = None,
    tol: float | None = None,
    method: str = "svd",
) -> np.ndarray:
    """Orthonormal column basis ``U^S`` (shape ``m x r``) of a block row ``(m, n)``.

    Parameters
    ----------
    block_row:
        Concatenation of the admissible blocks of one cluster row, ``A_{i,+}``
        (or a column-sampled approximation of it).
    rank:
        Hard cap on the basis rank (paper "max rank").
    tol:
        Relative tolerance on the singular values / pivot magnitudes.
    method:
        ``"svd"`` (default, most accurate) or ``"qr"`` (column-pivoted QR of
        the transpose, exactly Eq. 2 of the paper).
    """
    a = np.asarray(block_row, dtype=np.float64)
    m = a.shape[0]
    if a.size == 0:
        return np.zeros((m, 0))
    if method == "svd":
        u, s, _ = np.linalg.svd(a, full_matrices=False)
        from repro.lowrank.svd import svd_rank

        k = svd_rank(s, rank=rank, tol=tol)
        return u[:, :k]
    if method == "qr":
        # Pivoted QR of A^T: A^T P = Q R  =>  columns of Q span the row space of A^T,
        # i.e. the column space of A.
        q, r, _ = scipy.linalg.qr(a.T, mode="economic", pivoting=True)
        diag = np.abs(np.diag(r))
        if diag.size == 0:
            return np.zeros((m, 0))
        k = diag.size
        if tol is not None:
            k = max(int(np.count_nonzero(diag > tol * diag[0])), 1)
        if rank is not None:
            k = min(k, int(rank))
        # q has shape (n, min(m, n)) from A^T; we need a basis in R^m, so use the
        # SVD path for the actual basis but keep the QR-determined rank.
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        return u[:, :k]
    raise ValueError(f"unknown method {method!r}; use 'svd' or 'qr'")


def orthogonal_complement(basis: np.ndarray) -> np.ndarray:
    """Orthonormal basis ``U^R`` of the orthogonal complement of ``span(basis)``.

    ``basis`` must have orthonormal columns; the returned matrix has shape
    ``(m, m - r)`` and ``[U^R basis]`` is square orthogonal.
    """
    basis = np.asarray(basis, dtype=np.float64)
    m, r = basis.shape
    if r == 0:
        return np.eye(m)
    if r >= m:
        return np.zeros((m, 0))
    q, _ = np.linalg.qr(basis, mode="complete")
    # The first r columns of q span span(basis); the remainder is the complement.
    # Re-project to be safe against sign/ordering conventions:
    comp = q[:, r:]
    # Orthogonalise the complement against the basis explicitly (numerical hygiene).
    comp = comp - basis @ (basis.T @ comp)
    comp, _ = np.linalg.qr(comp)
    return comp


def full_orthogonal_basis(skeleton: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(U, U_R, U_S)`` with ``U = [U_R U_S]`` square orthogonal (Eq. 3).

    Parameters
    ----------
    skeleton:
        The skeleton basis ``U^S`` with orthonormal columns (``m x r``).

    Returns
    -------
    (U, U_R, U_S):
        ``U`` is ``m x m`` orthogonal; ``U_R`` is the redundant part
        (``m x (m-r)``), ``U_S`` the skeleton part (``m x r``).
    """
    u_s = np.asarray(skeleton, dtype=np.float64)
    u_r = orthogonal_complement(u_s)
    u = np.hstack([u_r, u_s])
    return u, u_r, u_s
