"""Truncated singular value decomposition based compression."""

from __future__ import annotations

import numpy as np

from repro.lowrank.block import LowRankBlock

__all__ = ["svd_rank", "truncated_svd", "compress_svd"]


def svd_rank(singular_values: np.ndarray, *, rank: int | None = None, tol: float | None = None) -> int:
    """Number of singular values to keep given a rank cap and/or relative tolerance.

    Parameters
    ----------
    singular_values:
        Singular values in non-increasing order.
    rank:
        Hard cap on the returned rank (the paper's "max rank" parameter).
    tol:
        Relative 2-norm tolerance: keep all values ``> tol * s[0]``.

    Returns
    -------
    int
        The truncation rank, at least 0 and at most ``len(singular_values)``.
    """
    s = np.asarray(singular_values, dtype=np.float64)
    if s.size == 0:
        return 0
    k = s.size
    if tol is not None:
        threshold = tol * s[0]
        k = int(np.count_nonzero(s > threshold))
        k = max(k, 1) if s[0] > 0 else 0
    if rank is not None:
        k = min(k, int(rank))
    return max(min(k, s.size), 0)


def truncated_svd(
    a: np.ndarray, *, rank: int | None = None, tol: float | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD ``a ~= U @ diag(s) @ Vt`` with the truncation rule of :func:`svd_rank`."""
    a = np.asarray(a, dtype=np.float64)
    u, s, vt = np.linalg.svd(a, full_matrices=False)
    k = svd_rank(s, rank=rank, tol=tol)
    return u[:, :k], s[:k], vt[:k]


def compress_svd(a: np.ndarray, *, rank: int | None = None, tol: float | None = None) -> LowRankBlock:
    """Compress a dense block into a :class:`LowRankBlock` using a truncated SVD."""
    u, s, vt = truncated_svd(a, rank=rank, tol=tol)
    return LowRankBlock(u * s, vt.T)
