"""Baseline factorizations the paper compares against.

* :mod:`repro.baselines.dense_cholesky` -- dense tile Cholesky
  (DPLASMA / SLATE rows of Table 1), also the numerical ground truth.
* :mod:`repro.baselines.lorapo_like` -- BLR tile Cholesky driven by the DTD
  runtime (LORAPO).
* :mod:`repro.baselines.strumpack_like` -- HSS-ULV with fork-join scheduling
  and block-cyclic distribution (STRUMPACK).
"""

from repro.baselines.dense_cholesky import (
    tile_cholesky_dtd,
    build_dense_cholesky_taskgraph,
    DenseCholeskyFactor,
)
from repro.baselines.lorapo_like import (
    BLRCholeskyFactor,
    blr_cholesky_factorize,
    build_blr_cholesky_taskgraph,
)
from repro.baselines.strumpack_like import (
    build_strumpack_hss,
    strumpack_factorize,
    build_strumpack_taskgraph,
)

__all__ = [
    "tile_cholesky_dtd",
    "build_dense_cholesky_taskgraph",
    "DenseCholeskyFactor",
    "BLRCholeskyFactor",
    "blr_cholesky_factorize",
    "build_blr_cholesky_taskgraph",
    "build_strumpack_hss",
    "strumpack_factorize",
    "build_strumpack_taskgraph",
]
