"""STRUMPACK-like baseline: HSS-ULV with fork-join parallelism (Sec. 4.3).

STRUMPACK uses the *same* HSS format and ULV algorithm as HATRIX-DTD, but its
distributed execution is bulk-synchronous: every matrix block is block-cyclic
over a ScaLAPACK process grid, data is shuffled with collectives, and a level
of the HSS tree must complete globally before the next level starts.  Keeping
the numerics identical and changing only the scheduling/distribution isolates
the runtime-system effect, exactly as the paper's comparison does.
"""

from __future__ import annotations

from typing import Optional

from repro.core.hss_ulv import HSSULVFactor, hss_ulv_factorize
from repro.core.hss_ulv_dtd import build_hss_ulv_taskgraph
from repro.distribution.strategies import BlockCyclicDistribution
from repro.formats.hss import HSSMatrix, HSSStructure, build_hss
from repro.kernels.assembly import KernelMatrix
from repro.runtime.dtd import DTDRuntime

__all__ = ["build_strumpack_hss", "strumpack_factorize", "build_strumpack_taskgraph"]


def build_strumpack_hss(
    kernel_matrix: KernelMatrix,
    *,
    leaf_size: int = 256,
    max_rank: int = 100,
    tol: float = 1e-8,
    method: str = "interpolative",
    seed: int = 0,
) -> HSSMatrix:
    """Construct an HSS matrix the way STRUMPACK does: adaptive rank to a tolerance.

    STRUMPACK compresses to a fixed relative tolerance (1e-8 in the paper's
    Table 2) with the user-supplied maximum rank as a cap, using randomized
    sampling; here the interpolative construction with the same tolerance/cap
    plays that role.
    """
    return build_hss(
        kernel_matrix,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tol=tol,
        method=method,
        seed=seed,
    )


def strumpack_factorize(hss: HSSMatrix) -> HSSULVFactor:
    """Factorize with the HSS-ULV algorithm (identical numerics to HATRIX-DTD).

    The difference from HATRIX-DTD is purely in the distributed execution
    model, which is captured by :func:`build_strumpack_taskgraph` plus the
    ``forkjoin`` simulation policy.
    """
    return hss_ulv_factorize(hss)


def build_strumpack_taskgraph(
    structure: HSSStructure,
    *,
    nodes: int = 1,
    runtime: Optional[DTDRuntime] = None,
) -> DTDRuntime:
    """Symbolic STRUMPACK task graph: HSS-ULV tasks with block-cyclic distribution.

    The graph must be simulated with ``policy="forkjoin"`` to model the level
    barriers and collective communication of the bulk-synchronous execution.
    """
    return build_hss_ulv_taskgraph(
        structure,
        nodes=nodes,
        distribution=BlockCyclicDistribution(nodes),
        runtime=runtime,
    )
