"""Dense tile (block) Cholesky factorization -- the DPLASMA / SLATE baseline.

This is the O(N^3) reference of Table 1 and the example DAG of Fig. 6: the
classic right-looking blocked Cholesky expressed as POTRF / TRSM / SYRK / GEMM
tasks on matrix tiles.  It also provides the numerically exact factorization
used as ground truth by the error metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.linalg

from repro.distribution.strategies import BlockCyclicDistribution, DistributionStrategy
from repro.formats.block_dense import BlockDenseMatrix
from repro.runtime.dtd import DTDRuntime
from repro.runtime.flops import flops_gemm, flops_potrf, flops_syrk, flops_trsm
from repro.runtime.task import AccessMode

__all__ = ["DenseCholeskyFactor", "tile_cholesky_dtd", "build_dense_cholesky_taskgraph"]


@dataclass
class DenseCholeskyFactor:
    """Lower-triangular tile Cholesky factor ``A = L L^T``.

    Attributes
    ----------
    offsets:
        Tile boundaries (same convention as :class:`BlockDenseMatrix`).
    tiles:
        Lower-triangle tiles ``L[(i, j)]`` for ``i >= j``.
    """

    offsets: list[int]
    tiles: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.offsets[-1]

    @property
    def nblocks(self) -> int:
        return len(self.offsets) - 1

    def to_dense(self) -> np.ndarray:
        """Assemble the dense lower-triangular factor."""
        out = np.zeros((self.n, self.n))
        for (i, j), tile in self.tiles.items():
            out[self.offsets[i] : self.offsets[i + 1], self.offsets[j] : self.offsets[j + 1]] = tile
        return out

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` with forward/backward block substitution."""
        b = np.asarray(b, dtype=np.float64)
        single = b.ndim == 1
        x = b.reshape(self.n, -1).copy()
        nb = self.nblocks
        # Forward solve L y = b.
        for i in range(nb):
            ri = slice(self.offsets[i], self.offsets[i + 1])
            for j in range(i):
                rj = slice(self.offsets[j], self.offsets[j + 1])
                x[ri] -= self.tiles[(i, j)] @ x[rj]
            x[ri] = scipy.linalg.solve_triangular(self.tiles[(i, i)], x[ri], lower=True)
        # Backward solve L^T x = y.
        for i in reversed(range(nb)):
            ri = slice(self.offsets[i], self.offsets[i + 1])
            for j in range(i + 1, nb):
                rj = slice(self.offsets[j], self.offsets[j + 1])
                x[ri] -= self.tiles[(j, i)].T @ x[rj]
            x[ri] = scipy.linalg.solve_triangular(self.tiles[(i, i)].T, x[ri], lower=False)
        return x[:, 0] if single else x

    def logdet(self) -> float:
        """``log(det(A))`` from the diagonal tiles."""
        total = 0.0
        for i in range(self.nblocks):
            total += 2.0 * float(np.sum(np.log(np.diag(self.tiles[(i, i)]))))
        return total


def tile_cholesky_dtd(
    matrix: BlockDenseMatrix,
    *,
    runtime: Optional[DTDRuntime] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
) -> Tuple[DenseCholeskyFactor, DTDRuntime]:
    """Right-looking tile Cholesky through the DTD runtime (Fig. 6's DAG).

    Returns the numerical factor and the runtime holding the recorded graph.
    """
    rt = runtime if runtime is not None else DTDRuntime(execution="immediate")
    nb = matrix.nblocks
    factor = DenseCholeskyFactor(offsets=list(matrix.offsets))

    # Working tiles (lower triangle only; symmetry for the upper triangle).
    work: Dict[Tuple[int, int], np.ndarray] = {}
    handles: Dict[Tuple[int, int], object] = {}
    for i in range(nb):
        for j in range(i + 1):
            work[(i, j)] = matrix.block(i, j).copy()
            m, n = work[(i, j)].shape
            handles[(i, j)] = rt.new_handle(f"A[{i},{j}]", nbytes=8 * m * n, row=i, col=j, level=0)

    strategy = distribution if distribution is not None else BlockCyclicDistribution(nodes)
    strategy.assign(rt.handles)

    for k in range(nb):
        bk = matrix.block_shape(k, k)[0]

        def potrf(k=k) -> None:
            work[(k, k)] = np.linalg.cholesky(work[(k, k)])
            factor.tiles[(k, k)] = work[(k, k)]

        rt.insert_task(
            potrf,
            [(handles[(k, k)], AccessMode.RW)],
            name=f"POTRF({k})",
            kind="POTRF",
            flops=flops_potrf(bk),
            phase=k,
        )

        for i in range(k + 1, nb):
            bi = matrix.block_shape(i, k)[0]

            def trsm(i=i, k=k) -> None:
                work[(i, k)] = scipy.linalg.solve_triangular(
                    work[(k, k)], work[(i, k)].T, lower=True
                ).T
                factor.tiles[(i, k)] = work[(i, k)]

            rt.insert_task(
                trsm,
                [(handles[(k, k)], AccessMode.READ), (handles[(i, k)], AccessMode.RW)],
                name=f"TRSM({i},{k})",
                kind="TRSM",
                flops=flops_trsm(bk, bi),
                phase=k,
            )

        for i in range(k + 1, nb):
            bi = matrix.block_shape(i, k)[0]
            for j in range(k + 1, i + 1):
                bj = matrix.block_shape(j, k)[0]
                if i == j:

                    def syrk(i=i, k=k) -> None:
                        work[(i, i)] = work[(i, i)] - work[(i, k)] @ work[(i, k)].T

                    rt.insert_task(
                        syrk,
                        [(handles[(i, k)], AccessMode.READ), (handles[(i, i)], AccessMode.RW)],
                        name=f"SYRK({i},{k})",
                        kind="SYRK",
                        flops=flops_syrk(bi, bk),
                        phase=k,
                    )
                else:

                    def gemm(i=i, j=j, k=k) -> None:
                        work[(i, j)] = work[(i, j)] - work[(i, k)] @ work[(j, k)].T

                    rt.insert_task(
                        gemm,
                        [
                            (handles[(i, k)], AccessMode.READ),
                            (handles[(j, k)], AccessMode.READ),
                            (handles[(i, j)], AccessMode.RW),
                        ],
                        name=f"GEMM({i},{j},{k})",
                        kind="GEMM",
                        flops=flops_gemm(bi, bj, bk),
                        phase=k,
                    )

    rt.run()
    return factor, rt


def build_dense_cholesky_taskgraph(
    n: int,
    block_size: int,
    *,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    runtime: Optional[DTDRuntime] = None,
) -> DTDRuntime:
    """Symbolic tile-Cholesky task graph for an ``n x n`` matrix (simulation input)."""
    rt = runtime if runtime is not None else DTDRuntime(execution="symbolic")
    offsets = list(range(0, n, block_size)) + [n]
    nb = len(offsets) - 1
    sizes = [offsets[i + 1] - offsets[i] for i in range(nb)]

    handles: Dict[Tuple[int, int], object] = {}
    for i in range(nb):
        for j in range(i + 1):
            handles[(i, j)] = rt.new_handle(
                f"A[{i},{j}]", nbytes=8 * sizes[i] * sizes[j], row=i, col=j, level=0
            )
    strategy = distribution if distribution is not None else BlockCyclicDistribution(nodes)
    strategy.assign(rt.handles)

    for k in range(nb):
        rt.insert_task(
            None,
            [(handles[(k, k)], AccessMode.RW)],
            name=f"POTRF({k})",
            kind="POTRF",
            flops=flops_potrf(sizes[k]),
            phase=k,
        )
        for i in range(k + 1, nb):
            rt.insert_task(
                None,
                [(handles[(k, k)], AccessMode.READ), (handles[(i, k)], AccessMode.RW)],
                name=f"TRSM({i},{k})",
                kind="TRSM",
                flops=flops_trsm(sizes[k], sizes[i]),
                phase=k,
            )
        for i in range(k + 1, nb):
            for j in range(k + 1, i + 1):
                if i == j:
                    rt.insert_task(
                        None,
                        [(handles[(i, k)], AccessMode.READ), (handles[(i, i)], AccessMode.RW)],
                        name=f"SYRK({i},{k})",
                        kind="SYRK",
                        flops=flops_syrk(sizes[i], sizes[k]),
                        phase=k,
                    )
                else:
                    rt.insert_task(
                        None,
                        [
                            (handles[(i, k)], AccessMode.READ),
                            (handles[(j, k)], AccessMode.READ),
                            (handles[(i, j)], AccessMode.RW),
                        ],
                        name=f"GEMM({i},{j},{k})",
                        kind="GEMM",
                        flops=flops_gemm(sizes[i], sizes[j], sizes[k]),
                        phase=k,
                    )
    return rt
