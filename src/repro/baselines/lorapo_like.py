"""LORAPO-like baseline: BLR tile Cholesky on the asynchronous DTD runtime.

LORAPO (Cao et al., IPDPS 2022) runs the classic right-looking tile Cholesky
on a Block Low-Rank matrix with PaRSEC: POTRF on dense diagonal tiles, TRSM /
SYRK / GEMM on individually compressed low-rank tiles, with recompression
after each rank-additive update.  Its computational complexity is O(N^2) and
its communication is dominated by the trailing-submatrix updates -- the two
properties the paper contrasts with the HSS-ULV (Table 1, Sec. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.linalg

from repro.distribution.strategies import BlockCyclicDistribution, DistributionStrategy
from repro.formats.blr import BLRMatrix
from repro.lowrank.block import LowRankBlock
from repro.runtime.dtd import DTDRuntime
from repro.runtime.flops import flops_gemm, flops_potrf, flops_qr, flops_syrk, flops_trsm
from repro.runtime.task import AccessMode

__all__ = ["BLRCholeskyFactor", "blr_cholesky_factorize", "build_blr_cholesky_taskgraph"]


@dataclass
class BLRCholeskyFactor:
    """Lower-triangular BLR Cholesky factor.

    Attributes
    ----------
    blr:
        The factorized BLR matrix (for block ranges).
    diag:
        Dense lower-triangular diagonal factors ``L_{k,k}``.
    lower:
        Low-rank sub-diagonal factors ``L_{i,k}`` for ``i > k``.
    """

    blr: BLRMatrix
    diag: Dict[int, np.ndarray] = field(default_factory=dict)
    lower: Dict[Tuple[int, int], LowRankBlock] = field(default_factory=dict)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` with block forward/backward substitution."""
        b = np.asarray(b, dtype=np.float64)
        single = b.ndim == 1
        x = b.reshape(self.blr.n, -1).copy()
        nb = self.blr.nblocks
        ranges = [self.blr.block_range(i) for i in range(nb)]
        # Forward: L y = b.
        for i in range(nb):
            for j in range(i):
                x[ranges[i]] -= self.lower[(i, j)].matvec(x[ranges[j]])
            x[ranges[i]] = scipy.linalg.solve_triangular(self.diag[i], x[ranges[i]], lower=True)
        # Backward: L^T x = y.
        for i in reversed(range(nb)):
            for j in range(i + 1, nb):
                x[ranges[i]] -= self.lower[(j, i)].rmatvec(x[ranges[j]])
            x[ranges[i]] = scipy.linalg.solve_triangular(self.diag[i].T, x[ranges[i]], lower=False)
        return x[:, 0] if single else x

    def logdet(self) -> float:
        """``log(det(A))`` from the dense diagonal factors."""
        return float(sum(2.0 * np.sum(np.log(np.diag(d))) for d in self.diag.values()))

    def max_rank(self) -> int:
        """Largest rank among the low-rank factors after all updates."""
        return max((lr.rank for lr in self.lower.values()), default=0)


def blr_cholesky_factorize(
    blr: BLRMatrix,
    *,
    tol: float = 1e-10,
    max_rank: Optional[int] = None,
    runtime: Optional[DTDRuntime] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
) -> Tuple[BLRCholeskyFactor, DTDRuntime]:
    """Tile Cholesky of a weak-admissibility BLR matrix through the DTD runtime.

    Parameters
    ----------
    blr:
        The SPD BLR matrix (all off-diagonal tiles low-rank).
    tol, max_rank:
        Recompression parameters applied after every GEMM update
        (LORAPO compresses adaptively to its accuracy threshold).
    runtime, nodes, distribution:
        Runtime/distribution knobs as in the other task-based factorizations;
        LORAPO uses a block-cyclic (tile-to-process-grid) distribution.

    Returns
    -------
    (factor, runtime)
    """
    rt = runtime if runtime is not None else DTDRuntime(execution="immediate")
    nb = blr.nblocks
    factor = BLRCholeskyFactor(blr=blr)

    # Working copies (lower triangle).
    diag: Dict[int, np.ndarray] = {i: blr.diag[i].copy() for i in range(nb)}
    low: Dict[Tuple[int, int], LowRankBlock] = {}
    for i in range(nb):
        for j in range(i):
            if blr.is_lowrank(i, j):
                tile = blr.lowrank[(i, j)].copy()
                if max_rank is not None and tile.rank > max_rank:
                    tile = tile.recompress(rank=max_rank, tol=tol)
                low[(i, j)] = tile
            else:
                low[(i, j)] = LowRankBlock.from_dense(blr.dense_offdiag[(i, j)], tol=tol, rank=max_rank)

    handles: Dict[Tuple[int, int], object] = {}
    for i in range(nb):
        for j in range(i + 1):
            if i == j:
                nbytes = diag[i].nbytes
            else:
                nbytes = low[(i, j)].nbytes
            handles[(i, j)] = rt.new_handle(f"A[{i},{j}]", nbytes=nbytes, row=i, col=j, level=0)
    strategy = distribution if distribution is not None else BlockCyclicDistribution(nodes)
    strategy.assign(rt.handles)

    block_sizes = [blr.tree.leaves[i].size for i in range(nb)]

    for k in range(nb):
        bk = block_sizes[k]

        def potrf(k=k) -> None:
            diag[k] = np.linalg.cholesky(diag[k])
            factor.diag[k] = diag[k]

        rt.insert_task(
            potrf,
            [(handles[(k, k)], AccessMode.RW)],
            name=f"POTRF({k})",
            kind="POTRF",
            flops=flops_potrf(bk),
            phase=k,
        )

        for i in range(k + 1, nb):
            rank_ik = low[(i, k)].rank

            def trsm(i=i, k=k) -> None:
                tile = low[(i, k)]
                v_new = scipy.linalg.solve_triangular(diag[k], tile.V, lower=True)
                low[(i, k)] = LowRankBlock(tile.U, v_new)
                factor.lower[(i, k)] = low[(i, k)]

            rt.insert_task(
                trsm,
                [(handles[(k, k)], AccessMode.READ), (handles[(i, k)], AccessMode.RW)],
                name=f"TRSM({i},{k})",
                kind="TRSM",
                flops=flops_trsm(bk, rank_ik),
                phase=k,
            )

        for i in range(k + 1, nb):
            bi = block_sizes[i]
            rank_ik = low[(i, k)].rank
            for j in range(k + 1, i + 1):
                rank_jk = low[(j, k)].rank if j != i else rank_ik
                if i == j:

                    def syrk(i=i, k=k) -> None:
                        tile = low[(i, k)]
                        gram = tile.V.T @ tile.V
                        diag[i] = diag[i] - tile.U @ gram @ tile.U.T

                    rt.insert_task(
                        syrk,
                        [(handles[(i, k)], AccessMode.READ), (handles[(i, i)], AccessMode.RW)],
                        name=f"SYRK({i},{k})",
                        kind="SYRK",
                        flops=flops_gemm(rank_ik, rank_ik, bi) + flops_gemm(bi, bi, rank_ik),
                        phase=k,
                    )
                else:

                    def gemm(i=i, j=j, k=k) -> None:
                        update = low[(i, k)].matmul_lowrank(low[(j, k)].T)
                        low[(i, j)] = low[(i, j)].subtract(update).recompress(rank=max_rank, tol=tol)

                    bj = block_sizes[j]
                    update_rank = min(rank_ik, rank_jk)
                    gemm_flops = (
                        flops_gemm(rank_ik, rank_jk, bk)
                        + flops_gemm(bi, update_rank, rank_ik)
                        + 2.0 * flops_qr(bi, 2 * update_rank)
                        + flops_gemm(bj, update_rank, rank_jk)
                    )
                    rt.insert_task(
                        gemm,
                        [
                            (handles[(i, k)], AccessMode.READ),
                            (handles[(j, k)], AccessMode.READ),
                            (handles[(i, j)], AccessMode.RW),
                        ],
                        name=f"GEMM({i},{j},{k})",
                        kind="GEMM",
                        flops=gemm_flops,
                        phase=k,
                    )

    rt.run()
    return factor, rt


def build_blr_cholesky_taskgraph(
    n: int,
    leaf_size: int,
    rank: int,
    *,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    runtime: Optional[DTDRuntime] = None,
) -> DTDRuntime:
    """Symbolic LORAPO task graph (BLR tile Cholesky) for simulation.

    Every off-diagonal tile is assumed to carry the given ``rank`` (LORAPO's
    adaptive ranks are capped by its max-rank parameter; a uniform rank is the
    standard model for its cost).
    """
    rt = runtime if runtime is not None else DTDRuntime(execution="symbolic")
    nb = max(n // leaf_size, 1)
    b = leaf_size
    r = min(rank, leaf_size)

    handles: Dict[Tuple[int, int], object] = {}
    for i in range(nb):
        for j in range(i + 1):
            nbytes = 8 * b * b if i == j else 8 * 2 * b * r
            handles[(i, j)] = rt.new_handle(f"A[{i},{j}]", nbytes=nbytes, row=i, col=j, level=0)
    strategy = distribution if distribution is not None else BlockCyclicDistribution(nodes)
    strategy.assign(rt.handles)

    for k in range(nb):
        rt.insert_task(
            None,
            [(handles[(k, k)], AccessMode.RW)],
            name=f"POTRF({k})",
            kind="POTRF",
            flops=flops_potrf(b),
            phase=k,
        )
        for i in range(k + 1, nb):
            rt.insert_task(
                None,
                [(handles[(k, k)], AccessMode.READ), (handles[(i, k)], AccessMode.RW)],
                name=f"TRSM({i},{k})",
                kind="TRSM",
                flops=flops_trsm(b, r),
                phase=k,
            )
        for i in range(k + 1, nb):
            for j in range(k + 1, i + 1):
                if i == j:
                    rt.insert_task(
                        None,
                        [(handles[(i, k)], AccessMode.READ), (handles[(i, i)], AccessMode.RW)],
                        name=f"SYRK({i},{k})",
                        kind="SYRK",
                        flops=flops_gemm(r, r, b) + flops_gemm(b, b, r),
                        phase=k,
                    )
                else:
                    gemm_flops = (
                        flops_gemm(r, r, b)
                        + flops_gemm(b, r, r)
                        + 2.0 * flops_qr(b, 2 * r)
                    )
                    rt.insert_task(
                        None,
                        [
                            (handles[(i, k)], AccessMode.READ),
                            (handles[(j, k)], AccessMode.READ),
                            (handles[(i, j)], AccessMode.RW),
                        ],
                        name=f"GEMM({i},{j},{k})",
                        kind="GEMM",
                        flops=gemm_flops,
                        phase=k,
                    )
    return rt
