"""Module entry point: ``python -m repro <table1|table2|fig9|fig10|fig11|fig12>``."""

from repro.cli import main

if __name__ == "__main__":
    main()
