"""Render ``BENCH_runtime.json`` into a human-readable trajectory report.

The ``repro benchreport`` command: turns the machine-readable benchmark
artifact the suite accumulates (``benchmarks/bench_utils.record_bench``)
into a markdown (or self-contained HTML) report with per-row unicode
sparklines of the timing samples and regression deltas against a baseline
artifact -- the same row matching and tolerance semantics as the CI gate
(:mod:`repro.obs.trajectory`), so the report and the gate can never
disagree about what regressed.

Usage::

    python -m repro benchreport                          # committed artifact
    python -m repro benchreport /tmp/bench-current.json --baseline \
        benchmarks/BENCH_runtime.json --html report.html
"""

from __future__ import annotations

import argparse
import html as _html
import sys
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.trajectory import (
    load_artifact,
    machine_stamp,
    speedup_rows,
    throughput_rows,
)

__all__ = ["sparkline", "render_markdown", "render_html", "main"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[Any]) -> str:
    """A min-max-scaled unicode sparkline of a numeric sample list."""
    vals = [float(v) for v in values if isinstance(v, (int, float))]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _BARS[0] * len(vals)
    scale = (len(_BARS) - 1) / (hi - lo)
    return "".join(_BARS[int((v - lo) * scale)] for v in vals)


def _fmt_seconds(value: Any) -> str:
    return f"{value:.4f}" if isinstance(value, (int, float)) else "-"


def _fmt_delta(cur: float, base: Optional[float]) -> str:
    if base is None or base <= 0:
        return "-"
    return f"{(cur - base) / base * 100:+.0f}%"


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _stamp_line(section: Mapping[str, Any]) -> str:
    stamp = machine_stamp(section)
    if not stamp:
        return ""
    parts = []
    if stamp.get("git_sha"):
        parts.append(f"git `{stamp['git_sha']}`")
    if stamp.get("hostname"):
        parts.append(f"host `{stamp['hostname']}`")
    if stamp.get("cpu_count") is not None:
        parts.append(f"{stamp['cpu_count']} cpu(s)")
    if stamp.get("recorded_at"):
        parts.append(f"recorded {stamp['recorded_at']}")
    return "*" + ", ".join(parts) + "*" if parts else ""


def _speedup_section(
    out: List[str],
    title: str,
    name: str,
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    seq_key: str,
    par_key: str,
    samples_key: str,
) -> None:
    section = current.get(name)
    if not isinstance(section, dict):
        return
    base_section = baseline.get(name)
    base_rows: Dict[Any, float] = {}
    if isinstance(base_section, dict):
        base_rows = {key: s for key, s, _n in speedup_rows(base_section)}
    out.append(f"## {title}")
    stamp = _stamp_line(section)
    if stamp:
        out.append(stamp)
    out.append("")
    rows: List[List[str]] = []
    n_default = section.get("n", 0)
    for row in section.get("rows", ()):
        key = (row.get("format"), row.get("backend"), bool(row.get("fusion", False)))
        speedup = row.get("speedup")
        rows.append([
            str(row.get("format", "-")),
            str(row.get("backend", "-")),
            "on" if row.get("fusion") else "off",
            str(row.get("n", n_default)),
            _fmt_seconds(row.get(seq_key)),
            _fmt_seconds(row.get(par_key)),
            f"{speedup:.2f}x" if isinstance(speedup, (int, float)) else "-",
            sparkline(row.get(samples_key, ())) or "-",
            _fmt_delta(speedup, base_rows.get(key))
            if isinstance(speedup, (int, float)) else "-",
        ])
    out.extend(_table(
        ["format", "backend", "fusion", "n", "sequential s", "parallel s",
         "speedup", "samples", "vs baseline"],
        rows,
    ))
    out.append("")


def _overhead_section(out: List[str], current: Mapping[str, Any]) -> None:
    section = current.get("trace_overhead")
    if not isinstance(section, dict):
        return
    out.append("## Observability overhead")
    stamp = _stamp_line(section)
    if stamp:
        out.append(stamp)
    out.append("")
    rows: List[List[str]] = []
    untraced = section.get("untraced_best")
    rows.append([
        "bare", _fmt_seconds(untraced), "-",
        sparkline(section.get("untraced_samples", ())) or "-",
    ])
    for label, best_key, samples_key, frac_key in (
        ("traced", "traced_best", "traced_samples", "overhead_fraction"),
        ("traced+metered", "metered_best", "metered_samples",
         "metered_overhead_fraction"),
    ):
        if best_key not in section:
            continue
        frac = section.get(frac_key)
        rows.append([
            label,
            _fmt_seconds(section.get(best_key)),
            f"{frac * 100:+.2f}%" if isinstance(frac, (int, float)) else "-",
            sparkline(section.get(samples_key, ())) or "-",
        ])
    out.extend(_table(
        [f"run (n={section.get('n')}, best of {section.get('repeats')})",
         "best s", "overhead", "samples"],
        rows,
    ))
    out.append("")


def _throughput_section(
    out: List[str], current: Mapping[str, Any], baseline: Mapping[str, Any]
) -> None:
    section = current.get("solve_throughput")
    if not isinstance(section, dict):
        return
    base_section = baseline.get("solve_throughput")
    base_rows: Dict[Any, float] = {}
    if isinstance(base_section, dict):
        base_rows = {key: s for key, s, _n in throughput_rows(base_section)}
    out.append("## Serving throughput")
    stamp = _stamp_line(section)
    if stamp:
        out.append(stamp)
    out.append("")
    rows = []
    for row in section.get("rows", ()):
        # Same row key as the gate: only the concurrent backends carry a
        # baseline entry, so serial rows render "-" in the delta column.
        key = (
            row.get("format"),
            row.get("backend"),
            int(row.get("n_workers", 1)),
            int(row.get("batch_size", 1)),
        )
        solves = row.get("solves_per_sec")
        rows.append([
            str(row.get("backend", "-")),
            str(row.get("batch_size", "-")),
            str(row.get("requests", "-")),
            f"{solves:.1f}" if isinstance(solves, (int, float)) else "-",
            _fmt_seconds(row.get("wall_seconds")),
            _fmt_delta(solves, base_rows.get(key))
            if isinstance(solves, (int, float)) else "-",
        ])
    out.extend(_table(
        ["backend", "batch", "requests", "solves/s", "wall s", "vs baseline"],
        rows,
    ))
    out.append("")


def render_markdown(
    current: Mapping[str, Any], baseline: Optional[Mapping[str, Any]] = None
) -> str:
    """The benchmark artifact as a markdown report (sparklines + deltas)."""
    baseline = baseline or {}
    out: List[str] = ["# Benchmark trajectory report", ""]
    _speedup_section(
        out, "Parallel speedup (factorize + solve)", "parallel_speedup",
        current, baseline,
        seq_key="seq_seconds", par_key="par_seconds", samples_key="par_samples",
    )
    _speedup_section(
        out, "Compression scaling", "compress_scaling", current, baseline,
        seq_key="sequential_seconds", par_key="wall_seconds",
        samples_key="wall_samples",
    )
    _overhead_section(out, current)
    _throughput_section(out, current, baseline)
    rendered = {
        "parallel_speedup", "compress_scaling", "trace_overhead",
        "solve_throughput",
    }
    other = sorted(set(current) - rendered)
    if other:
        out.append("## Other recorded sections")
        out.append("")
        out.append(", ".join(f"`{name}`" for name in other))
        out.append("")
    return "\n".join(out).rstrip() + "\n"


def render_html(
    current: Mapping[str, Any], baseline: Optional[Mapping[str, Any]] = None
) -> str:
    """Self-contained HTML version of :func:`render_markdown` (no deps)."""
    body: List[str] = []
    in_table = False
    for line in render_markdown(current, baseline).splitlines():
        is_row = line.startswith("|")
        if in_table and not is_row:
            body.append("</table>")
            in_table = False
        if line.startswith("# "):
            body.append(f"<h1>{_html.escape(line[2:])}</h1>")
        elif line.startswith("## "):
            body.append(f"<h2>{_html.escape(line[3:])}</h2>")
        elif is_row:
            cells = [c.strip() for c in line.strip("|").split("|")]
            if all(set(c) <= {"-"} for c in cells):
                continue  # the markdown separator row
            tag = "td" if in_table else "th"
            if not in_table:
                body.append("<table>")
                in_table = True
            body.append(
                "<tr>" + "".join(
                    f"<{tag}>{_html.escape(c)}</{tag}>" for c in cells
                ) + "</tr>"
            )
        elif line.strip():
            body.append(f"<p>{_html.escape(line)}</p>")
    if in_table:
        body.append("</table>")
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        "<title>Benchmark trajectory report</title><style>"
        "body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "td,th{border:1px solid #999;padding:0.25em 0.6em;text-align:right}"
        "th{background:#eee}</style></head><body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )


def _default_artifact() -> Path:
    return Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_runtime.json"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro benchreport",
        description="Render BENCH_runtime.json into a markdown/HTML report.",
    )
    parser.add_argument(
        "artifact", nargs="?", type=Path, default=_default_artifact(),
        help="benchmark artifact to render (default: the committed one)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline artifact for regression deltas (default: the committed "
        "artifact when rendering another one, else no deltas)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the markdown here instead of stdout",
    )
    parser.add_argument(
        "--html", type=Path, default=None, help="additionally write HTML here"
    )
    args = parser.parse_args(argv)
    current = load_artifact(args.artifact)
    baseline_path = args.baseline
    if baseline_path is None and args.artifact.resolve() != _default_artifact():
        baseline_path = _default_artifact()
    baseline = (
        load_artifact(baseline_path)
        if baseline_path is not None and Path(baseline_path).exists()
        else None
    )
    markdown = render_markdown(current, baseline)
    if args.output is not None:
        args.output.write_text(markdown, encoding="utf-8")
    else:
        print(markdown, end="")
    if args.html is not None:
        args.html.write_text(render_html(current, baseline), encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
