"""Memory observability: peak-RSS sampling and handle-table byte accounting.

Two views of a run's memory, mirroring the logical-vs-physical split the
comm accounting uses:

* :func:`peak_rss_bytes` -- the OS-reported resident-set high-water of the
  calling process (``getrusage``; on Linux ``ru_maxrss`` is kilobytes).
  Monotone over a process lifetime, so per-run deltas need a baseline
  sample before the run.
* :func:`handle_table_bytes` -- the task graph's own ledger: the *logical*
  size every :class:`~repro.runtime.data.DataHandle` declares (``nbytes``,
  the model the comm planner uses) against the *measured* size of the
  values actually bound (``estimate_nbytes`` on the payloads).  The gap
  between the two is exactly what ROADMAP item 2 (zero-copy data plane)
  needs to prove its savings.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "peak_rss_bytes",
    "estimate_nbytes",
    "iter_graph_handles",
    "handle_table_bytes",
    "MemoryStats",
]

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None


def peak_rss_bytes() -> Optional[int]:
    """Peak resident-set size of this process in bytes, or None if unknown.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize to
    bytes.  The value is a process-lifetime high-water mark.
    """
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux container
        return int(peak)
    return int(peak) * 1024


def estimate_nbytes(value: Any, _depth: int = 0) -> int:
    """Measured byte size of a bound value (arrays exactly, containers recursively).

    NumPy arrays report ``arr.nbytes``; tuples/lists/dicts recurse over
    their elements (bounded depth, so a pathological object cannot hang the
    sampler); anything else falls back to ``sys.getsizeof``.
    """
    if value is None:
        return 0
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, (int, float)):
        return int(nbytes)
    if _depth >= 4:
        return sys.getsizeof(value)
    if isinstance(value, (tuple, list)):
        return sum(estimate_nbytes(v, _depth + 1) for v in value)
    if isinstance(value, dict):
        return sum(estimate_nbytes(v, _depth + 1) for v in value.values())
    return sys.getsizeof(value)


@dataclass
class MemoryStats:
    """Memory accounting for one execution, attached as ``ExecutionReport.memory``."""

    #: Peak RSS of the parent process after the run, bytes (None if unknown).
    peak_rss_bytes: Optional[int] = None
    #: Peak RSS per child rank, bytes (distributed/process backends).
    rank_peak_rss_bytes: Dict[int, int] = field(default_factory=dict)
    #: Number of handles in the graph's handle table.
    num_handles: int = 0
    #: Number of handles with a value actually bound after the run.
    num_bound: int = 0
    #: Sum of declared ``handle.nbytes`` over all handles (the model).
    logical_bytes: int = 0
    #: Sum of :func:`estimate_nbytes` over bound values (what is resident).
    measured_bytes: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "peak_rss_bytes": self.peak_rss_bytes,
            "rank_peak_rss_bytes": dict(self.rank_peak_rss_bytes),
            "num_handles": self.num_handles,
            "num_bound": self.num_bound,
            "logical_bytes": self.logical_bytes,
            "measured_bytes": self.measured_bytes,
        }

    def __repr__(self) -> str:
        rss = f"{self.peak_rss_bytes / 2**20:.1f}MiB" if self.peak_rss_bytes else "?"
        return (
            f"MemoryStats(peak_rss={rss}, handles={self.num_bound}/{self.num_handles}"
            f" bound, logical={self.logical_bytes}B, measured={self.measured_bytes}B)"
        )


def iter_graph_handles(graph: Any):
    """Unique :class:`DataHandle` objects referenced by a task graph's accesses."""
    seen = set()
    for task in getattr(graph, "tasks", ()):
        for access in getattr(task, "accesses", ()):
            handle = access.handle
            if handle.hid in seen:
                continue
            seen.add(handle.hid)
            yield handle


def handle_table_bytes(graph: Any) -> MemoryStats:
    """Walk a task graph's handle table and account logical vs measured bytes.

    The handle table is derived from the tasks' access lists (every handle a
    task reads or writes, deduplicated by ``hid``).  Handles whose declared
    ``nbytes`` is unset count 0 logical bytes; unbound handles count 0
    measured bytes.
    """
    stats = MemoryStats(peak_rss_bytes=peak_rss_bytes())
    for handle in iter_graph_handles(graph):
        stats.num_handles += 1
        declared = getattr(handle, "nbytes", None)
        if isinstance(declared, (int, float)):
            stats.logical_bytes += int(declared)
        if getattr(handle, "bound", False):
            stats.num_bound += 1
            try:
                value = handle.get_value()
            except Exception:
                continue
            stats.measured_bytes += estimate_nbytes(value)
    return stats
