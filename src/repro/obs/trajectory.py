"""The benchmark-trajectory gate: compare bench artifacts, bound overheads.

The library behind ``benchmarks/check_speedup_trajectory.py`` (the CI gate)
and the ``repro benchreport`` renderer: loads ``BENCH_runtime.json``-shaped
artifacts, matches speedup rows between a freshly measured artifact and the
committed trajectory, and produces a structured :class:`GateResult` instead
of printing directly -- the CLI wrapper prints, the report renders.

Speedup rows match on ``(section, format, backend, fusion)``, throughput
rows (:data:`THROUGHPUT_SECTION`, gated on ``solves_per_sec``) on
``(format, backend, n_workers, batch_size)``, and HTTP serving rows
(:data:`SERVE_SECTION`, end-to-end solves/sec through the running server)
on ``(format, backend, clients)``; only the concurrent backends
(:data:`GATED_BACKENDS`) gate, since that is the trajectory the
north star tracks.  Absolute numbers are machine- and size-dependent, so
the check is deliberately lenient: a current row must reach ``tolerance``
(default 0.5) of the stored value when both runs measured the same problem
size *on the same core count*, and the looser ``cross_size_tolerance``
(default 0.25) when either differs -- the machine stamp
(:func:`machine_stamp`, written by ``bench_utils.record_bench`` since PR 8)
is read backfill-tolerantly, so pre-stamp artifacts compare exactly as
before.  Missing baselines, sections or rows are reported but never fail
the check -- the gate only ever compares what both artifacts measured.

When the current artifact carries a ``trace_overhead`` section, every
recorded overhead fraction in :data:`OVERHEAD_FIELDS` is additionally gated
against ``max_trace_overhead``: plain tracing (``overhead_fraction``) and
tracing combined with the metrics registry
(``metered_overhead_fraction``) must both stay cheap enough to leave the
timings they explain unperturbed.

When the current artifact carries per-data-plane rows in
:data:`COMM_SECTION` (``distributed_weak_scaling``, recorded since the
zero-copy shared-memory data plane landed), the physical-byte trajectory is
gated too: every multi-node configuration measured under both planes must
keep a ``min_comm_savings`` (default 10x) wire-byte advantage for the shm
plane, and matching shm rows must not regress past a small slack over the
committed baseline.  Pre-plane artifacts carry no ``data_plane`` field and
skip the gate entirely.

The *committed baseline itself* is validated on every run: its recorded
overhead fractions must pass ``max_trace_overhead`` and every raw
``*_samples`` list it stores must have a max/min spread within
``max_sample_spread`` (default 2x) -- a baseline violating either was
recorded on a disturbed machine, and committing it would silently lower
every regression floor derived from it.  The same spread bound is applied
to the freshly measured artifact as a ``NOISY`` warning only (CI boxes are
noisy; the lenient floors absorb that), so a disturbed measurement is
visible without flaking the gate.

:func:`check_refresh` guards the act of *replacing* the baseline: a
proposed refresh must itself be baseline-clean (hard spread + overhead
checks) and at parity or better with the committed trajectory
(``refresh_tolerance``, default 0.9 of every stored gated value on the
same machine class), so repeated refreshes after slower runs cannot
ratchet the floors looser.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Tuple

__all__ = [
    "SECTIONS",
    "THROUGHPUT_SECTION",
    "SERVE_SECTION",
    "COMM_SECTION",
    "GATED_BACKENDS",
    "OVERHEAD_FIELDS",
    "GateResult",
    "load_artifact",
    "machine_stamp",
    "speedup_rows",
    "throughput_rows",
    "serve_rows",
    "comm_plane_rows",
    "sample_spreads",
    "check_trajectory",
    "check_refresh",
]

#: Sections carrying speedup rows, with the per-row key fields.
SECTIONS = ("parallel_speedup", "compress_scaling")

#: Section carrying batched-solve throughput rows, gated on ``solves_per_sec``.
THROUGHPUT_SECTION = "solve_throughput"

#: Section carrying HTTP-serving load-generator rows (concurrent clients
#: against the running server), gated on end-to-end ``solves_per_sec``.
SERVE_SECTION = "serve_load"

#: Section carrying per-data-plane physical-byte rows of the distributed
#: weak-scaling bench, gated on the zero-copy savings factor.
COMM_SECTION = "distributed_weak_scaling"

#: Backends whose speedup trajectory gates the check.
GATED_BACKENDS = ("thread", "parallel", "process")

#: Overhead fractions gated in the ``trace_overhead`` section:
#: ``(field, label)`` pairs.  ``overhead_fraction`` is measured tracing
#: alone; ``metered_overhead_fraction`` is tracing plus the metrics registry
#: (the combined observability cost).
OVERHEAD_FIELDS = (
    ("overhead_fraction", "traced"),
    ("metered_overhead_fraction", "traced+metered"),
)


def load_artifact(path: Path) -> Dict[str, Any]:
    """Load one ``BENCH_runtime.json``-shaped artifact (a JSON object)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object, got {type(data).__name__}")
    return data


def machine_stamp(section: Mapping[str, Any]) -> Dict[str, Any]:
    """The section's machine stamp (git SHA, hostname, cpu_count, recorded_at).

    Backfill-tolerant: artifacts recorded before ``record_bench`` stamped the
    machine return ``{}``, and every consumer must treat absent keys as
    unknown (compare leniently, render as ``-``).
    """
    stamp = section.get("machine")
    return dict(stamp) if isinstance(stamp, Mapping) else {}


def speedup_rows(section: Mapping[str, Any]) -> Iterator[Tuple[Tuple, float, int]]:
    """Yield ``(key, speedup, n)`` per gated row of one benchmark section."""
    n = int(section.get("n", 0))
    for row in section.get("rows", ()):
        backend = row.get("backend")
        if backend not in GATED_BACKENDS or "speedup" not in row:
            continue
        key = (row.get("format"), backend, bool(row.get("fusion", False)))
        yield key, float(row["speedup"]), int(row.get("n", n))


def throughput_rows(section: Mapping[str, Any]) -> Iterator[Tuple[Tuple, float, int]]:
    """Yield ``(key, solves_per_sec, n)`` per gated row of ``solve_throughput``."""
    n = int(section.get("n", 0))
    for row in section.get("rows", ()):
        backend = row.get("backend")
        if backend not in GATED_BACKENDS or "solves_per_sec" not in row:
            continue
        key = (
            row.get("format"),
            backend,
            int(row.get("n_workers", 1)),
            int(row.get("batch_size", 1)),
        )
        yield key, float(row["solves_per_sec"]), int(row.get("n", n))


def serve_rows(section: Mapping[str, Any]) -> Iterator[Tuple[Tuple, float, int]]:
    """Yield ``(key, solves_per_sec, n)`` per gated row of ``serve_load``.

    Rows are end-to-end HTTP measurements (client -> server -> batched graph
    solve -> response), keyed by the serving configuration.  Every service
    backend gates here -- unlike the raw speedup sections, the serving
    trajectory matters even on the sequential backends, since the HTTP and
    batching overhead is what the row measures.
    """
    n = int(section.get("n", 0))
    for row in section.get("rows", ()):
        if "solves_per_sec" not in row:
            continue
        key = (
            row.get("format"),
            row.get("backend"),
            int(row.get("clients", 1)),
        )
        yield key, float(row["solves_per_sec"]), int(row.get("n", n))


def comm_plane_rows(
    section: Mapping[str, Any],
) -> Dict[Tuple[str, int, str], Tuple[int, int]]:
    """``(distribution, nodes, data_plane) -> (physical_bytes, n)`` per row.

    Backfill-tolerant: rows recorded before the zero-copy data plane existed
    carry neither ``data_plane`` nor ``physical_bytes`` and are skipped, so
    pre-plane artifacts simply contribute no comm-gate comparisons.
    """
    out: Dict[Tuple[str, int, str], Tuple[int, int]] = {}
    for row in section.get("rows", ()):
        if "data_plane" not in row or "physical_bytes" not in row:
            continue
        key = (
            str(row.get("distribution")),
            int(row.get("nodes", 0)),
            str(row["data_plane"]),
        )
        out[key] = (int(row["physical_bytes"]), int(row.get("n", 0)))
    return out


#: Row fields used to describe a sample-spread finding in log lines.
_ROW_ID_FIELDS = (
    "format", "backend", "fusion", "distribution", "data_plane",
    "n_workers", "batch_size", "nodes", "n",
)


def _row_ident(row: Mapping[str, Any]) -> str:
    parts = [f"{k}={row[k]}" for k in _ROW_ID_FIELDS if k in row]
    return ", ".join(parts) if parts else "<top level>"


def sample_spreads(
    artifact: Mapping[str, Any],
) -> Iterator[Tuple[str, str, str, float]]:
    """Yield ``(section, where, field, max/min spread)`` per raw-sample list.

    Walks every section generically: raw per-repeat timing lists are any
    ``*_samples`` key, either on the section itself (``trace_overhead``) or
    on its rows.  Lists shorter than two samples or containing non-positive
    timings are skipped -- the spread of a timing list is only meaningful
    for repeated positive wall times.
    """
    for name, section in artifact.items():
        if not isinstance(section, Mapping):
            continue
        holders = [("<section>", section)]
        rows = section.get("rows")
        if isinstance(rows, list):
            holders += [(_row_ident(r), r) for r in rows if isinstance(r, Mapping)]
        for where, holder in holders:
            for key, value in holder.items():
                if not (isinstance(key, str) and key.endswith("_samples")):
                    continue
                if not (isinstance(value, list) and len(value) >= 2):
                    continue
                try:
                    lo, hi = min(value), max(value)
                except TypeError:
                    continue
                if not isinstance(lo, (int, float)) or lo <= 0:
                    continue
                yield name, where, key, float(hi) / float(lo)


def _check_sample_spreads(
    result: GateResult,
    artifact: Mapping[str, Any],
    max_spread: float,
    *,
    role: str,
) -> None:
    """Flag raw-sample lists whose spread says the run was disturbed.

    ``role="baseline"`` (and ``"refresh"``, a proposed baseline) hard-fails:
    a disturbed run must never become the stored trajectory, because every
    regression floor is derived from it.  ``role="current"`` only logs a
    ``NOISY`` warning -- fresh measurements on shared CI boxes jitter, and
    the lenient floors already absorb that.
    """
    hard = role != "current"
    for name, where, key, spread in sample_spreads(artifact):
        if spread <= max_spread:
            continue
        line = (
            f"{role} {name} [{where}] {key}: max/min spread {spread:.2f}x "
            f"exceeds the {max_spread:.1f}x sanity bound -> "
            f"{'DISTURBED' if hard else 'NOISY (warning only)'}"
        )
        result.log(line)
        if hard:
            result.fail(
                f"{role} {name} [{where}] {key}: sample spread {spread:.2f}x "
                f"exceeds the {max_spread:.1f}x sanity bound -- the run was "
                "disturbed; re-measure on a quiet machine instead of "
                "committing it as the trajectory"
            )


def _check_comm_plane(
    result: GateResult,
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    min_savings: float,
) -> None:
    """Gate the zero-copy data plane's physical-byte trajectory.

    Two checks, both on :data:`COMM_SECTION` rows:

    * **in-artifact savings floor** -- for every multi-node configuration the
      current artifact measured under both planes, ``pickle physical bytes /
      shm physical bytes`` must reach ``min_savings`` (the shm plane ships
      descriptors, not array bytes, so the factor collapses if payloads leak
      back onto the wire);
    * **cross-artifact regression** -- for matching (distribution, nodes)
      shm rows at the same problem size, the current wire bytes must not grow
      past a small slack over the stored baseline (byte counts are
      deterministic, unlike timings, so the slack only absorbs descriptor
      -encoding drift).
    """
    section = current.get(COMM_SECTION)
    if not isinstance(section, dict):
        result.log(f"section {COMM_SECTION!r}: not in the current artifact, skipped")
        return
    cur = comm_plane_rows(section)
    if not cur:
        result.log(
            f"section {COMM_SECTION!r}: no per-plane rows recorded "
            "(pre-zero-copy artifact), skipped"
        )
        return

    for (dist, nodes, plane), (shm_bytes, n) in sorted(cur.items()):
        if plane != "shm" or nodes <= 1:
            continue
        pickled = cur.get((dist, nodes, "pickle"))
        if pickled is None:
            continue
        pickle_bytes, _ = pickled
        factor = pickle_bytes / max(shm_bytes, 1)
        result.compared += 1
        verdict = "ok" if factor >= min_savings else "REGRESSED"
        result.log(
            f"{COMM_SECTION} ({dist!r}, {nodes} nodes, n={n}): zero-copy wire "
            f"savings {factor:.1f}x (pickle {pickle_bytes}B / shm {shm_bytes}B) "
            f">= floor {min_savings:.1f}x -> {verdict}"
        )
        if factor < min_savings:
            result.fail(
                f"{COMM_SECTION}: ({dist!r}, {nodes} nodes): zero-copy savings "
                f"{factor:.1f}x below the {min_savings:.1f}x floor "
                f"(pickle {pickle_bytes}B vs shm {shm_bytes}B)"
            )

    base_section = baseline.get(COMM_SECTION)
    base = comm_plane_rows(base_section) if isinstance(base_section, dict) else {}
    slack = 1.1
    for key, (cur_bytes, cur_n) in sorted(cur.items()):
        dist, nodes, plane = key
        if plane != "shm" or nodes <= 1 or key not in base:
            continue
        base_bytes, base_n = base[key]
        if cur_n != base_n or base_bytes <= 0:
            continue
        ceiling = slack * base_bytes
        result.compared += 1
        verdict = "ok" if cur_bytes <= ceiling else "REGRESSED"
        result.log(
            f"{COMM_SECTION} ({dist!r}, {nodes} nodes, n={cur_n}): shm wire "
            f"{cur_bytes}B vs stored {base_bytes}B, ceiling {ceiling:.0f}B "
            f"-> {verdict}"
        )
        if cur_bytes > ceiling:
            result.fail(
                f"{COMM_SECTION}: ({dist!r}, {nodes} nodes): shm wire bytes "
                f"grew {cur_bytes}B > {ceiling:.0f}B "
                f"(stored {base_bytes}B at n={base_n})"
            )


@dataclass
class GateResult:
    """Outcome of one trajectory check: log lines, failures, compare count."""

    lines: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    compared: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def log(self, line: str) -> None:
        self.lines.append(line)

    def fail(self, line: str) -> None:
        self.failures.append(line)

    def summary(self) -> str:
        if self.failures:
            head = f"{len(self.failures)} benchmark gate failure(s):"
            return "\n".join([head] + [f"  {line}" for line in self.failures])
        if not self.compared:
            return "no comparable speedup rows between the two artifacts"
        return f"all {self.compared} compared speedups within tolerance"


def _gate_section(
    result: GateResult,
    name: str,
    cur_section: Mapping[str, Any],
    base_section: Mapping[str, Any],
    rows_fn,
    unit: str,
    *,
    tolerance: float,
    cross_size_tolerance: float,
) -> None:
    # Different core counts measure different trajectories (the
    # single-core-container caveat of ROADMAP item 1): fall back to the
    # lenient cross tolerance, as for a size mismatch.  Unknown stamps
    # (pre-stamp artifacts) compare at full strictness, as before.
    cur_cpus = machine_stamp(cur_section).get("cpu_count")
    base_cpus = machine_stamp(base_section).get("cpu_count")
    same_machine_class = (
        cur_cpus is None or base_cpus is None or cur_cpus == base_cpus
    )
    base_rows = {key: (s, n) for key, s, n in rows_fn(base_section)}
    for key, cur_value, cur_n in rows_fn(cur_section):
        if key not in base_rows:
            continue
        base_value, base_n = base_rows[key]
        if base_value <= 0:
            continue
        comparable = cur_n == base_n and same_machine_class
        tol = tolerance if comparable else cross_size_tolerance
        floor = tol * base_value
        result.compared += 1
        verdict = "ok" if cur_value >= floor else "REGRESSED"
        cpus_note = (
            "" if same_machine_class else f", cpus {base_cpus}->{cur_cpus}"
        )
        result.log(
            f"{name} {key}: current {cur_value:.2f}{unit} (n={cur_n}) vs "
            f"stored {base_value:.2f}{unit} (n={base_n}{cpus_note}), "
            f"floor {floor:.2f}{unit} -> {verdict}"
        )
        if cur_value < floor:
            result.fail(
                f"{name}: {key}: "
                f"n={cur_n}: current {cur_value:.2f}{unit} < floor "
                f"{floor:.2f}{unit} (stored {base_value:.2f}{unit} at "
                f"n={base_n}, short by {(floor - cur_value) / floor * 100:.0f}%)"
            )


def _check_speedups(
    result: GateResult,
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    tolerance: float,
    cross_size_tolerance: float,
) -> None:
    gated = [(name, speedup_rows, "x") for name in SECTIONS]
    gated.append((THROUGHPUT_SECTION, throughput_rows, "/s"))
    gated.append((SERVE_SECTION, serve_rows, "/s"))
    for name, rows_fn, unit in gated:
        cur_section = current.get(name)
        base_section = baseline.get(name)
        if not isinstance(cur_section, dict) or not isinstance(base_section, dict):
            result.log(f"section {name!r}: missing on one side, skipped")
            continue
        _gate_section(
            result, name, cur_section, base_section, rows_fn, unit,
            tolerance=tolerance, cross_size_tolerance=cross_size_tolerance,
        )


def _check_overheads(
    result: GateResult,
    artifact: Mapping[str, Any],
    max_overhead: float,
    *,
    role: str = "current",
) -> None:
    """Gate the recorded observability overhead fractions of one artifact.

    Applied to the freshly measured artifact (``role="current"``, as always)
    and to the committed/proposed baseline (``role="baseline"``/
    ``"refresh"``): a stored trajectory whose own overhead measurement
    breaches the limit was recorded on a disturbed machine and would make
    every fresh run fail against it, so it must never be committed.
    """
    prefix = "" if role == "current" else f"{role} "
    section = artifact.get("trace_overhead")
    if not isinstance(section, dict):
        result.log(
            f"section 'trace_overhead': not in the {role} artifact, skipped"
        )
        return
    checked = False
    for fraction_key, label in OVERHEAD_FIELDS:
        fraction = section.get(fraction_key)
        if not isinstance(fraction, (int, float)):
            continue
        checked = True
        best_key = "traced_best" if label == "traced" else "metered_best"
        verdict = "ok" if fraction <= max_overhead else "TOO EXPENSIVE"
        result.log(
            f"{prefix}trace_overhead[{label}]: measured {fraction * 100:+.2f}% "
            f"(untraced {section.get('untraced_best', float('nan')):.4f}s vs "
            f"{label} {section.get(best_key, float('nan')):.4f}s, "
            f"n={section.get('n')}, best of {section.get('repeats')}) "
            f"<= limit {max_overhead * 100:.1f}% -> {verdict}"
        )
        if fraction > max_overhead:
            result.fail(
                f"{prefix}trace_overhead[{label}]: {fraction * 100:+.2f}% "
                f"exceeds the {max_overhead * 100:.1f}% limit "
                f"(untraced {section.get('untraced_best')}s, "
                f"{label} {section.get(best_key)}s)"
            )
    if not checked:
        result.log(
            f"section 'trace_overhead': no overhead fraction recorded in the "
            f"{role} artifact, skipped"
        )


def check_trajectory(
    current_path: Path,
    baseline_path: Path,
    *,
    tolerance: float = 0.5,
    cross_size_tolerance: float = 0.25,
    max_trace_overhead: float = 0.03,
    min_comm_savings: float = 10.0,
    max_sample_spread: float = 2.0,
) -> GateResult:
    """Compare a fresh artifact against the committed trajectory.

    Returns a :class:`GateResult`; callers decide how to print it (the CLI
    wrapper echoes ``lines`` then ``summary()``; ``repro benchreport`` folds
    the deltas into its tables).  ``min_comm_savings`` is the floor on the
    zero-copy data plane's physical-byte savings factor over the pickle
    plane (see :func:`comm_plane_rows`).

    Besides comparing the two artifacts, the committed baseline is itself
    validated (overhead fractions within ``max_trace_overhead``, raw-sample
    spreads within ``max_sample_spread``) so that a disturbed run committed
    as the trajectory fails every subsequent gate run loudly instead of
    silently lowering the floors; the current artifact's spreads only warn.
    """
    result = GateResult()
    current = load_artifact(Path(current_path))
    baseline_path = Path(baseline_path)
    if not baseline_path.exists():
        result.log(
            f"no committed baseline at {baseline_path}; skipping speedup comparison"
        )
        baseline: Dict[str, Any] = {}
    else:
        baseline = load_artifact(baseline_path)
    _check_speedups(
        result, current, baseline,
        tolerance=tolerance, cross_size_tolerance=cross_size_tolerance,
    )
    _check_overheads(result, current, max_trace_overhead)
    _check_comm_plane(result, current, baseline, min_comm_savings)
    _check_sample_spreads(result, current, max_sample_spread, role="current")
    if baseline:
        _check_overheads(
            result, baseline, max_trace_overhead, role="baseline"
        )
        _check_sample_spreads(
            result, baseline, max_sample_spread, role="baseline"
        )
    return result


def check_refresh(
    proposed_path: Path,
    committed_path: Path,
    *,
    refresh_tolerance: float = 0.9,
    cross_size_tolerance: float = 0.25,
    max_trace_overhead: float = 0.03,
    min_comm_savings: float = 10.0,
    max_sample_spread: float = 2.0,
) -> GateResult:
    """Validate a *proposed baseline refresh* against the committed one.

    Run this (``check_speedup_trajectory.py --refresh``) before replacing
    ``benchmarks/BENCH_runtime.json``.  Two properties gate, both with hard
    failures:

    * **baseline-clean** -- the proposed artifact must satisfy everything
      demanded of a committed baseline: overhead fractions within
      ``max_trace_overhead`` and every raw-sample spread within
      ``max_sample_spread`` (a disturbed run must not become the floor
      generator);
    * **parity or better** -- every gated value must reach
      ``refresh_tolerance`` (default 0.9) of the committed value when both
      were measured at the same size on the same machine class, so repeated
      refreshes after slower runs cannot ratchet the regression floors
      looser.  Cross-size/cross-machine rows fall back to
      ``cross_size_tolerance`` (absolute numbers are not comparable there).

    The zero-copy comm-plane gates (savings floor, shm byte ceiling) apply
    to the proposed artifact exactly as in :func:`check_trajectory`.
    """
    result = GateResult()
    proposed = load_artifact(Path(proposed_path))
    committed_path = Path(committed_path)
    if not committed_path.exists():
        result.log(
            f"no committed baseline at {committed_path}; "
            "validating the proposed artifact's health only"
        )
        committed: Dict[str, Any] = {}
    else:
        committed = load_artifact(committed_path)
    _check_speedups(
        result, proposed, committed,
        tolerance=refresh_tolerance, cross_size_tolerance=cross_size_tolerance,
    )
    _check_overheads(result, proposed, max_trace_overhead, role="refresh")
    _check_comm_plane(result, proposed, committed, min_comm_savings)
    _check_sample_spreads(result, proposed, max_sample_spread, role="refresh")
    return result
