"""Structured JSON event log with monotonic timestamps.

A thin, thread-safe append-only log for discrete runtime events (execution
started, flush batched, cache evicted) that do not fit the
counter/gauge/histogram model.  Every event carries a ``perf_counter``
monotonic stamp -- the same clock the tracing layer uses -- plus a
wall-clock epoch stamp for correlating across processes, a name, and
arbitrary JSON-serializable fields.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Event", "EventLog"]


class Event:
    """One structured event: name, monotonic + epoch stamps, free-form fields."""

    __slots__ = ("name", "t_mono", "t_epoch", "fields")

    def __init__(self, name: str, t_mono: float, t_epoch: float, fields: Dict[str, Any]) -> None:
        self.name = name
        self.t_mono = t_mono
        self.t_epoch = t_epoch
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "t_mono": self.t_mono,
            "t_epoch": self.t_epoch,
            **self.fields,
        }

    def __repr__(self) -> str:
        return f"Event({self.name!r}, t_mono={self.t_mono:.6f}, {self.fields!r})"


class EventLog:
    """Thread-safe append-only event log, bounded at ``capacity`` events.

    When full, the oldest events are dropped (and counted in
    :attr:`dropped`) so a long-running service cannot grow without bound.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._lock = threading.Lock()
        self._events: List[Event] = []

    def emit(self, name: str, **fields: Any) -> Event:
        """Append an event stamped now; returns it."""
        event = Event(name, time.perf_counter(), time.time(), fields)
        with self._lock:
            self._events.append(event)
            if len(self._events) > self.capacity:
                excess = len(self._events) - self.capacity
                del self._events[:excess]
                self.dropped += excess
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        with self._lock:
            return iter(list(self._events))

    def events(self, name: Optional[str] = None) -> List[Event]:
        """All events, oldest first, optionally filtered by name."""
        with self._lock:
            snapshot = list(self._events)
        if name is None:
            return snapshot
        return [e for e in snapshot if e.name == name]

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [e.as_dict() for e in self.events()]

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dicts(), indent=indent, sort_keys=False)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
