"""Shared metric recording for the execution backends.

One vocabulary of runtime metrics, recorded identically by every backend so
``repro metrics`` output is comparable across ``--runtime`` choices:

Counters
    ``repro_executions_total{backend}``, ``repro_execution_timeouts_total``,
    ``repro_tasks_executed_total``, ``repro_tasks_failed_total``,
    ``repro_tasks_cancelled_total``, ``repro_comm_messages_total``,
    ``repro_comm_logical_bytes_total`` (the comm *model*: declared
    ``handle.nbytes``, what :class:`~repro.runtime.distributed.comm.CommLedger`
    calls ``total_bytes``), ``repro_comm_physical_bytes_total`` (measured
    wire bytes through the queues, the ledger's ``total_payload_bytes``),
    ``repro_comm_mapped_bytes_total`` (bytes moved through shared-memory
    segments by the zero-copy data plane, the ledger's
    ``total_mapped_bytes``; 0 on the pickle plane).
Histograms
    ``repro_execution_seconds{backend}``, ``repro_task_seconds{backend,kind}``,
    ``repro_queue_delay_seconds{backend}``,
    ``repro_scheduler_overhead_seconds{backend}``,
    ``repro_comm_seconds{backend,action}``,
    ``repro_comm_transfer_bytes{backend,src,dst}`` (physical bytes per
    message, per directed process pair).
Gauges (merge mode ``max``)
    ``repro_queue_depth{backend}`` (ready-queue high water),
    ``repro_peak_rss_bytes{backend,rank}``,
    ``repro_handle_bytes{backend,view=logical|measured}``.

The per-task histograms are derived from the *same* raw stamp tuples the
tracing layer builds its spans from (enabling metrics enables stamping), so
the trace and the metrics can never disagree about a duration -- the
reconciliation the metrics tests assert.

Label values are always strings (Prometheus semantics); ``rank`` is the
worker process rank, or ``"parent"`` for the coordinating process.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from repro.obs.memory import MemoryStats, handle_table_bytes, peak_rss_bytes
from repro.obs.metrics import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
)

__all__ = [
    "record_report",
    "record_spans",
    "record_comm_spans",
    "record_comm_events",
    "record_comm_message",
    "record_queue_depth",
    "record_memory",
    "record_execution_metrics",
    "record_rank_execution",
    "record_sequential_run",
    "record_http_request",
    "record_http_rejection",
    "record_http_inflight",
]

_H = {
    "executions": ("repro_executions_total", "Graph executions started"),
    "timeouts": ("repro_execution_timeouts_total", "Graph executions that hit their timeout"),
    "executed": ("repro_tasks_executed_total", "Task bodies completed successfully"),
    "failed": ("repro_tasks_failed_total", "Task bodies that raised"),
    "cancelled": ("repro_tasks_cancelled_total", "Tasks cancelled before starting"),
    "exec_seconds": ("repro_execution_seconds", "Wall-clock seconds per graph execution"),
    "task_seconds": ("repro_task_seconds", "Task body seconds by kind"),
    "queue_delay": ("repro_queue_delay_seconds", "Seconds between a task becoming ready and starting"),
    "sched_overhead": ("repro_scheduler_overhead_seconds", "Runtime-system seconds per execution (dispatch, bookkeeping, result shuttling)"),
    "comm_msgs": ("repro_comm_messages_total", "Inter-process messages carried"),
    "comm_logical": ("repro_comm_logical_bytes_total", "Modelled message bytes (declared handle sizes)"),
    "comm_physical": ("repro_comm_physical_bytes_total", "Measured wire bytes (serialized message payloads)"),
    "comm_mapped": ("repro_comm_mapped_bytes_total", "Bytes moved through shared-memory segments (zero-copy data plane)"),
    "comm_seconds": ("repro_comm_seconds", "Seconds spent in communication actions"),
    "comm_transfer": ("repro_comm_transfer_bytes", "Physical bytes per message by directed process pair"),
    "queue_depth": ("repro_queue_depth", "Ready-queue high-water mark"),
    "peak_rss": ("repro_peak_rss_bytes", "Peak resident-set bytes per process"),
    "handle_bytes": ("repro_handle_bytes", "Handle-table bytes (view=logical: declared sizes; view=measured: bound values)"),
    "http_requests": ("repro_http_requests_total", "HTTP requests served by route, method and status"),
    "http_seconds": ("repro_http_request_seconds", "HTTP request handling seconds by route"),
    "http_rejected": ("repro_http_rejected_total", "HTTP requests rejected before solving (unauthorized, rate_limited, backpressure)"),
    "http_inflight": ("repro_http_inflight_requests", "Concurrent in-flight HTTP requests (high-water mark)"),
}


def record_report(
    registry: MetricsRegistry,
    backend: str,
    report: Any,
    *,
    include_executed: bool = True,
) -> None:
    """Record execution-level counters from an ExecutionReport-shaped object.

    Works for the thread/process :class:`~repro.runtime.executor.ExecutionReport`
    and the :class:`~repro.runtime.distributed.DistributedReport` alike
    (``executed`` / ``errors`` / ``cancelled`` / ``timed_out`` /
    ``wall_time``).  Error and cancellation paths run through here too, so a
    failed execution still counts its completed, failed and cancelled tasks.
    ``include_executed=False`` skips the executed-tasks counter for callers
    whose workers already counted their own completions (the distributed
    parent after merging rank snapshots).
    """
    registry.counter(*_H["executions"], backend=backend).inc()
    if getattr(report, "timed_out", False):
        registry.counter(*_H["timeouts"], backend=backend).inc()
    if include_executed:
        registry.counter(*_H["executed"], backend=backend).inc(len(report.executed))
    else:
        # Touch the series so it exists even when no rank completed a task.
        registry.counter(*_H["executed"], backend=backend)
    errors = getattr(report, "errors", None) or {}
    if errors:
        registry.counter(*_H["failed"], backend=backend).inc(len(errors))
    cancelled = getattr(report, "cancelled", None) or []
    if cancelled:
        registry.counter(*_H["cancelled"], backend=backend).inc(len(cancelled))
    wall = getattr(report, "wall_time", 0.0)
    registry.histogram(
        *_H["exec_seconds"], buckets=LATENCY_BUCKETS, backend=backend
    ).observe(wall)


def record_spans(registry: MetricsRegistry, backend: str, spans: Iterable[Any]) -> None:
    """Per-kind latency and queue-delay histograms from built TaskSpans."""
    for span in spans:
        registry.histogram(
            *_H["task_seconds"], buckets=LATENCY_BUCKETS,
            backend=backend, kind=span.kind,
        ).observe(span.duration)
        registry.histogram(
            *_H["queue_delay"], buckets=LATENCY_BUCKETS, backend=backend
        ).observe(max(0.0, span.queue_delay))


def record_overhead(registry: MetricsRegistry, backend: str, seconds: float) -> None:
    """One scheduler-overhead observation (central loop + per-worker dispatch)."""
    registry.histogram(
        *_H["sched_overhead"], buckets=LATENCY_BUCKETS, backend=backend
    ).observe(seconds)


def record_comm_spans(registry: MetricsRegistry, backend: str, comm: Iterable[Any]) -> None:
    """Comm-action duration histograms from built CommSpans."""
    for span in comm:
        registry.histogram(
            *_H["comm_seconds"], buckets=LATENCY_BUCKETS,
            backend=backend, action=span.action,
        ).observe(span.duration)


def record_comm_message(
    registry: MetricsRegistry,
    backend: str,
    *,
    src: Any,
    dst: Any,
    logical_bytes: int,
    physical_bytes: int,
    mapped_bytes: int = 0,
) -> None:
    """Account one inter-process message: counters + per-edge size histogram.

    ``physical_bytes`` is what crossed the queue (a full pickled payload, or
    just a descriptor list on the shm plane); ``mapped_bytes`` is what moved
    through shared-memory segments instead.  The transfer histogram observes
    the wire size -- the cost the queue actually paid.
    """
    registry.counter(*_H["comm_msgs"], backend=backend).inc()
    registry.counter(*_H["comm_logical"], backend=backend).inc(logical_bytes)
    registry.counter(*_H["comm_physical"], backend=backend).inc(physical_bytes)
    if mapped_bytes:
        registry.counter(*_H["comm_mapped"], backend=backend).inc(mapped_bytes)
    registry.histogram(
        *_H["comm_transfer"], buckets=BYTES_BUCKETS,
        backend=backend, src=str(src), dst=str(dst),
    ).observe(physical_bytes)


def record_comm_events(registry: MetricsRegistry, backend: str, events: Iterable[Any]) -> None:
    """Account CommEvents (the ledger's rows) as messages.

    Uses each event's ``nbytes`` (model), ``payload_nbytes`` (measured wire)
    and ``mapped_nbytes`` (shared-memory), so the registry's byte counters
    reconcile with :attr:`CommLedger.total_bytes` / ``total_payload_bytes`` /
    ``total_mapped_bytes`` by construction.
    """
    for event in events:
        record_comm_message(
            registry,
            backend,
            src=event.src,
            dst=event.dst,
            logical_bytes=int(event.nbytes),
            physical_bytes=int(event.payload_nbytes),
            mapped_bytes=int(getattr(event, "mapped_nbytes", 0)),
        )


def record_queue_depth(registry: MetricsRegistry, backend: str, high_water: int) -> None:
    registry.gauge(*_H["queue_depth"], mode="max", backend=backend).set_max(high_water)


def record_memory(
    registry: MetricsRegistry,
    backend: str,
    memory: MemoryStats,
    *,
    rank: Any = "parent",
) -> None:
    """Record a MemoryStats onto the gauges (peak RSS + handle-table bytes)."""
    if memory.peak_rss_bytes is not None:
        registry.gauge(
            *_H["peak_rss"], mode="max", backend=backend, rank=str(rank)
        ).set_max(memory.peak_rss_bytes)
    for r, rss in memory.rank_peak_rss_bytes.items():
        registry.gauge(
            *_H["peak_rss"], mode="max", backend=backend, rank=str(r)
        ).set_max(rss)
    registry.gauge(
        *_H["handle_bytes"], mode="max", backend=backend, view="logical"
    ).set_max(memory.logical_bytes)
    registry.gauge(
        *_H["handle_bytes"], mode="max", backend=backend, view="measured"
    ).set_max(memory.measured_bytes)


def record_execution_metrics(
    registry: MetricsRegistry,
    *,
    backend: str,
    report: Any,
    trace: Any = None,
    graph: Any = None,
    queue_high_water: Optional[int] = None,
) -> MemoryStats:
    """The parent-side umbrella recorder used by the shared-memory backends.

    Records the report counters, the span/overhead/comm histograms from the
    (possibly unattached) trace, the ready-queue high water, and the memory
    gauges; returns the :class:`MemoryStats` so the caller can attach it to
    ``report.memory``.
    """
    record_report(registry, backend, report)
    if trace is not None:
        record_spans(registry, backend, trace.spans)
        record_comm_spans(registry, backend, trace.comm)
        overhead = trace.scheduler_overhead + sum(trace.worker_overhead.values())
        record_overhead(registry, backend, overhead)
    if queue_high_water is not None:
        record_queue_depth(registry, backend, queue_high_water)
    memory = handle_table_bytes(graph) if graph is not None else MemoryStats(
        peak_rss_bytes=peak_rss_bytes()
    )
    record_memory(registry, backend, memory)
    return memory


def record_sequential_run(
    registry: MetricsRegistry,
    backend: str,
    graph: Any,
    raw_spans: Sequence[tuple],
) -> MemoryStats:
    """DTD-level recorder for the sequential modes (immediate bodies, run()).

    ``raw_spans`` are the runtime's not-yet-recorded 9-field span-log tuples
    ``(tid, name, kind, phase, worker, process, queue_t, start_t, end_t)`` --
    the same log :meth:`DTDRuntime.assemble_trace` builds its spans from.
    """
    from repro.runtime.tracing import build_spans

    registry.counter(*_H["executions"], backend=backend).inc()
    registry.counter(*_H["executed"], backend=backend).inc(len(raw_spans))
    if raw_spans:
        t0 = min(item[6] for item in raw_spans)
        wall = max(item[8] for item in raw_spans) - t0
        record_spans(registry, backend, build_spans(list(raw_spans), t0))
    else:
        wall = 0.0
    registry.histogram(
        *_H["exec_seconds"], buckets=LATENCY_BUCKETS, backend=backend
    ).observe(wall)
    memory = handle_table_bytes(graph)
    record_memory(registry, backend, memory)
    return memory


def record_http_request(
    registry: MetricsRegistry,
    *,
    route: str,
    method: str,
    status: int,
    seconds: float,
) -> None:
    """Account one served HTTP request (the solver server's request log).

    ``route`` is the route *pattern* (``"/v1/tickets/{id}"``, never the
    concrete path) so label cardinality stays bounded no matter how many
    tickets exist.
    """
    registry.counter(
        *_H["http_requests"], route=route, method=method, status=str(status)
    ).inc()
    registry.histogram(
        *_H["http_seconds"], buckets=LATENCY_BUCKETS, route=route
    ).observe(seconds)


def record_http_rejection(
    registry: MetricsRegistry, *, reason: str, tenant: str = "anonymous"
) -> None:
    """Count one request rejected before reaching the solver.

    ``reason`` is one of ``unauthorized`` (401), ``rate_limited`` (429) or
    ``backpressure`` (503) -- the admission-control outcomes a capacity
    alert wants to distinguish.
    """
    registry.counter(*_H["http_rejected"], reason=reason, tenant=tenant).inc()


def record_http_inflight(registry: MetricsRegistry, inflight: int) -> None:
    """High-water mark of concurrently handled requests."""
    registry.gauge(*_H["http_inflight"], mode="max").set_max(inflight)


def record_rank_execution(
    registry: MetricsRegistry,
    *,
    backend: str,
    rank: int,
    graph: Any,
    spans: Sequence[tuple],
    comm_events: Iterable[Any] = (),
    comm_spans: Iterable[tuple] = (),
    overhead: float = 0.0,
) -> None:
    """The worker-side recorder of the distributed backend.

    Runs inside a forked rank on its local registry; the snapshot ships back
    to the parent in :class:`~repro.runtime.distributed.protocol.WorkerResult`
    and merges there.  ``spans`` are the rank's raw ``(tid, queue_t, start_t,
    end_t)`` stamp tuples, ``comm_spans`` the raw ``(action, src, dst, edge,
    nbytes, start, end)`` tuples -- the same data the trace is built from.
    """
    registry.counter(*_H["executed"], backend=backend).inc(len(spans))
    for tid, queue_t, start_t, end_t in spans:
        task = graph.task(tid)
        registry.histogram(
            *_H["task_seconds"], buckets=LATENCY_BUCKETS,
            backend=backend, kind=task.kind,
        ).observe(end_t - start_t)
        registry.histogram(
            *_H["queue_delay"], buckets=LATENCY_BUCKETS, backend=backend
        ).observe(max(0.0, start_t - queue_t))
    record_comm_events(registry, backend, comm_events)
    for action, _src, _dst, _edge, _nbytes, cs, ce in comm_spans:
        registry.histogram(
            *_H["comm_seconds"], buckets=LATENCY_BUCKETS,
            backend=backend, action=action,
        ).observe(ce - cs)
    if overhead:
        record_overhead(registry, backend, overhead)
    rss = peak_rss_bytes()
    if rss is not None:
        registry.gauge(
            *_H["peak_rss"], mode="max", backend=backend, rank=str(rank)
        ).set_max(rss)
