"""Process-wide observability: metrics registry, exposition, events, memory.

The aggregating counterpart of :mod:`repro.runtime.tracing` (which records
per-run timelines): a mergeable :class:`MetricsRegistry` threaded through the
four execution backends and the :class:`~repro.service.SolverService`,
Prometheus text exposition, a structured :class:`EventLog`, memory/byte
accounting, the benchmark trajectory gate, and the ``repro benchreport``
renderer.  See README "Observability" for the metric names and label
conventions.
"""

from repro.obs.events import Event, EventLog
from repro.obs.exposition import ExpositionError, parse_prometheus, render_prometheus
from repro.obs.memory import (
    MemoryStats,
    estimate_nbytes,
    handle_table_bytes,
    peak_rss_bytes,
)
from repro.obs.metrics import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    merge_snapshots,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "merge_snapshots",
    "LATENCY_BUCKETS",
    "BYTES_BUCKETS",
    "COUNT_BUCKETS",
    "render_prometheus",
    "parse_prometheus",
    "ExpositionError",
    "Event",
    "EventLog",
    "MemoryStats",
    "peak_rss_bytes",
    "estimate_nbytes",
    "handle_table_bytes",
]
