"""Prometheus text exposition: render registry snapshots, strictly parse them.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot
<repro.obs.metrics.MetricsRegistry.snapshot>` dict into the Prometheus text
exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers per
family, one sample line per labelled series, and for histograms the
cumulative ``_bucket{le=...}`` series ending at ``le="+Inf"`` plus ``_sum``
and ``_count``.

:func:`parse_prometheus` is the strict inverse used by the CI
``metrics-smoke`` job: it validates header ordering, metric/label name
syntax, label escaping, float formatting, histogram bucket cumulativity and
the ``+Inf``-equals-``_count`` invariant, and raises :class:`ExpositionError`
with a line number on the first violation.  Run as a module it checks a
file::

    python -m repro.obs.exposition /tmp/metrics.prom
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["render_prometheus", "parse_prometheus", "ExpositionError"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One sample line: name, optional {label="value",...} block, value.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


class ExpositionError(ValueError):
    """A violation of the Prometheus text format (carries the line number)."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out = []
    it = iter(range(len(value)))
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: List[List[str]], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(k, v) for k, v in labels]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a registry snapshot as Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family["kind"]
        help_text = family.get("help") or name
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in family["series"]:
            labels = entry.get("labels", [])
            if kind == "histogram":
                bounds = family.get("buckets") or []
                cumulative = 0
                counts = entry["counts"]
                for bound, count in zip(bounds, counts):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket{_labels_text(labels, ('le', _fmt(bound)))} "
                        f"{cumulative}"
                    )
                cumulative += counts[len(bounds)] if len(counts) > len(bounds) else 0
                lines.append(
                    f"{name}_bucket{_labels_text(labels, ('le', '+Inf'))} {cumulative}"
                )
                lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(entry['sum'])}")
                lines.append(f"{name}_count{_labels_text(labels)} {entry['count']}")
            else:
                lines.append(f"{name}{_labels_text(labels)} {_fmt(entry['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_value(lineno: int, text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(lineno, f"unparseable sample value {text!r}") from None


def _parse_labels(lineno: int, body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _LABEL_PAIR_RE.match(body, pos)
        if match is None:
            raise ExpositionError(lineno, f"malformed label block at {body[pos:]!r}")
        key = match.group("key")
        if key in labels:
            raise ExpositionError(lineno, f"duplicate label {key!r}")
        labels[key] = _unescape_label(match.group("value"))
        pos = match.end()
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse Prometheus text exposition into families of samples.

    Returns ``{name: {"kind", "help", "samples": [(sample_name, labels,
    value), ...]}}``.  Raises :class:`ExpositionError` on the first format
    violation: a sample before its headers, HELP/TYPE out of order or
    duplicated, invalid names or label syntax, non-cumulative histogram
    buckets, a missing ``+Inf`` bucket, or ``+Inf`` disagreeing with
    ``_count``.
    """
    families: Dict[str, Dict[str, Any]] = {}
    helps: Dict[str, str] = {}
    current: Optional[str] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Arbitrary comments are legal; ignore them.
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    raise ExpositionError(lineno, f"truncated {parts[1]} line")
                continue
            _, directive, name = parts[:3]
            rest = parts[3] if len(parts) == 4 else ""
            if not _NAME_RE.match(name):
                raise ExpositionError(lineno, f"invalid metric name {name!r}")
            if directive == "HELP":
                if name in helps:
                    raise ExpositionError(lineno, f"duplicate HELP for {name!r}")
                if name in families:
                    raise ExpositionError(lineno, f"HELP for {name!r} after its TYPE")
                helps[name] = rest
            else:  # TYPE
                if rest not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ExpositionError(lineno, f"unknown metric type {rest!r}")
                if name in families:
                    raise ExpositionError(lineno, f"duplicate TYPE for {name!r}")
                families[name] = {
                    "kind": rest,
                    "help": helps.get(name, ""),
                    "samples": [],
                }
                current = name
            continue

        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(lineno, f"unparseable sample line {line!r}")
        sample_name = match.group("name")
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                base = sample_name[: -len(suffix)]
                break
        family = families.get(base)
        if family is None:
            raise ExpositionError(
                lineno, f"sample {sample_name!r} before its # TYPE header"
            )
        if base != current:
            raise ExpositionError(
                lineno,
                f"sample {sample_name!r} interleaved outside its family block",
            )
        if base != sample_name and family["kind"] != "histogram":
            raise ExpositionError(
                lineno,
                f"suffix sample {sample_name!r} on non-histogram family {base!r}",
            )
        labels = _parse_labels(lineno, match.group("labels") or "")
        value = _parse_value(lineno, match.group("value"))
        family["samples"].append((sample_name, labels, value))

    _validate_histograms(families)
    return families


def _validate_histograms(families: Dict[str, Dict[str, Any]]) -> None:
    for name, family in families.items():
        if family["kind"] != "histogram":
            continue
        # Group bucket/sum/count samples per label set (excluding 'le').
        buckets: Dict[Tuple, List[Tuple[float, float]]] = {}
        counts: Dict[Tuple, float] = {}
        sums: Dict[Tuple, float] = {}
        for sample_name, labels, value in family["samples"]:
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if sample_name == f"{name}_bucket":
                if "le" not in labels:
                    raise ExpositionError(0, f"{name}_bucket sample without le label")
                le = _parse_value(0, labels["le"])
                buckets.setdefault(key, []).append((le, value))
            elif sample_name == f"{name}_count":
                counts[key] = value
            elif sample_name == f"{name}_sum":
                sums[key] = value
            else:
                raise ExpositionError(
                    0, f"histogram {name!r} has stray sample {sample_name!r}"
                )
        for key, series in buckets.items():
            les = [le for le, _ in series]
            if les != sorted(les):
                raise ExpositionError(0, f"histogram {name!r}: le bounds not ascending")
            values = [v for _, v in series]
            if values != sorted(values):
                raise ExpositionError(
                    0, f"histogram {name!r}: bucket counts not cumulative"
                )
            if not les or les[-1] != math.inf:
                raise ExpositionError(0, f"histogram {name!r}: missing +Inf bucket")
            if key not in counts:
                raise ExpositionError(0, f"histogram {name!r}: missing _count sample")
            if key not in sums:
                raise ExpositionError(0, f"histogram {name!r}: missing _sum sample")
            if values[-1] != counts[key]:
                raise ExpositionError(
                    0,
                    f"histogram {name!r}: +Inf bucket {values[-1]} != _count {counts[key]}",
                )


def main(argv=None) -> int:
    """Strict format check of an exposition file (the CI metrics-smoke step)."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="strictly validate a Prometheus text exposition file"
    )
    parser.add_argument("path", help="exposition file to check")
    args = parser.parse_args(argv)
    with open(args.path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        families = parse_prometheus(text)
    except ExpositionError as exc:
        print(f"{args.path}: INVALID: {exc}", file=sys.stderr)
        return 1
    nsamples = sum(len(f["samples"]) for f in families.values())
    print(f"{args.path}: ok ({len(families)} families, {nsamples} samples)")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
