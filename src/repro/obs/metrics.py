"""Process-wide runtime metrics: counters, gauges and log-bucket histograms.

The tracing layer (PR 7, :mod:`repro.runtime.tracing`) answers "where did
*this one run* spend its time"; this module is the aggregating counterpart:
a thread-safe :class:`MetricsRegistry` that accumulates counters, gauges and
fixed-log-bucket histograms *across* runs, processes and distributed ranks,
and exposes them in Prometheus text format
(:meth:`MetricsRegistry.render_prometheus`) and as a JSON-serializable dict
(:meth:`MetricsRegistry.snapshot`).

Cross-process aggregation uses the same shuttle pattern as PR 7's trace
spans: a child process (a distributed rank, a pool worker) records into a
local registry and ships :meth:`MetricsRegistry.snapshot` -- a plain,
picklable dict -- back to the parent, which folds it in with
:meth:`MetricsRegistry.merge`.  Merging is associative and commutative
(counters and gauges add, histogram bucket counts and sums add, min/max
combine), so rank snapshots can arrive and be folded in any order and the
aggregate is independent of it -- the invariant the merge tests assert.

Metric identity is ``(name, labels)``: one *family* per name (carrying the
Prometheus type and help text), one *series* per distinct label set.  Names
follow the Prometheus conventions used throughout the repo: the ``repro_``
prefix, ``_total`` suffix on counters, ``_seconds`` / ``_bytes`` unit
suffixes, and label keys like ``backend`` / ``kind`` / ``rank`` / ``src`` /
``dst``.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "LATENCY_BUCKETS",
    "BYTES_BUCKETS",
    "COUNT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Immutable, sorted ``((key, value), ...)`` label representation.
LabelSet = Tuple[Tuple[str, str], ...]


def log_buckets(lo: float, hi: float, *, per_decade: int = 2) -> Tuple[float, ...]:
    """Fixed log-scale histogram bucket bounds covering ``[lo, hi]``.

    Bounds are ``10 ** (k / per_decade)`` for every integer ``k`` whose bound
    falls inside the (inclusive) range -- e.g. ``log_buckets(1e-6, 100.0)``
    spans a microsecond to 100 seconds with two buckets per decade.  Fixed
    bounds are what make histogram snapshots mergeable across processes: all
    parties bucket identically by construction.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade <= 0:
        raise ValueError("per_decade must be positive")
    k_lo = math.ceil(round(math.log10(lo) * per_decade, 9))
    k_hi = math.floor(round(math.log10(hi) * per_decade, 9))
    return tuple(10.0 ** (k / per_decade) for k in range(k_lo, k_hi + 1))


#: Half-decade latency buckets, one microsecond .. 100 seconds.
LATENCY_BUCKETS: Tuple[float, ...] = log_buckets(1e-6, 100.0, per_decade=2)

#: Power-of-4 byte-size buckets, 1 B .. 1 GiB-ish.
BYTES_BUCKETS: Tuple[float, ...] = tuple(float(4 ** k) for k in range(16))

#: Power-of-2 count buckets (batch sizes, queue depths), 1 .. 1024.
COUNT_BUCKETS: Tuple[float, ...] = tuple(float(2 ** k) for k in range(11))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _labelset(labels: Mapping[str, Any]) -> LabelSet:
    out = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        out.append((key, str(labels[key])))
    return tuple(out)


class Counter:
    """A monotonically increasing sum (one labelled series of a family)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet, lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (one labelled series of a family).

    A gauge family declares its merge ``mode`` at registration: ``"sum"``
    gauges add on snapshot merge (like counters); ``"max"`` gauges keep the
    largest value -- the right semantics for high-water marks like peak RSS
    or queue depth, where summing two observations of the same process would
    double-count.  Both modes are associative and commutative.  Per-rank
    gauges additionally carry a ``rank`` label so distinct processes never
    share a series.
    """

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet, lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is below (high-water updates)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed log-scale-bucket histogram (one labelled series of a family).

    ``bounds`` are the ascending finite bucket upper bounds; observations
    above the last bound land in the implicit ``+Inf`` overflow bucket.
    Because the bounds are fixed at construction, two histograms of the same
    family bucket identically and their snapshots merge exactly (bucket
    counts and sums add; min/max combine).
    """

    __slots__ = ("name", "labels", "bounds", "_lock", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        lock: threading.Lock,
        bounds: Tuple[float, ...],
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._lock = lock
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        idx = 0
        bounds = self.bounds
        while idx < len(bounds) and value > bounds[idx]:
            idx += 1
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile observation."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for idx, n in enumerate(self.counts):
            seen += n
            if seen >= target and n:
                if idx < len(self.bounds):
                    return self.bounds[idx]
                return self.max
        return self.max

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable snapshot (count/total/mean/min/max/p50/p95 + buckets)."""
        buckets = {
            f"le_{self.bounds[i]:.4g}": n
            for i, n in enumerate(self.counts[:-1])
            if n
        }
        if self.counts[-1]:
            buckets["overflow"] = self.counts[-1]
        return {
            "count": self.count,
            "total": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "buckets": buckets,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One metric name: its kind, help text, bucket layout and label series."""

    __slots__ = ("name", "kind", "help", "bounds", "mode", "series")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        bounds: Optional[Tuple[float, ...]],
        mode: str = "sum",
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.bounds = bounds
        self.mode = mode
        self.series: Dict[LabelSet, Any] = {}


class MetricsRegistry:
    """A thread-safe collection of metric families with mergeable snapshots.

    The accessor methods (:meth:`counter` / :meth:`gauge` / :meth:`histogram`)
    are get-or-create: the first call for a name fixes its kind, help text
    and (for histograms) bucket bounds; later calls with the same name and
    labels return the existing series, and a conflicting kind or bucket
    layout raises.  One registry is intended per aggregation domain -- a
    service, a CLI invocation, a worker rank -- and child domains ship their
    :meth:`snapshot` to the parent's :meth:`merge`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    # -- get-or-create accessors ---------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        bounds: Optional[Tuple[float, ...]],
        mode: str = "sum",
    ) -> _Family:
        _check_name(name)
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, bounds, mode)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if kind == "gauge" and family.mode != mode:
            raise ValueError(
                f"gauge {name!r} already registered with merge mode {family.mode!r}"
            )
        if kind == "histogram" and bounds is not None and family.bounds != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        key = _labelset(labels)
        with self._lock:
            family = self._family(name, "counter", help, None)
            metric = family.series.get(key)
            if metric is None:
                metric = Counter(name, key, self._lock)
                family.series[key] = metric
        return metric

    def gauge(self, name: str, help: str = "", *, mode: str = "sum", **labels: Any) -> Gauge:
        """Get or create the gauge series ``name{labels}``.

        ``mode`` fixes the family's snapshot-merge semantics on first use:
        ``"sum"`` (default) or ``"max"`` for high-water marks.
        """
        if mode not in ("sum", "max"):
            raise ValueError(f"unknown gauge merge mode {mode!r}")
        key = _labelset(labels)
        with self._lock:
            family = self._family(name, "gauge", help, None, mode)
            metric = family.series.get(key)
            if metric is None:
                metric = Gauge(name, key, self._lock)
                family.series[key] = metric
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Tuple[float, ...] = LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """Get or create the histogram series ``name{labels}``.

        ``buckets`` fixes the family's bucket bounds on first use; later
        calls must agree (pass the same tuple or rely on the default).
        """
        key = _labelset(labels)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly ascending")
        with self._lock:
            family = self._family(name, "histogram", help, bounds)
            if family.bounds is None:
                family.bounds = bounds
            metric = family.series.get(key)
            if metric is None:
                metric = Histogram(name, key, self._lock, family.bounds)
                family.series[key] = metric
        return metric

    # -- inspection -----------------------------------------------------------
    def families(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The existing series ``name{labels}``, or None."""
        key = _labelset(labels)
        with self._lock:
            family = self._families.get(name)
            return family.series.get(key) if family is not None else None

    def value(self, name: str, **labels: Any) -> float:
        """Convenience: current value of a counter/gauge series (0.0 if absent)."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else 0.0

    # -- snapshot / merge ------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict, picklable, JSON-serializable copy of every series.

        The shuttle format of cross-process aggregation: child registries
        ship this dict to the parent's :meth:`merge`.  Histogram ``min`` is
        ``None`` when empty (JSON has no infinity).
        """
        out: Dict[str, Any] = {}
        with self._lock:
            for name, family in self._families.items():
                series = []
                for labels, metric in family.series.items():
                    entry: Dict[str, Any] = {"labels": [list(kv) for kv in labels]}
                    if family.kind == "histogram":
                        entry["counts"] = list(metric.counts)
                        entry["count"] = metric.count
                        entry["sum"] = metric.sum
                        entry["min"] = metric.min if metric.count else None
                        entry["max"] = metric.max if metric.count else None
                    else:
                        entry["value"] = metric.value
                    series.append(entry)
                out[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "mode": family.mode,
                    "buckets": list(family.bounds) if family.bounds else None,
                    "series": series,
                }
        return out

    def merge(self, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` into this registry (associative, commutative).

        Counters and gauges add; histogram bucket counts and sums add and
        min/max combine.  Families and series absent here are created from
        the snapshot's metadata, so merging into an empty registry
        reconstructs the child exactly.
        """
        for name, fam in snapshot.items():
            kind = fam["kind"]
            if kind not in _KINDS:
                raise ValueError(f"snapshot family {name!r} has unknown kind {kind!r}")
            bounds = tuple(fam["buckets"]) if fam.get("buckets") else None
            for entry in fam["series"]:
                labels = {k: v for k, v in entry["labels"]}
                if kind == "counter":
                    self.counter(name, fam.get("help", ""), **labels).inc(entry["value"])
                elif kind == "gauge":
                    mode = fam.get("mode", "sum")
                    gauge = self.gauge(name, fam.get("help", ""), mode=mode, **labels)
                    if mode == "max":
                        gauge.set_max(entry["value"])
                    else:
                        gauge.add(entry["value"])
                else:
                    hist = self.histogram(
                        name, fam.get("help", ""),
                        buckets=bounds or LATENCY_BUCKETS, **labels,
                    )
                    counts = entry["counts"]
                    if len(counts) != len(hist.counts):
                        raise ValueError(
                            f"histogram {name!r}: snapshot has {len(counts)} buckets, "
                            f"registry has {len(hist.counts)}"
                        )
                    with self._lock:
                        for i, c in enumerate(counts):
                            hist.counts[i] += c
                        hist.count += entry["count"]
                        hist.sum += entry["sum"]
                        if entry.get("min") is not None and entry["min"] < hist.min:
                            hist.min = entry["min"]
                        if entry.get("max") is not None and entry["max"] > hist.max:
                            hist.max = entry["max"]
        return self

    # -- exposition ------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4)."""
        from repro.obs.exposition import render_prometheus

        return render_prometheus(self.snapshot())

    def as_dict(self) -> Dict[str, Any]:
        """Alias of :meth:`snapshot` (the JSON surface of ``repro metrics``)."""
        return self.snapshot()

    def __repr__(self) -> str:
        with self._lock:
            nseries = sum(len(f.series) for f in self._families.values())
            return f"MetricsRegistry(families={len(self._families)}, series={nseries})"


def merge_snapshots(*snapshots: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge snapshot dicts into one (the parent-side fold, as a function)."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge(snap)
    return registry.snapshot()
