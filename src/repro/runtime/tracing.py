"""Measured task-level tracing for the real execution backends.

The simulator has always produced the paper's Fig. 10 per-worker breakdowns
(COMPUTE TASK TIME / RUNTIME OVERHEAD / MPI TIME) from the machine model;
*measured* executions recorded a single ``wall_time``, so the question "where
does the execution phase actually spend its time" could not be answered from
data.  This module is the measured counterpart of
:mod:`repro.runtime.trace`: a low-overhead span recorder threaded through all
four execution backends.

* :class:`TaskSpan` -- one executed task body: id, kind, phase, executing
  worker/process, queue/start/end ``perf_counter`` stamps, and the fused-head
  id when the span covers a coarsened task.
* :class:`CommSpan` -- one timed communication action of the distributed
  backend (serialize+send on the producer, install on the consumer), on the
  same clock as the task spans.
* :class:`ExecutionTrace` -- the assembled timeline: spans + comm events +
  measured scheduler overhead, normalized to a single ``t0`` origin.  Derives
  per-worker :class:`~repro.runtime.trace.WorkerBreakdown` rows
  (compute/overhead/communication/idle), per-kind and per-phase aggregate
  tables (:meth:`ExecutionTrace.by_kind` / :meth:`by_phase`), and exports the
  whole timeline as Chrome trace-event JSON
  (:meth:`ExecutionTrace.to_chrome_json`) loadable in ``chrome://tracing`` or
  Perfetto.

Clock alignment: every process stamps ``time.perf_counter()``, which on Linux
reads the system-wide ``CLOCK_MONOTONIC``; forked workers (the process and
distributed backends) therefore share the parent's clock and their spans
merge into one timeline by subtracting the parent's ``t0``.

The idle component is defined as the per-worker remainder
``wall_time - compute - overhead - communication`` (clamped at zero), so the
four components always reconcile with the execution wall time -- the
invariant the trace tests assert.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime.trace import WorkerBreakdown

__all__ = [
    "TaskSpan",
    "CommSpan",
    "SpanAggregate",
    "ExecutionTrace",
    "aggregate_spans",
]


@dataclass(frozen=True)
class TaskSpan:
    """One executed task body on the measured timeline.

    Attributes
    ----------
    tid:
        Task id of the *executed* task.  For coarsened graphs this is the
        fused head's id; :attr:`ExecutionTrace.head_of` maps every original
        task id onto it.
    name, kind, phase:
        Copied from the task (fused tasks carry the merged kind).
    worker:
        Executing worker index.  Thread backend: thread index; process
        backend: pool-worker index (first-seen pid order); distributed
        backend: the rank (one event loop per rank).
    process:
        Executing process rank (0 for the shared-memory backends).
    queue_t, start_t, end_t:
        ``perf_counter`` stamps relative to the trace origin: when the task
        became ready/was submitted, when its body started, when it finished.
    """

    tid: int
    name: str
    kind: str
    phase: int
    worker: int
    process: int
    queue_t: float
    start_t: float
    end_t: float

    @property
    def duration(self) -> float:
        return self.end_t - self.start_t

    @property
    def queue_delay(self) -> float:
        """Seconds between becoming ready/submitted and starting."""
        return self.start_t - self.queue_t


@dataclass(frozen=True)
class CommSpan:
    """One timed communication action of a distributed execution.

    ``action`` is ``"send"`` (serialize + enqueue, charged to the producer's
    rank) or ``"recv"`` (deserialize + install, charged to the consumer's
    rank); ``worker`` is the rank that spent the time.
    """

    action: str
    worker: int
    src: int
    dst: int
    edge: Tuple[int, int]
    nbytes: int
    start_t: float
    end_t: float

    @property
    def duration(self) -> float:
        return self.end_t - self.start_t


@dataclass(frozen=True)
class SpanAggregate:
    """Aggregate statistics of one group of spans (a task kind or a phase)."""

    key: Any
    count: int
    total: float
    mean: float
    p95: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p95": self.p95,
        }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return sorted_values[lo]
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def aggregate_spans(spans: Sequence[TaskSpan], key: str) -> List[SpanAggregate]:
    """Aggregate span durations by ``key`` (``"kind"`` or ``"phase"``).

    Returns one :class:`SpanAggregate` per distinct key value, sorted by
    descending total time -- the table the CLI prints to answer "which task
    kind eats the wall time".
    """
    groups: Dict[Any, List[float]] = {}
    for span in spans:
        groups.setdefault(getattr(span, key), []).append(span.duration)
    out: List[SpanAggregate] = []
    for value, durations in groups.items():
        durations.sort()
        total = sum(durations)
        out.append(
            SpanAggregate(
                key=value,
                count=len(durations),
                total=total,
                mean=total / len(durations),
                p95=_percentile(durations, 0.95),
            )
        )
    out.sort(key=lambda a: a.total, reverse=True)
    return out


@dataclass
class ExecutionTrace:
    """The measured timeline of one graph execution on one backend.

    Attributes
    ----------
    backend:
        Backend name (``"parallel"``, ``"process"``, ``"distributed"``,
        ``"immediate"``, ``"deferred"``).
    n_workers:
        Worker count the breakdowns average over (threads, pool processes or
        ranks).
    wall_time:
        Wall-clock seconds of the traced execution (the reconciliation
        window of :meth:`worker_breakdowns`).
    spans:
        One :class:`TaskSpan` per executed task, stamps relative to the
        trace origin.
    comm:
        Timed communication actions (distributed backend only).
    worker_overhead:
        Measured runtime-system seconds per worker (dispatch, bookkeeping,
        result shuttling) -- the directly instrumented part of RUNTIME
        OVERHEAD.
    scheduler_overhead:
        Runtime-system seconds spent in a central scheduler on behalf of all
        workers (the parent loop of the process backend); distributed evenly
        over the workers by :meth:`worker_breakdowns`.
    head_of:
        Fusion contraction map ``original tid -> executed head tid`` (empty
        when the graph was not coarsened).
    """

    backend: str
    n_workers: int
    wall_time: float = 0.0
    spans: List[TaskSpan] = field(default_factory=list)
    comm: List[CommSpan] = field(default_factory=list)
    worker_overhead: Dict[int, float] = field(default_factory=dict)
    scheduler_overhead: float = 0.0
    head_of: Dict[int, int] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    # -- breakdowns ----------------------------------------------------------
    def worker_breakdowns(self) -> Dict[int, WorkerBreakdown]:
        """Measured per-worker compute/overhead/communication/idle split.

        Compute and communication are summed from the recorded spans,
        overhead is the measured per-worker runtime cost plus an even share
        of the central :attr:`scheduler_overhead`, and idle is the remainder
        of the :attr:`wall_time` window (clamped at zero) -- so the four
        components of every worker sum to ``wall_time`` whenever the
        measured parts fit inside it.
        """
        workers = max(self.n_workers, 1)
        shared = self.scheduler_overhead / workers
        out: Dict[int, WorkerBreakdown] = {w: WorkerBreakdown() for w in range(workers)}
        for span in self.spans:
            out.setdefault(span.worker, WorkerBreakdown()).compute += span.duration
        for comm in self.comm:
            out.setdefault(comm.worker, WorkerBreakdown()).communication += comm.duration
        for worker, overhead in self.worker_overhead.items():
            out.setdefault(worker, WorkerBreakdown()).overhead += overhead
        for breakdown in out.values():
            breakdown.overhead += shared
            busy = breakdown.compute + breakdown.overhead + breakdown.communication
            breakdown.idle = max(0.0, self.wall_time - busy)
        return out

    def totals(self) -> WorkerBreakdown:
        """Component sums over all workers (``totals().compute`` etc.)."""
        total = WorkerBreakdown()
        for breakdown in self.worker_breakdowns().values():
            total.compute += breakdown.compute
            total.overhead += breakdown.overhead
            total.communication += breakdown.communication
            total.idle += breakdown.idle
        return total

    @property
    def compute_task_time(self) -> float:
        """Average per-worker seconds inside task bodies (Fig. 10 COMPUTE TASK TIME)."""
        return self.totals().compute / max(self.n_workers, 1)

    @property
    def runtime_overhead(self) -> float:
        """Average per-worker runtime + communication seconds (Fig. 10 RUNTIME OVERHEAD)."""
        totals = self.totals()
        return (totals.overhead + totals.communication) / max(self.n_workers, 1)

    def by_kind(self) -> List[SpanAggregate]:
        """Per-task-kind aggregates (count, total, mean, p95 seconds)."""
        return aggregate_spans(self.spans, "kind")

    def by_phase(self) -> List[SpanAggregate]:
        """Per-phase aggregates (count, total, mean, p95 seconds)."""
        return aggregate_spans(self.spans, "phase")

    # -- export --------------------------------------------------------------
    def to_chrome_events(self) -> List[Dict[str, Any]]:
        """The timeline as Chrome trace-event dicts (``X`` spans, ``M`` metadata).

        Timestamps are microseconds from the trace origin; ``pid`` is the
        executing process rank, ``tid`` the worker index -- so Perfetto /
        ``chrome://tracing`` renders one lane per worker, with communication
        actions interleaved on their rank's lane.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": rank,
                "args": {"name": f"{self.backend} rank {rank}"},
            }
            for rank in sorted({s.process for s in self.spans} | {0})
        ]
        seen_threads = set()
        for span in self.spans:
            if (span.process, span.worker) not in seen_threads:
                seen_threads.add((span.process, span.worker))
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": span.process,
                        "tid": span.worker,
                        "args": {"name": f"worker {span.worker}"},
                    }
                )
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "ts": span.start_t * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": span.process,
                    "tid": span.worker,
                    "args": {
                        "tid": span.tid,
                        "phase": span.phase,
                        "queue_delay_us": span.queue_delay * 1e6,
                    },
                }
            )
        for comm in self.comm:
            events.append(
                {
                    "name": f"{comm.action} {comm.edge[0]}->{comm.edge[1]}",
                    "cat": "comm",
                    "ph": "X",
                    "ts": comm.start_t * 1e6,
                    "dur": comm.duration * 1e6,
                    "pid": comm.worker,
                    "tid": comm.worker,
                    "args": {
                        "src": comm.src,
                        "dst": comm.dst,
                        "nbytes": comm.nbytes,
                    },
                }
            )
        return events

    def to_chrome_json(self, path: str) -> str:
        """Write the Chrome trace-event JSON file and return its path."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_events(), fh)
        return path

    # -- reporting -----------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Plain-dict summary for benchmark artifacts (JSON-serializable)."""
        totals = self.totals()
        return {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "wall_time": self.wall_time,
            "num_spans": len(self.spans),
            "num_comm_events": len(self.comm),
            "compute": totals.compute,
            "overhead": totals.overhead,
            "communication": totals.communication,
            "idle": totals.idle,
            "compute_task_time": self.compute_task_time,
            "runtime_overhead": self.runtime_overhead,
        }

    def format_breakdown(self) -> str:
        """Fixed-width per-worker breakdown table (the measured Fig. 10 view)."""
        lines = [
            f"{'worker':>6} {'compute [s]':>12} {'overhead [s]':>13} "
            f"{'comm [s]':>10} {'idle [s]':>10} {'busy %':>7}"
        ]
        for worker, b in sorted(self.worker_breakdowns().items()):
            busy = b.compute + b.overhead + b.communication
            pct = 100.0 * busy / self.wall_time if self.wall_time > 0 else 0.0
            lines.append(
                f"{worker:>6} {b.compute:>12.4f} {b.overhead:>13.4f} "
                f"{b.communication:>10.4f} {b.idle:>10.4f} {pct:>6.1f}%"
            )
        lines.append(
            f"{'avg':>6} {self.compute_task_time:>12.4f} "
            f"{self.runtime_overhead:>13.4f} {'':>10} {'':>10} "
            f"  wall={self.wall_time:.4f}s"
        )
        return "\n".join(lines)

    def format_aggregates(self) -> str:
        """Per-kind and per-phase aggregate tables (count/total/mean/p95)."""
        lines: List[str] = []
        for title, rows in (("by task kind", self.by_kind()), ("by phase", self.by_phase())):
            lines.append(f"-- {title} --")
            lines.append(
                f"{'key':<28} {'count':>6} {'total [s]':>10} {'mean [ms]':>10} {'p95 [ms]':>9}"
            )
            for agg in rows:
                lines.append(
                    f"{str(agg.key):<28.28} {agg.count:>6} {agg.total:>10.4f} "
                    f"{agg.mean * 1e3:>10.4f} {agg.p95 * 1e3:>9.4f}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExecutionTrace(backend={self.backend!r}, workers={self.n_workers}, "
            f"spans={len(self.spans)}, comm={len(self.comm)}, "
            f"wall_time={self.wall_time:.3g}s)"
        )


def _relative(stamp: float, t0: float) -> float:
    return stamp - t0


def build_spans(
    raw: Sequence[Tuple[int, str, str, int, int, int, float, float, float]],
    t0: float,
) -> List[TaskSpan]:
    """Build :class:`TaskSpan` objects from raw stamp tuples.

    ``raw`` items are ``(tid, name, kind, phase, worker, process, queue_t,
    start_t, end_t)`` with absolute ``perf_counter`` stamps; the returned
    spans are relative to ``t0``.  Kept out of the executors' hot loops so
    tracing only appends tuples while tasks run.
    """
    return [
        TaskSpan(
            tid=tid,
            name=name,
            kind=kind,
            phase=phase,
            worker=worker,
            process=process,
            queue_t=_relative(queue_t, t0),
            start_t=_relative(start_t, t0),
            end_t=_relative(end_t, t0),
        )
        for (tid, name, kind, phase, worker, process, queue_t, start_t, end_t) in raw
    ]
