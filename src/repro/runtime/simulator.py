"""Discrete-event simulation of a task graph on the distributed machine model.

Two scheduling policies are provided, matching the two distributed paradigms
compared in the paper (Table 1, Sec. 4):

``async``
    PaRSEC-style asynchronous execution (HATRIX-DTD, LORAPO): a task becomes
    ready as soon as its dependencies have completed and their data has been
    delivered point-to-point; tasks of different HSS levels overlap freely.
    The DTD graph-discovery cost (every process walks the whole graph) is
    charged per process.

``forkjoin``
    Bulk-synchronous fork-join execution (STRUMPACK): tasks are grouped into
    phases (HSS levels); a phase cannot start until the previous phase has
    completed globally, data is exchanged with collectives over the
    block-cyclic distribution, and each phase boundary pays a barrier.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Optional

from repro.runtime.dag import TaskGraph
from repro.runtime.machine import MachineConfig
from repro.runtime.trace import SimulationResult, WorkerBreakdown

__all__ = ["simulate"]


def _task_process(task, nodes: int, strategy=None) -> int:
    """Executing process of a task under owner-computes placement.

    Precedence: an explicitly pinned process, then the owner of the primary
    written handle, then -- for tasks with handles but no assigned owner --
    the configured :class:`DistributionStrategy`, and only as a last resort
    (no handles at all) the legacy ``tid % nodes`` round-robin.  This mirrors
    :func:`repro.runtime.distributed.resolve_owners`, where ``assign`` gives
    *every* handle an owner (position-less handles land on process 0), so
    simulated placement stays identical to the real distributed backend's
    even for graphs whose handles were never ``assign``-ed.
    """
    proc = task.owner_process()
    if proc is None and strategy is not None:
        primary = task.primary_write()
        if primary is None and task.accesses:
            primary = task.accesses[0].handle
        if primary is not None:
            proc = strategy.owner(primary)
    if proc is None:
        proc = task.tid % nodes
    return proc % nodes


def simulate(
    graph: TaskGraph,
    machine: MachineConfig,
    *,
    policy: str = "async",
    dtd_mode: str = "dtd",
    distribution=None,
    record_workers: bool = False,
) -> SimulationResult:
    """Simulate the execution of ``graph`` on ``machine``.

    Parameters
    ----------
    graph:
        The task DAG (tasks in insertion order, which must be a topological
        order -- guaranteed for graphs recorded by :class:`DTDRuntime`).
    machine:
        Machine configuration (node count, core count, speeds).
    policy:
        ``"async"`` (PaRSEC-style) or ``"forkjoin"`` (bulk-synchronous).
    dtd_mode:
        Task-insertion interface for the asynchronous policy.  ``"dtd"``
        (default): every process discovers the *whole* task graph, paying the
        discovery cost for every task (Sec. 4.2).  ``"ptg"``: a parameterized
        task graph generates only the local tasks on each process, so the
        per-process discovery cost scales with the local task count only --
        the lower-overhead alternative the paper discusses but does not
        implement.  Ignored for the fork-join policy.
    distribution:
        Optional :class:`~repro.distribution.strategies.DistributionStrategy`
        used to place tasks whose handles have no assigned owner, so simulated
        placement matches the real distributed backend's owner-computes
        placement.  Tasks without any handles keep the legacy ``tid % nodes``
        fallback.
    record_workers:
        If True, keep per-worker breakdowns (slower, more memory).

    Returns
    -------
    SimulationResult
    """
    if policy not in ("async", "forkjoin"):
        raise ValueError(f"unknown policy {policy!r}")
    if dtd_mode not in ("dtd", "ptg"):
        raise ValueError(f"unknown dtd_mode {dtd_mode!r}")
    nodes = machine.nodes
    cores = machine.cores_per_node

    succ, pred = graph.adjacency()
    finish: Dict[int, float] = {}
    task_proc: Dict[int, int] = {}
    # Earliest-free time of every core, indexed [process][core].
    core_free = [[0.0] * cores for _ in range(nodes)]

    total_compute = 0.0
    total_comm = 0.0
    total_sched = 0.0
    total_mpi = 0.0

    per_worker: Dict[int, WorkerBreakdown] = defaultdict(WorkerBreakdown)

    # Fork-join: tasks of phase p may only start after phase p-1 completed globally.
    phases_sorted = sorted({t.phase for t in graph.tasks})
    phase_index = {p: i for i, p in enumerate(phases_sorted)}
    phase_end: Dict[int, float] = {p: 0.0 for p in phases_sorted}
    phase_task_count: Dict[int, int] = defaultdict(int)
    for t in graph.tasks:
        phase_task_count[t.phase] += 1
    # Per-task scheduling overhead: the asynchronous runtime pays it for every
    # executed task; a fork-join code has a smaller per-call cost.
    sched_cost = machine.task_scheduling_overhead if policy == "async" else machine.task_scheduling_overhead * 0.25

    def _forkjoin_speedup(phase: int) -> float:
        # A bulk-synchronous code runs each block operation as a *distributed*
        # (ScaLAPACK-style) kernel over the whole machine, so when there are
        # fewer concurrent blocks than workers a single block operation is
        # spread over many cores -- at a limited efficiency and capped by one
        # node's core count.  The asynchronous runtime executes one task on
        # one core (policy "async": speedup 1).
        tasks_in_phase = max(phase_task_count.get(phase, 1), 1)
        speedup = machine.forkjoin_efficiency * machine.total_workers / tasks_in_phase
        return float(min(max(speedup, 1.0), machine.cores_per_node))

    barrier_accum = 0.0

    for task in graph.tasks:
        proc = _task_process(task, nodes, distribution)
        task_proc[task.tid] = proc

        # Fork-join barrier: task cannot start before its phase is released.
        phase_floor = 0.0
        if policy == "forkjoin":
            phase_idx = phase_index[task.phase]
            if phase_idx > 0:
                prev_phase = phases_sorted[phase_idx - 1]
                phase_floor = phase_end[prev_phase] + machine.barrier_time()

        # Data readiness: dependencies plus transfer time for remote producers.
        ready = phase_floor
        for p in pred.get(task.tid, []):
            pfin = finish[p]
            if task_proc[p] != proc:
                handles = graph.edge_data.get((p, task.tid), [])
                nbytes = float(sum(h.nbytes for h in handles))
                if policy == "async":
                    comm = machine.message_time(nbytes)
                else:
                    # Block-cyclic data is spread over all processes: a shuffle
                    # touches O(nodes) messages (plus the payload itself).
                    comm = (
                        machine.collective_latency_factor * nodes * machine.network_latency
                        + nbytes / machine.network_bandwidth
                    )
                    total_mpi += comm
                total_comm += comm
                pfin = pfin + comm
                if record_workers:
                    per_worker[proc * cores].communication += comm
            ready = max(ready, pfin)

        compute_time = machine.task_time(task.flops)
        if policy == "forkjoin":
            compute_time /= _forkjoin_speedup(task.phase)
        duration = compute_time + sched_cost
        total_compute += compute_time
        total_sched += sched_cost

        # Pick the earliest-available core on the owning process.
        free_times = core_free[proc]
        core_idx = min(range(cores), key=lambda c: free_times[c])
        start = max(ready, free_times[core_idx])
        end = start + duration
        free_times[core_idx] = end
        finish[task.tid] = end
        phase_end[task.phase] = max(phase_end.get(task.phase, 0.0), end)

        if record_workers:
            wb = per_worker[proc * cores + core_idx]
            wb.compute += machine.task_time(task.flops)
            wb.overhead += sched_cost

    makespan = max(finish.values(), default=0.0)

    total_runtime_overhead = total_sched
    if policy == "async":
        if dtd_mode == "dtd":
            # DTD graph discovery: every process walks the entire task graph
            # before (and while) executing; workers effectively wait on it, so
            # it is charged to the makespan once and to every worker's
            # overhead budget.
            discovered_tasks = graph.num_tasks
        else:
            # PTG: each process only instantiates its local tasks; the slowest
            # process determines the added critical-path cost.
            local_counts: Dict[int, int] = defaultdict(int)
            for tid, proc in task_proc.items():
                local_counts[proc] += 1
            discovered_tasks = max(local_counts.values(), default=0)
        discovery_per_process = discovered_tasks * machine.dtd_discovery_overhead
        makespan += discovery_per_process
        total_runtime_overhead += discovery_per_process * machine.total_workers
    else:
        # Level barriers plus the block-cyclic redistribution at every phase
        # boundary, paid by every process (the dominant MPI cost of Fig. 10b).
        n_barriers = max(len(phases_sorted) - 1, 0)
        barrier_accum = n_barriers * (machine.barrier_time() + machine.forkjoin_phase_cost * nodes)
        makespan += barrier_accum
        total_mpi += barrier_accum * machine.total_workers

    return SimulationResult(
        makespan=makespan,
        policy=policy,
        nodes=nodes,
        workers=machine.total_workers,
        num_tasks=graph.num_tasks,
        total_compute=total_compute,
        total_communication=total_comm,
        total_runtime_overhead=total_runtime_overhead,
        total_mpi=total_mpi,
        per_worker=dict(per_worker) if record_workers else {},
        extra={"barrier_time": barrier_accum},
    )
