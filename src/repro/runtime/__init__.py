"""Task-based runtime system substrate (the PaRSEC analogue of the paper).

The paper drives the HSS-ULV factorization with the PaRSEC runtime system's
Dynamic Task Discovery (DTD) interface.  This package provides the equivalent
programming model in pure Python:

* :class:`~repro.runtime.data.DataHandle` -- a named piece of matrix data with
  an owning process.
* :class:`~repro.runtime.dtd.DTDRuntime` -- ``insert_task`` with READ/WRITE
  access modes; dependencies are inferred from data accesses exactly like
  PaRSEC DTD (every process discovers the whole graph and trims non-local
  tasks, which is the source of the runtime overhead analysed in Sec. 5.3.3).
* :class:`~repro.runtime.dag.TaskGraph` -- the resulting DAG.
* :class:`~repro.runtime.machine.MachineConfig` -- a distributed machine model
  (Fugaku-like preset available).
* :func:`~repro.runtime.simulator.simulate` -- discrete-event simulation of a
  task graph on the machine model under either *asynchronous* (PaRSEC-style)
  or *fork-join* (ScaLAPACK/STRUMPACK-style) scheduling, producing the
  compute/overhead/MPI breakdowns of Fig. 10.
* :func:`~repro.runtime.executor.execute_graph` -- real shared-memory parallel
  execution of a recorded task graph: event-driven worker threads dispatch
  ready tasks highest-critical-path-first and cancel queued work
  deterministically when a task body raises.
* :mod:`~repro.runtime.distributed` -- real *distributed-memory* execution:
  :func:`~repro.runtime.distributed.execute_graph_distributed` runs the graph
  across forked worker processes with owner-computes placement from a
  :class:`~repro.distribution.strategies.DistributionStrategy`, explicit
  serialized data transfers on cross-process dependency edges, and a
  :class:`~repro.runtime.distributed.CommLedger` accounting every message, so
  measured communication can be cross-validated against the simulator's model.

Execution modes
---------------
A :class:`~repro.runtime.dtd.DTDRuntime` runs task bodies in one of three
modes, all producing bit-identical results:

``immediate``
    Bodies run at ``insert_task`` time (sequential, deterministic) while the
    graph is still recorded.  Best for debugging and as a reference.
``deferred``
    Bodies are recorded and run later: sequentially via
    :meth:`~repro.runtime.dtd.DTDRuntime.run`, out-of-order on a thread
    pool via :meth:`~repro.runtime.dtd.DTDRuntime.run_parallel`, or across
    worker processes via :meth:`~repro.runtime.dtd.DTDRuntime.run_distributed`.
``symbolic``
    Bodies are never run; only the graph (block sizes, flops, bytes) is
    recorded.  Used to generate paper-scale DAGs for the machine simulator.

The factorization drivers (:func:`repro.core.hss_ulv_dtd.hss_ulv_factorize_dtd`,
:func:`repro.core.blr2_ulv_dtd.blr2_ulv_factorize_dtd`) and the
:class:`~repro.api.HSSSolver` facade expose these as
``execution="immediate" | "deferred" | "parallel" | "distributed"`` /
``use_runtime="off" | "immediate" | "parallel" | "distributed"``.
"""

from repro.runtime.data import DataHandle
from repro.runtime.task import AccessMode, Task, TaskAccess
from repro.runtime.dag import TaskGraph
from repro.runtime.dtd import DTDRuntime
from repro.runtime.machine import MachineConfig, fugaku_like, laptop_like
from repro.runtime.trace import SimulationResult, WorkerBreakdown
from repro.runtime.tracing import CommSpan, ExecutionTrace, SpanAggregate, TaskSpan
from repro.runtime.simulator import simulate
from repro.runtime.executor import execute_graph
from repro.runtime.distributed import (
    CommLedger,
    DistributedReport,
    execute_graph_distributed,
)

__all__ = [
    "DataHandle",
    "AccessMode",
    "Task",
    "TaskAccess",
    "TaskGraph",
    "DTDRuntime",
    "MachineConfig",
    "fugaku_like",
    "laptop_like",
    "SimulationResult",
    "WorkerBreakdown",
    "ExecutionTrace",
    "TaskSpan",
    "CommSpan",
    "SpanAggregate",
    "simulate",
    "execute_graph",
    "CommLedger",
    "DistributedReport",
    "execute_graph_distributed",
]
