"""Data handles: the unit of dependency tracking and data distribution.

A :class:`DataHandle` names one block of the matrix (a dense diagonal block, a
basis, a coupling, a Schur complement, ...).  Tasks declare READ/WRITE access
to handles; the DTD runtime derives the task DAG from those accesses, and the
distribution strategies (Sec. 4.3) assign each handle to an owning process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["DataHandle"]

_handle_counter = itertools.count()


@dataclass(eq=False)
class DataHandle:
    """A named, distributable piece of data.

    Attributes
    ----------
    name:
        Unique human-readable name, e.g. ``"D[2;3]"`` or ``"S[1;1,0]"``.
    nbytes:
        Size of the block in bytes (used for communication-cost modelling).
    owner:
        Rank of the owning process, or ``None`` if not yet distributed.
    payload:
        Optional reference to the actual numerical data (absent in symbolic /
        simulation-only graphs).
    meta:
        Free-form metadata (level, block index, ...), used by distribution
        strategies.
    """

    name: str
    nbytes: int = 0
    owner: Optional[int] = None
    payload: Any = None
    meta: dict = field(default_factory=dict)
    hid: int = field(default_factory=lambda: next(_handle_counter))

    def __hash__(self) -> int:
        return hash(self.hid)

    def __repr__(self) -> str:
        own = f", owner={self.owner}" if self.owner is not None else ""
        return f"DataHandle({self.name!r}, {self.nbytes}B{own})"
