"""Data handles: the unit of dependency tracking and data distribution.

A :class:`DataHandle` names one block of the matrix (a dense diagonal block, a
basis, a coupling, a Schur complement, ...).  Tasks declare READ/WRITE access
to handles; the DTD runtime derives the task DAG from those accesses, and the
distribution strategies (Sec. 4.3) assign each handle to an owning process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, MutableMapping, Optional

__all__ = ["DataHandle"]

_handle_counter = itertools.count()


@dataclass(eq=False)
class DataHandle:
    """A named, distributable piece of data.

    Attributes
    ----------
    name:
        Unique human-readable name, e.g. ``"D[2;3]"`` or ``"S[1;1,0]"``.
    nbytes:
        Size of the block in bytes (used for communication-cost modelling).
    owner:
        Rank of the owning process, or ``None`` if not yet distributed.
    payload:
        Optional reference to the actual numerical data (absent in symbolic /
        simulation-only graphs).
    meta:
        Free-form metadata (level, block index, ...), used by distribution
        strategies.
    getter / setter:
        Optional value accessors bound by the task-graph builders
        (:meth:`bind` / :meth:`bind_item`).  The distributed backend uses them
        to move the handle's current value out of the producer's process and
        install it in a consumer's process; they are inherited by forked
        workers and never cross a process boundary themselves.  Under the
        zero-copy ``"shm"`` data plane, :meth:`set_value` on the consumer
        receives a writable ndarray *view* over a shared-memory segment
        rather than a deserialized copy -- bit-identical to the producer's
        array, but its ``.base`` keeps the mapping alive.
    """

    name: str
    nbytes: int = 0
    owner: Optional[int] = None
    payload: Any = None
    meta: dict = field(default_factory=dict)
    hid: int = field(default_factory=lambda: next(_handle_counter))
    getter: Optional[Callable[[], Any]] = field(default=None, repr=False)
    setter: Optional[Callable[[Any], None]] = field(default=None, repr=False)

    def __hash__(self) -> int:
        return hash(self.hid)

    # -- value binding (used by the distributed backend) ---------------------
    def bind(
        self, getter: Callable[[], Any], setter: Callable[[Any], None]
    ) -> "DataHandle":
        """Attach value accessors so this handle's data can move between processes."""
        self.getter = getter
        self.setter = setter
        return self

    def bind_item(self, store: MutableMapping, key: Any) -> "DataHandle":
        """Bind to one entry of a mutable mapping (the common builder pattern)."""
        return self.bind(lambda: store.get(key), lambda value: store.__setitem__(key, value))

    @property
    def bound(self) -> bool:
        return self.getter is not None

    def get_value(self) -> Any:
        """Current value of the handle, or ``None`` when unbound/unmaterialized."""
        return self.getter() if self.getter is not None else None

    def set_value(self, value: Any) -> None:
        """Install a (possibly remote) value; a no-op for unbound handles."""
        if self.setter is not None:
            self.setter(value)

    def __repr__(self) -> str:
        own = f", owner={self.owner}" if self.owner is not None else ""
        return f"DataHandle({self.name!r}, {self.nbytes}B{own})"
