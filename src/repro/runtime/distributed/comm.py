"""Communication accounting for the multi-process execution backend.

Every cross-process dependency edge of a task graph becomes exactly one
message from the producer's process to the consumer's process, carrying the
handles recorded on that edge.  :func:`plan_transfers` derives that message
plan statically from the graph and an owner map; the executor performs exactly
the planned transfers and records one :class:`CommEvent` per message, so the
*measured* ledger and the *analytic* plan (:func:`expected_comm`) describe the
same quantity -- the former observed at runtime, the latter predicted from the
distribution strategy alone.  The byte totals also agree with
:meth:`repro.runtime.dag.TaskGraph.communication_bytes`, the pre-existing
model used by the discrete-event simulator, which is what lets the weak-scaling
experiment cross-validate measured against modelled communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.runtime.dag import TaskGraph
from repro.runtime.data import DataHandle

__all__ = ["CommEvent", "CommLedger", "Transfer", "plan_transfers", "expected_comm"]


@dataclass(frozen=True)
class CommEvent:
    """One recorded point-to-point message.

    Attributes
    ----------
    src, dst:
        Sender and receiver process ranks.
    edge:
        The ``(producer_tid, consumer_tid)`` dependency edge that required the
        transfer.
    handles:
        Names of the handles carried by the message.
    nbytes:
        Model size of the message: the sum of ``handle.nbytes`` of the carried
        handles (what the machine model and the simulator charge).
    payload_nbytes:
        Measured wire size in bytes -- what actually crossed the queue.
        Always positive for a sent message: even a metadata-only transfer
        (the shm data plane) or an edge whose handles carry no values (an
        unbound-handle graph) serializes a real payload, and its true size
        is recorded so ``repro_comm_physical_bytes_total`` reconciles with
        the ledger in every mode.
    mapped_nbytes:
        Bytes that moved through shared-memory segments instead of the queue
        (the zero-copy data plane); 0 on the pickle plane.  Wire + mapped is
        the total data made visible to the consumer.
    """

    src: int
    dst: int
    edge: Tuple[int, int]
    handles: Tuple[str, ...]
    nbytes: int
    payload_nbytes: int = 0
    mapped_nbytes: int = 0


@dataclass
class CommLedger:
    """Aggregated communication record of one distributed execution."""

    events: List[CommEvent] = field(default_factory=list)

    def add(self, event: CommEvent) -> None:
        self.events.append(event)

    def merge(self, other: "CommLedger") -> "CommLedger":
        self.events.extend(other.events)
        return self

    @property
    def num_messages(self) -> int:
        return len(self.events)

    @property
    def total_bytes(self) -> int:
        """Model bytes moved (sum of handle ``nbytes`` over all messages)."""
        return sum(e.nbytes for e in self.events)

    @property
    def total_payload_bytes(self) -> int:
        """Measured wire bytes moved through the queues (physical bytes)."""
        return sum(e.payload_nbytes for e in self.events)

    @property
    def total_mapped_bytes(self) -> int:
        """Bytes moved through shared-memory segments (zero-copy data plane)."""
        return sum(e.mapped_nbytes for e in self.events)

    def by_pair(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Per ``(src, dst)`` pair: ``(message_count, model_bytes)``."""
        out: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for e in self.events:
            msgs, nbytes = out.get((e.src, e.dst), (0, 0))
            out[(e.src, e.dst)] = (msgs + 1, nbytes + e.nbytes)
        return out

    def summary(self) -> Dict[str, object]:
        """Plain-dict summary, convenient for JSON benchmark artifacts."""
        return {
            "messages": self.num_messages,
            "bytes": self.total_bytes,
            "payload_bytes": self.total_payload_bytes,
            "mapped_bytes": self.total_mapped_bytes,
            "by_pair": {f"{s}->{d}": list(v) for (s, d), v in sorted(self.by_pair().items())},
        }

    def __repr__(self) -> str:
        return f"CommLedger(messages={self.num_messages}, bytes={self.total_bytes})"


@dataclass(frozen=True)
class Transfer:
    """One planned message: the handles of ``edge`` move ``src`` -> ``dst``."""

    edge: Tuple[int, int]
    src: int
    dst: int
    handles: Tuple[DataHandle, ...]

    @property
    def nbytes(self) -> int:
        return int(sum(h.nbytes for h in self.handles))


def plan_transfers(graph: TaskGraph, proc_of: Mapping[int, int]) -> List[Transfer]:
    """Static message plan: one transfer per dependency edge crossing processes.

    ``proc_of`` maps every task id to its executing process rank.  Edges whose
    endpoints share a rank are free (shared address space); every other edge
    produces exactly one message carrying the edge's recorded handles (an edge
    without recorded handles still produces an empty synchronization message,
    so the consumer can observe the producer's completion).
    """
    transfers: List[Transfer] = []
    for s, d in sorted(graph.edges):
        src, dst = proc_of[s], proc_of[d]
        if src == dst:
            continue
        handles = tuple(graph.edge_data.get((s, d), ()))
        transfers.append(Transfer(edge=(s, d), src=src, dst=dst, handles=handles))
    return transfers


def expected_comm(graph: TaskGraph, proc_of: Mapping[int, int]) -> Tuple[int, int]:
    """Analytic ``(message_count, model_bytes)`` implied by an owner map.

    This is the count the distribution strategy predicts without running
    anything; a distributed execution under the same owner map must measure
    exactly these totals.
    """
    messages = 0
    nbytes = 0
    for t in plan_transfers(graph, proc_of):
        messages += 1
        nbytes += t.nbytes
    return messages, nbytes
