"""Shared-memory block store: the zero-copy data plane of the distributed backend.

The pickle data plane serializes every handle value into the message payload,
so each cross-process edge copies its array bytes twice (producer pickle,
consumer unpickle) and pushes them through a ``multiprocessing`` queue.  The
block store moves ndarray payloads through POSIX shared memory instead:

* the **producer** copies each eligible array once into a freshly created
  ``multiprocessing.shared_memory`` segment and ships only a :class:`BlockRef`
  descriptor (segment name, dtype, shape, order, byte count) over the queue;
* the **consumer** attaches the segment, immediately *unlinks* the name (each
  segment has exactly one consumer, and a POSIX unlink leaves existing
  mappings valid), and installs the value as a zero-copy ``ndarray`` view over
  the mapped buffer.

Receipt of the descriptor message still releases the dependency and installs
the value -- PaRSEC's data-flow semantics are unchanged; only the bytes that
cross the process boundary collapse from the full payload to a descriptor.
Values that are not plain numeric ndarrays (``None`` placeholders of unbound
handles, factor dataclasses, scalars, object/structured arrays, zero-size
arrays) fall back to inline pickle (protocol 5) inside the same descriptor
list, so any edge can mix both representations.

Segment lifecycle is airtight by construction: the single consumer unlinks on
install, and :meth:`BlockStore.sweep` lets the parent enumerate every segment
name the run *could* have created (the names are deterministic functions of
the run id and the static transfer plan) and unlink leftovers after an error,
timeout or cancellation -- even when the producing worker was terminated
mid-send.  Because the producer's create and the consumer's attach both
register the name with the fork family's shared ``resource_tracker`` (a set,
so the double registration is idempotent) and the unlink unregisters it, a
clean run leaves the tracker empty: no "leaked shared_memory" warnings.
"""

from __future__ import annotations

import pickle
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.runtime.dag import TaskGraph
from repro.runtime.distributed.comm import plan_transfers

__all__ = [
    "DATA_PLANES",
    "DEFAULT_DATA_PLANE",
    "SEGMENT_PREFIX",
    "BlockRef",
    "BlockStore",
    "resolve_data_plane",
    "encode_payload",
    "decode_payload",
]

#: The two wire representations of a cross-process edge: ``"shm"`` ships
#: descriptors + shared-memory segments (zero-copy install), ``"pickle"``
#: ships the fully pickled values (the legacy plane, kept as the measuring
#: stick and as the fallback on hosts without POSIX shared memory).
DATA_PLANES = ("shm", "pickle")

DEFAULT_DATA_PLANE = "shm"

#: Every segment name starts with this prefix, so tests (and the CI
#: leaked-segment check) can spot stray ``/dev/shm`` entries of this project.
SEGMENT_PREFIX = "rps"


def resolve_data_plane(data_plane: Optional[str]) -> str:
    """Normalize a ``data_plane`` argument (None reads ``REPRO_DATA_PLANE``)."""
    import os

    plane = data_plane or os.environ.get("REPRO_DATA_PLANE") or DEFAULT_DATA_PLANE
    if plane not in DATA_PLANES:
        raise ValueError(
            f"unknown data plane {plane!r}; expected one of {DATA_PLANES}"
        )
    return plane


@dataclass(frozen=True)
class BlockRef:
    """Descriptor of one array payload living in a shared-memory segment."""

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    order: str  # "C" or "F"
    nbytes: int


#: One edge payload on the wire: per handle either a :class:`BlockRef`
#: (array in shared memory) or the inline pickled bytes of the value.
Descriptor = Union[BlockRef, bytes]


def encode_payload(descriptors: Sequence[Descriptor]) -> bytes:
    """Serialize a descriptor list into the message payload bytes.

    ``len(encode_payload(...))`` is the *physical* wire size of the message:
    with the shm plane every transferred array contributes only its
    :class:`BlockRef` here, never its bytes.
    """
    return pickle.dumps(tuple(descriptors), protocol=5)


def decode_payload(payload: bytes) -> Tuple[Descriptor, ...]:
    return pickle.loads(payload)


def _exportable(value: Any) -> bool:
    """True when ``value`` moves through a segment instead of inline pickle.

    Exactly ``np.ndarray`` (subclasses would lose their type through the raw
    buffer), a plain numeric dtype (object/structured dtypes are not
    flat-buffer representable) and at least one byte (zero-size segments are
    not creatable).
    """
    return (
        type(value) is np.ndarray
        and value.dtype.kind in "biufc"
        and value.nbytes > 0
    )


class BlockStore:
    """Per-run handle table of shared-memory segments.

    One instance is created by the parent before forking and inherited by
    every worker; only the ``run_id`` matters at fork time (the attachment
    maps are process-local).  Segment names are deterministic:
    ``rps<run_id>-<producer_tid>-<consumer_tid>-<index>`` -- a pure function
    of the run and the edge, which is what makes :meth:`sweep` able to find
    every possible leftover from the static transfer plan alone.
    """

    def __init__(self, run_id: Optional[str] = None) -> None:
        self.run_id = run_id if run_id is not None else secrets.token_hex(4)
        # Under the fork start method nothing else starts the resource
        # tracker, so without this each *worker* would lazily spawn its own
        # on first segment create/attach -- and a producer-side tracker never
        # sees the consumer's unregister, warning about "leaked" segments at
        # shutdown.  Starting it here (the store is built pre-fork) makes
        # every child inherit the one shared tracker, where the register/
        # register/unregister sequence of each segment nets to zero.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        # Segments this process attached (consumer side), kept open so the
        # installed zero-copy views stay valid for the rest of the run.
        self._attached: Dict[str, shared_memory.SharedMemory] = {}
        self._refs: Dict[str, int] = {}

    def segment_name(self, edge: Tuple[int, int], index: int) -> str:
        return f"{SEGMENT_PREFIX}{self.run_id}-{edge[0]}-{edge[1]}-{index}"

    # -- producer side -------------------------------------------------------
    def export(
        self, edge: Tuple[int, int], values: Sequence[Any]
    ) -> Tuple[List[Descriptor], int]:
        """Write the edge's values out; returns ``(descriptors, mapped_bytes)``.

        Eligible arrays are copied once into a fresh segment each;
        ``mapped_bytes`` is their total size (the bytes that move through
        shared memory rather than the queue).  Everything else is pickled
        inline with protocol 5.
        """
        descriptors: List[Descriptor] = []
        mapped = 0
        for index, value in enumerate(values):
            if _exportable(value):
                descriptors.append(
                    self._write_segment(self.segment_name(edge, index), value)
                )
                mapped += int(value.nbytes)
            else:
                descriptors.append(pickle.dumps(value, protocol=5))
        return descriptors, mapped

    @staticmethod
    def _write_segment(name: str, value: np.ndarray) -> BlockRef:
        order = "F" if value.flags.f_contiguous and not value.flags.c_contiguous else "C"
        seg = shared_memory.SharedMemory(name=name, create=True, size=value.nbytes)
        try:
            dst = np.ndarray(value.shape, dtype=value.dtype, buffer=seg.buf, order=order)
            np.copyto(dst, value, casting="no")
            del dst  # the view must not outlive seg.buf
        finally:
            # Drop the producer's mapping; the *name* stays alive for the
            # consumer (the consumer unlinks it on install).
            seg.close()
        return BlockRef(
            segment=name,
            dtype=value.dtype.str,
            shape=tuple(value.shape),
            order=order,
            nbytes=int(value.nbytes),
        )

    # -- consumer side -------------------------------------------------------
    def install(self, descriptors: Sequence[Descriptor]) -> Tuple[Tuple[Any, ...], int]:
        """Materialize a received descriptor list; ``(values, mapped_bytes)``.

        Array descriptors come back as writable zero-copy views over the
        mapped segment; inline descriptors are unpickled.  The segment is
        unlinked on first attach -- each segment has exactly one consumer, so
        nobody else will ever open the name again and the mapping (hence the
        view) stays valid until this process exits.
        """
        values: List[Any] = []
        mapped = 0
        for ref in descriptors:
            if isinstance(ref, BlockRef):
                values.append(self._attach_view(ref))
                mapped += ref.nbytes
            else:
                values.append(pickle.loads(ref))
        return tuple(values), mapped

    def _attach_view(self, ref: BlockRef) -> np.ndarray:
        seg = self._attached.get(ref.segment)
        if seg is None:
            seg = shared_memory.SharedMemory(name=ref.segment)
            seg.unlink()  # single-consumer protocol: reclaim the name now
            self._attached[ref.segment] = seg
            self._refs[ref.segment] = 0
        self._refs[ref.segment] += 1
        return np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf, order=ref.order
        )

    def release(self, segment: str) -> None:
        """Drop one reference; the mapping is closed when the count hits zero.

        Only safe once every view over the segment has been deleted -- the
        worker loop never calls this (installed views live in the builders'
        stores until the process exits and the kernel unmaps everything);
        it exists for callers that manage view lifetimes explicitly.
        """
        if segment not in self._refs:
            return
        self._refs[segment] -= 1
        if self._refs[segment] <= 0:
            seg = self._attached.pop(segment)
            del self._refs[segment]
            try:
                seg.close()
            except BufferError:  # a view still references the buffer
                pass

    def close(self) -> None:
        """Best-effort unmap of every attached segment (views permitting)."""
        for segment in list(self._attached):
            self._refs[segment] = 0
            seg = self._attached.pop(segment)
            self._refs.pop(segment, None)
            try:
                seg.close()
            except BufferError:
                pass

    # -- parent-side cleanup backstop ---------------------------------------
    def sweep(self, graph: TaskGraph, proc_of: Mapping[int, int]) -> int:
        """Unlink every leftover segment this run could have created.

        Enumerates the candidate names from the static transfer plan (the
        only edges any worker ever exports) and unlinks whichever still
        exist -- segments orphaned because a consumer died, timed out or was
        cancelled before installing them.  Returns the number removed.
        Idempotent and safe concurrently with nothing running: a normally
        consumed segment is already unlinked and is simply skipped.
        """
        removed = 0
        for transfer in plan_transfers(graph, proc_of):
            for index in range(len(transfer.handles)):
                name = self.segment_name(transfer.edge, index)
                try:
                    seg = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - lost race
                    pass
                try:
                    seg.close()
                except BufferError:  # pragma: no cover - no views exist here
                    pass
                removed += 1
        return removed
