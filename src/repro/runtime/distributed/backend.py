"""Multi-process execution of a recorded task graph (owner-computes placement).

The distributed counterpart of :func:`repro.runtime.executor.execute_graph`:
``nodes`` worker *processes* (forked, so each inherits the recorded graph and
the pre-execution numerical state) each run an event loop over the tasks they
own.  Placement is owner-computes: a task executes on the process that owns
its primary written handle, as assigned by a
:class:`~repro.distribution.strategies.DistributionStrategy` (row-cyclic /
block-cyclic, paper Sec. 4.3).  Within a process, ready tasks are dispatched
highest critical-path priority first, mirroring the thread executor's
list-scheduling heuristic.

Data movement is explicit: every dependency edge whose endpoints live on
different processes becomes exactly one message
(:mod:`repro.runtime.distributed.comm` plans and accounts these).  What the
message carries depends on the **data plane**:

* ``"shm"`` (default) -- the zero-copy plane.  The producer writes each
  ndarray payload into a ``multiprocessing.shared_memory`` segment through
  the per-run :class:`~repro.runtime.distributed.blockstore.BlockStore` and
  the message carries metadata only (segment name, dtype, shape); the
  consumer installs the value as a zero-copy view over the mapped segment.
  Non-array values fall back to inline pickle inside the same message.
* ``"pickle"`` -- the legacy plane: the message payload is the pickled tuple
  of handle values.

Either way, receipt of the message releases the dependency *and* installs the
remote value into the consumer's address space -- PaRSEC's data-flow
semantics, where data availability and dependency release are one event; the
planes are bit-identical and differ only in which bytes cross the queue
(``payload_nbytes``, the wire) versus shared memory (``mapped_nbytes``).
Transfers overlap with compute: sends are posted without blocking the task
loop, receives are drained opportunistically between tasks, and an idle
worker parks in a *blocking* ``Queue.get`` (no sleep-polling) until data
arrives.  The parent likewise blocks in ``multiprocessing.connection.wait``
on the report queue and every live worker's sentinel, so worker results and
worker deaths both wake it immediately.

Because every process discovers the whole graph (each worker walks the full
task list to find its local tasks and compute priorities), the backend
reproduces the DTD discovery behaviour the paper identifies as the scaling
limiter (Sec. 5.3.3).

Results are gathered through per-worker ``collect`` callbacks: after a worker
drains its local tasks it serializes a *fragment* of the results it produced
(e.g. the factor pieces of its block rows) back to the parent, which merges
the fragments -- so the parent ends up with factors bit-identical to a
sequential in-process run.
"""

from __future__ import annotations

import heapq
import pickle
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _mp_wait
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.runtime.dag import TaskGraph
from repro.runtime.distributed.blockstore import (
    BlockStore,
    decode_payload,
    encode_payload,
    resolve_data_plane,
)
from repro.runtime.distributed.comm import CommEvent, CommLedger
from repro.runtime.distributed.protocol import DataMessage, RemoteTaskError, WorkerResult

__all__ = [
    "DistributedReport",
    "execute_graph_distributed",
    "measured_vs_planned_comm",
    "resolve_owners",
]


@dataclass
class DistributedReport:
    """Summary of one multi-process graph execution.

    Attributes
    ----------
    nodes:
        Number of worker processes.
    data_plane:
        The wire representation the run used: ``"shm"`` (descriptor messages
        + shared-memory segments) or ``"pickle"`` (full pickled payloads).
    executed:
        Task ids that completed, grouped by ascending worker rank (each
        rank's ids in its local completion order).
    errors:
        ``tid -> RemoteTaskError`` for task bodies that raised in a worker.
    cancelled:
        Task ids that never ran because of an error or timeout.
    timed_out:
        True when the parent's overall ``timeout`` expired.
    ledger:
        Communication ledger aggregating every inter-process message
        (logical ``total_bytes``, wire ``total_payload_bytes``, shared-memory
        ``total_mapped_bytes``).
    segments_swept:
        Shared-memory segments the parent's cleanup sweep had to unlink after
        the run -- always 0 for a clean execution (each segment's single
        consumer unlinks it on install); positive only on error/timeout/
        cancellation paths where transfers were orphaned in flight.
    fragments:
        Per-worker result fragments returned by the ``collect`` callback.
    per_rank:
        Per-worker statistics (task count, messages sent, wall time).
    wall_time:
        Parent-side wall-clock seconds for the whole execution.
    trace:
        Measured :class:`~repro.runtime.tracing.ExecutionTrace` merging all
        ranks onto one clock-aligned timeline (``trace=True`` runs only).
    memory:
        :class:`~repro.obs.memory.MemoryStats` with the parent's peak RSS,
        every rank's peak RSS and the handle-table byte accounting (metrics
        runs only).
    """

    nodes: int
    num_tasks: int
    data_plane: str = "shm"
    executed: List[int] = field(default_factory=list)
    errors: Dict[int, RemoteTaskError] = field(default_factory=dict)
    cancelled: List[int] = field(default_factory=list)
    timed_out: bool = False
    ledger: CommLedger = field(default_factory=CommLedger)
    segments_swept: int = 0
    fragments: List[Any] = field(default_factory=list)
    per_rank: Dict[int, Dict[str, float]] = field(default_factory=dict)
    wall_time: float = 0.0
    trace: Any = None
    memory: Any = None

    @property
    def ok(self) -> bool:
        return (
            not self.errors
            and not self.cancelled
            and not self.timed_out
            and len(self.executed) == self.num_tasks
        )

    def __repr__(self) -> str:
        # Same shape as ExecutionReport.__repr__: surface error/cancelled
        # counts and the timeout flag, not just the happy-path statistics.
        return (
            f"DistributedReport(nodes={self.nodes}, tasks={self.num_tasks}, "
            f"data_plane={self.data_plane!r}, "
            f"executed={len(self.executed)}, errors={len(self.errors)}, "
            f"cancelled={len(self.cancelled)}, timed_out={self.timed_out}, "
            f"messages={self.ledger.num_messages}, "
            f"comm_bytes={self.ledger.total_bytes}, wall_time={self.wall_time:.3g}s)"
        )


def resolve_owners(graph: TaskGraph, nodes: int, strategy=None) -> Dict[int, int]:
    """Owner-computes placement map ``tid -> rank`` for every task.

    When ``strategy`` is given, it (re)assigns every handle's owner first.
    Tasks whose handles carry no ownership information fall back to
    ``tid % nodes``; every rank is reduced modulo ``nodes`` so a strategy
    configured for more processes still yields a valid placement.
    """
    if strategy is not None:
        handles = {a.handle for t in graph.tasks for a in t.accesses}
        strategy.assign(handles)
    proc_of: Dict[int, int] = {}
    for task in graph.tasks:
        proc = task.owner_process()
        proc_of[task.tid] = (proc if proc is not None else task.tid) % nodes
    return proc_of


def measured_vs_planned_comm(graph: TaskGraph, report: "DistributedReport", nodes: int):
    """``(measured, planned)`` communication totals of one distributed run.

    Both are ``(message_count, model_bytes)`` pairs: the measured side from
    the run's ledger, the planned side from the static transfer plan implied
    by the owners recorded on the graph's handles.  The single definition of
    "the ledger matches the plan" shared by the graph builders, the test
    harness and the scaling experiments -- a correct execution measures
    exactly what the plan predicts.  The model bytes are the declared handle
    sizes, so the equality holds on *both* data planes (the plane changes
    only the physical representation, never the logical volume).
    """
    from repro.runtime.distributed.comm import expected_comm

    proc_of = resolve_owners(graph, nodes)
    measured = (report.ledger.num_messages, report.ledger.total_bytes)
    return measured, expected_comm(graph, proc_of)


def _worker_main(
    rank: int,
    graph: TaskGraph,
    proc_of: Mapping[int, int],
    priorities: Mapping[int, float],
    inboxes: List[Any],
    report_queue: Any,
    collect: Optional[Callable[[], Any]],
    store: Optional[BlockStore] = None,
    trace: bool = False,
    metrics: bool = False,
) -> None:
    """Event loop of one worker process (runs in a forked child).

    ``store`` selects the data plane: a :class:`BlockStore` exports array
    payloads into shared-memory segments and ships descriptors (the shm
    plane); ``None`` pickles the full values into the message (the legacy
    plane).  When idle with no ready task, the worker blocks in
    ``inbox.get()`` -- the next event can only be a data arrival, and the
    parent supervises liveness through the process sentinel, so there is
    nothing to poll for.

    With ``trace`` the worker stamps every task body, every export+send
    and receive+install interval, and its bookkeeping time, shipping the
    raw tuples back in :class:`WorkerResult` -- all stamps are absolute
    ``perf_counter`` values on the parent's clock (fork shares
    ``CLOCK_MONOTONIC``).  Comm-span byte counts are wire + mapped bytes
    (the data the action actually moved, on either plane).

    With ``metrics`` the same stamps additionally feed a rank-local
    :class:`~repro.obs.metrics.MetricsRegistry`, whose snapshot ships back
    in ``result.metrics`` for the parent to merge.
    """
    t0 = time.perf_counter()
    stamp = trace or metrics
    result = WorkerResult(rank=rank)
    succ, pred = graph.adjacency()
    local = [t.tid for t in graph.tasks if proc_of[t.tid] == rank]
    remaining = {tid: len(pred.get(tid, [])) for tid in local}
    # Min-heap on (-priority, tid): highest critical-path depth first, insertion
    # order as the deterministic tie-break -- same policy as the thread executor.
    ready = [(-priorities.get(tid, 0.0), tid) for tid in local if remaining[tid] == 0]
    heapq.heapify(ready)
    inbox = inboxes[rank]
    ready_at: Dict[int, float] = {}
    ready_hw = len(ready)
    if stamp:
        for _, tid in ready:
            ready_at[tid] = t0

    def apply_message(msg: DataMessage) -> None:
        # Install the remote values, then release the dependency: receipt of
        # the data *is* the producer's completion notification.  On the shm
        # plane the install attaches the producer's segments and binds
        # zero-copy views; the bytes never cross the queue.
        nonlocal ready_hw
        tr0 = time.perf_counter() if stamp else 0.0
        handles = graph.edge_data.get(msg.edge, [])
        if store is not None:
            values, mapped_in = store.install(decode_payload(msg.payload))
        else:
            values = pickle.loads(msg.payload)
            mapped_in = 0
        for handle, value in zip(handles, values):
            if value is not None:
                handle.set_value(value)
        if stamp:
            result.comm_spans.append(
                ("recv", msg.src, rank, msg.edge, len(msg.payload) + mapped_in,
                 tr0, time.perf_counter())
            )
        consumer = msg.edge[1]
        remaining[consumer] -= 1
        if remaining[consumer] == 0:
            heapq.heappush(ready, (-priorities.get(consumer, 0.0), consumer))
            if stamp:
                ready_at[consumer] = time.perf_counter()
                ready_hw = max(ready_hw, len(ready))

    try:
        while len(result.executed) < len(local):
            # Drain any transfers that arrived while computing.
            while True:
                try:
                    apply_message(inbox.get_nowait())
                except queue_mod.Empty:
                    break
            if not ready:
                # Nothing runnable: block until data arrives (dependency
                # release *is* data receipt, so there is no other event to
                # wait for).  No timeout -- the parent owns liveness: it
                # wakes on any worker death and terminates the rest.
                apply_message(inbox.get())
                continue
            _, tid = heapq.heappop(ready)
            task = graph.task(tid)
            t_start = time.perf_counter() if stamp else 0.0
            try:
                task.run()
            except BaseException as exc:
                result.error = RemoteTaskError(
                    rank, tid, task.name, repr(exc), traceback.format_exc()
                )
                break
            t_end = time.perf_counter() if stamp else 0.0
            result.executed.append(tid)
            if stamp:
                result.spans.append((tid, ready_at.get(tid, t0), t_start, t_end))
            comm_round = 0.0
            for nxt in succ.get(tid, []):
                dst = proc_of[nxt]
                if dst == rank:
                    remaining[nxt] -= 1
                    if remaining[nxt] == 0:
                        heapq.heappush(ready, (-priorities.get(nxt, 0.0), nxt))
                        if stamp:
                            ready_at[nxt] = time.perf_counter()
                            ready_hw = max(ready_hw, len(ready))
                else:
                    handles = graph.edge_data.get((tid, nxt), [])
                    ts0 = time.perf_counter() if stamp else 0.0
                    values = tuple(h.get_value() if h.bound else None for h in handles)
                    if store is not None:
                        # Export array payloads into shared memory; only the
                        # descriptor list crosses the queue.
                        descriptors, mapped = store.export((tid, nxt), values)
                        payload = encode_payload(descriptors)
                    else:
                        # Serialize once: the pickled payload both crosses
                        # the queue and yields the measured byte count.
                        payload = pickle.dumps(values, pickle.HIGHEST_PROTOCOL)
                        mapped = 0
                    inboxes[dst].put(
                        DataMessage(edge=(tid, nxt), src=rank, dst=dst, payload=payload)
                    )
                    if stamp:
                        ts1 = time.perf_counter()
                        comm_round += ts1 - ts0
                        result.comm_spans.append(
                            ("send", rank, dst, (tid, nxt), len(payload) + mapped,
                             ts0, ts1)
                        )
                    result.events.append(
                        CommEvent(
                            src=rank,
                            dst=dst,
                            edge=(tid, nxt),
                            handles=tuple(h.name for h in handles),
                            nbytes=int(sum(h.nbytes for h in handles)),
                            payload_nbytes=len(payload),
                            mapped_nbytes=mapped,
                        )
                    )
            if stamp:
                # Post-task bookkeeping (dependency release, scheduling),
                # minus the timed communication it contained.
                result.overhead += (time.perf_counter() - t_end) - comm_round
        if result.error is None and collect is not None:
            result.fragment = collect()
    except BaseException as exc:  # protocol/serialization failure, not a task body
        if result.error is None:
            result.error = RemoteTaskError(rank, -1, "<runtime>", repr(exc), traceback.format_exc())
    if metrics:
        # Rank-local registry, shipped home as a snapshot and merged by the
        # parent -- recorded even on the error path, so a failed execution
        # still accounts the tasks and messages that did happen.
        try:
            from repro.obs.metrics import MetricsRegistry
            from repro.obs.runtime_metrics import record_queue_depth, record_rank_execution

            registry = MetricsRegistry()
            record_rank_execution(
                registry,
                backend="distributed",
                rank=rank,
                graph=graph,
                spans=result.spans,
                comm_events=result.events,
                comm_spans=result.comm_spans,
                overhead=result.overhead,
            )
            record_queue_depth(registry, "distributed", ready_hw)
            result.metrics = registry.snapshot()
        except BaseException as exc:  # never let accounting kill the report
            if result.error is None:
                result.error = RemoteTaskError(
                    rank, -1, "<metrics>", repr(exc), traceback.format_exc()
                )
    result.wall_time = time.perf_counter() - t0
    report_queue.put(result)


def execute_graph_distributed(
    graph: TaskGraph,
    *,
    nodes: int = 2,
    strategy=None,
    collect: Optional[Callable[[], Any]] = None,
    timeout: Optional[float] = None,
    raise_on_error: bool = True,
    trace: bool = False,
    metrics=None,
    data_plane: Optional[str] = None,
) -> DistributedReport:
    """Execute all task bodies of ``graph`` across ``nodes`` worker processes.

    Parameters
    ----------
    graph:
        The recorded task graph (insertion order must be a topological order,
        which :class:`~repro.runtime.dtd.DTDRuntime` guarantees).
    nodes:
        Number of worker processes (one per simulated cluster node).
    strategy:
        Optional :class:`~repro.distribution.strategies.DistributionStrategy`
        used to (re)assign handle owners before placement.  When omitted, the
        owners already present on the handles are used (tasks without any
        ownership information fall back to ``tid % nodes``).
    collect:
        Zero-argument callable executed in *each worker* after it drains its
        local tasks; its picklable return value is shipped back to the parent
        and appended to ``report.fragments`` (a ``None`` return contributes no
        fragment).  This is how factorization drivers gather their result
        pieces from the worker address spaces.
    timeout:
        Overall wall-clock limit in seconds.  On expiry the workers are
        terminated; unlike the thread executor, partially computed remote
        state is lost.
    raise_on_error:
        If True (default) the first worker error (or :class:`TimeoutError`)
        is raised with the partial report attached as ``exc.execution_report``.
    trace:
        Record per-rank task spans and timed communication actions and merge
        them into one clock-aligned
        :class:`~repro.runtime.tracing.ExecutionTrace` on ``report.trace``.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  Each rank
        records its task and comm metrics (message counts, logical bytes
        from the declared handle sizes, measured wire bytes, shared-memory
        mapped bytes, per-edge transfer histograms) into a rank-local
        registry whose snapshot ships back in its :class:`WorkerResult`; the
        parent merges every snapshot into ``metrics``, adds the
        execution-level counters and memory gauges, and fills
        ``report.memory``.  The registry's byte counters reconcile with
        ``report.ledger`` by construction (both are fed from the same
        :class:`CommEvent` rows).
    data_plane:
        ``"shm"`` (zero-copy shared-memory segments + descriptor messages,
        the default), ``"pickle"`` (full pickled payloads), or None to read
        ``REPRO_DATA_PLANE`` and fall back to the default.  Both planes are
        bit-identical; they differ only in physical byte movement.

    Returns
    -------
    DistributedReport
        ``report.ok`` is True when every task ran; ``report.ledger`` holds the
        measured communication (message/byte counts per process pair).
    """
    import multiprocessing

    if nodes <= 0:
        raise ValueError("nodes must be positive")
    plane = resolve_data_plane(data_plane)
    t0 = time.perf_counter()
    report = DistributedReport(nodes=nodes, num_tasks=graph.num_tasks, data_plane=plane)
    if graph.num_tasks == 0:
        if metrics is not None:
            from repro.obs.memory import handle_table_bytes
            from repro.obs.runtime_metrics import record_memory, record_report

            record_report(metrics, "distributed", report)
            report.memory = handle_table_bytes(graph)
            record_memory(metrics, "distributed", report.memory)
        return report
    # Fail fast on graphs no scheduler could drain -- otherwise the workers
    # would block on their inboxes forever.
    graph.validate_drainable()
    proc_of = resolve_owners(graph, nodes, strategy)
    priorities = graph.critical_path_priorities()

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX platforms
        raise RuntimeError(
            "the distributed backend requires the 'fork' start method "
            "(POSIX only); use the thread executor on this platform"
        ) from exc

    # The store is created before the fork so every worker shares the run id
    # (its only cross-process state -- attachment maps are process-local).
    store = BlockStore() if plane == "shm" else None
    inboxes = [ctx.Queue() for _ in range(nodes)]
    report_queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_worker_main,
            args=(rank, graph, proc_of, priorities, inboxes, report_queue, collect,
                  store, trace, metrics is not None),
            name=f"dtd-rank{rank}",
            daemon=True,
        )
        for rank in range(nodes)
    ]
    for w in workers:
        w.start()

    deadline = None if timeout is None else t0 + timeout
    results: Dict[int, WorkerResult] = {}
    # The fork-context Queue is pipe-backed; waiting on its reader alongside
    # the live workers' sentinels replaces the old fixed-interval poll: the
    # parent wakes the moment a result lands *or* a worker dies.
    reader = report_queue._reader
    try:
        while len(results) < nodes:
            now = time.perf_counter()
            if deadline is not None and now >= deadline:
                report.timed_out = True
                break
            pending = [workers[r].sentinel for r in range(nodes) if r not in results]
            budget = None if deadline is None else max(deadline - now, 0.0)
            fired = _mp_wait([reader] + pending, timeout=budget)
            if not fired:
                report.timed_out = True
                break
            res: Optional[WorkerResult] = None
            if reader in fired:
                try:
                    res = report_queue.get(timeout=1.0)
                except queue_mod.Empty:
                    res = None
            if res is None:
                # Only sentinels fired: a worker exited.  A worker that died
                # without reporting (segfault in a BLAS kernel, OOM kill,
                # os._exit) would otherwise hang this loop and every peer
                # waiting on its data forever.
                dead = [
                    r for r in range(nodes)
                    if r not in results and not workers[r].is_alive()
                ]
                try:
                    # Its final report may still be in flight in the queue.
                    res = report_queue.get(timeout=0.5)
                except queue_mod.Empty:
                    if not dead:
                        continue
                    rank = dead[0]
                    res = WorkerResult(
                        rank=rank,
                        error=RemoteTaskError(
                            rank,
                            -1,
                            "<worker>",
                            "worker process died without reporting "
                            f"(exitcode={workers[rank].exitcode})",
                            "",
                        ),
                    )
            results[res.rank] = res
            if res.error is not None:
                # Peers may be blocked waiting for this worker's data forever;
                # give already-finished workers a moment to report, then stop.
                grace = time.perf_counter() + 0.2
                while len(results) < nodes and time.perf_counter() < grace:
                    try:
                        late: WorkerResult = report_queue.get(timeout=0.05)
                        results[late.rank] = late
                    except queue_mod.Empty:
                        break
                break
    finally:
        failed = report.timed_out or any(r.error is not None for r in results.values())
        for w in workers:
            if failed and w.is_alive():
                w.terminate()
            w.join(timeout=5.0)
            if w.is_alive():  # pragma: no cover - last-resort cleanup
                w.terminate()
                w.join(timeout=5.0)
        for q in inboxes:
            q.cancel_join_thread()
        if store is not None:
            # Segment-lifecycle backstop: unlink anything a terminated or
            # errored run left behind (the candidate names are a pure
            # function of the run id and the static transfer plan, so this
            # finds every possible orphan, even from a worker killed
            # mid-send).  A clean run sweeps nothing.
            try:
                report.segments_swept = store.sweep(graph, proc_of)
            except BaseException:  # pragma: no cover - cleanup must not mask
                pass

    for rank in sorted(results):
        res = results[rank]
        report.executed.extend(res.executed)
        report.ledger.events.extend(res.events)
        if res.error is not None:
            report.errors[res.error.tid] = res.error
        elif res.fragment is not None:
            report.fragments.append(res.fragment)
        report.per_rank[rank] = {
            "executed": len(res.executed),
            "messages_sent": len(res.events),
            "wall_time": res.wall_time,
        }
    if report.errors or report.timed_out:
        # Disjoint from executed and errors, matching ExecutionReport's contract.
        settled = set(report.executed) | set(report.errors)
        report.cancelled = [t.tid for t in graph.tasks if t.tid not in settled]
    report.wall_time = time.perf_counter() - t0

    if metrics is not None:
        from repro.obs.memory import handle_table_bytes
        from repro.obs.runtime_metrics import record_memory, record_report

        # Fold every rank's registry snapshot into the caller's registry
        # (rank-side: executed counters, per-kind latency, comm counters and
        # histograms, rank RSS), then add what only the parent knows: the
        # execution-level counters and the handle-table/memory gauges.
        for rank in sorted(results):
            snapshot = results[rank].metrics
            if snapshot:
                metrics.merge(snapshot)
        # Ranks already counted their own completed tasks in their snapshots.
        record_report(metrics, "distributed", report, include_executed=False)
        memory = handle_table_bytes(graph)
        for rank in sorted(results):
            rank_rss = metrics.value(
                "repro_peak_rss_bytes", backend="distributed", rank=str(rank)
            )
            if rank_rss:
                memory.rank_peak_rss_bytes[rank] = int(rank_rss)
        record_memory(metrics, "distributed", memory)
        report.memory = memory

    if trace:
        from repro.runtime.tracing import CommSpan, ExecutionTrace, build_spans

        tr = ExecutionTrace(
            backend="distributed",
            n_workers=nodes,
            wall_time=report.wall_time,
        )
        raw: List[tuple] = []
        for rank in sorted(results):
            res = results[rank]
            for tid, queue_t, start_t, end_t in res.spans:
                task = graph.task(tid)
                raw.append(
                    (tid, task.name, task.kind, task.phase, rank, rank,
                     queue_t, start_t, end_t)
                )
            for action, src, dst, edge, nbytes, cs, ce in res.comm_spans:
                tr.comm.append(CommSpan(
                    action=action,
                    worker=rank,
                    src=src,
                    dst=dst,
                    edge=tuple(edge),
                    nbytes=nbytes,
                    start_t=cs - t0,
                    end_t=ce - t0,
                ))
            tr.worker_overhead[rank] = res.overhead
        tr.spans = build_spans(raw, t0)
        report.trace = tr

    if raise_on_error:
        if report.errors:
            first = next(iter(report.errors.values()))
            first.execution_report = report
            raise first
        if report.timed_out:
            err = TimeoutError(
                f"distributed execution exceeded {timeout}s "
                f"({len(report.executed)}/{report.num_tasks} tasks completed)"
            )
            err.execution_report = report
            raise err
    return report
