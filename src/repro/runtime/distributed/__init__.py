"""Distributed-memory execution backend for recorded DTD task graphs.

The real multi-process counterpart of both the thread-pool executor
(:mod:`repro.runtime.executor`) and the discrete-event simulator
(:mod:`repro.runtime.simulator`): task graphs recorded by
:class:`~repro.runtime.dtd.DTDRuntime` execute across ``nodes`` forked worker
processes with owner-computes placement from a
:class:`~repro.distribution.strategies.DistributionStrategy`, explicit
serialized data transfers on cross-process dependency edges, and full
communication accounting.

Modules
-------
:mod:`~repro.runtime.distributed.backend`
    :func:`execute_graph_distributed` -- the process-pool event loops,
    owner resolution and result gathering; :class:`DistributedReport`.
:mod:`~repro.runtime.distributed.comm`
    :class:`CommLedger` / :class:`CommEvent` measurement records, plus the
    static transfer plan (:func:`plan_transfers`) and the analytic message /
    byte counts (:func:`expected_comm`) implied by a distribution strategy.
:mod:`~repro.runtime.distributed.protocol`
    The queue message types exchanged between workers and the parent.

Entry points: :meth:`repro.runtime.dtd.DTDRuntime.run_distributed`,
``execution="distributed"`` on the ULV factorization drivers,
``HSSSolver.factorize(use_runtime="distributed")`` and
``python -m repro solve --runtime distributed --nodes N``.
"""

from repro.runtime.distributed.backend import (
    DistributedReport,
    execute_graph_distributed,
    measured_vs_planned_comm,
    resolve_owners,
)
from repro.runtime.distributed.comm import (
    CommEvent,
    CommLedger,
    Transfer,
    expected_comm,
    plan_transfers,
)
from repro.runtime.distributed.protocol import DataMessage, RemoteTaskError, WorkerResult

__all__ = [
    "DistributedReport",
    "execute_graph_distributed",
    "measured_vs_planned_comm",
    "resolve_owners",
    "CommEvent",
    "CommLedger",
    "Transfer",
    "expected_comm",
    "plan_transfers",
    "DataMessage",
    "RemoteTaskError",
    "WorkerResult",
]
