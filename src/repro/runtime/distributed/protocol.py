"""Wire protocol of the multi-process backend.

Workers exchange two message kinds over ``multiprocessing`` queues:

* :class:`DataMessage` -- worker-to-worker: the payload of one cross-process
  dependency edge.  On the shm data plane the payload is a pickled list of
  :class:`~repro.runtime.distributed.blockstore.BlockRef` descriptors (array
  bytes travel through shared-memory segments, metadata only crosses the
  queue); on the pickle plane it is the pickled tuple of handle values.
  Either way, receipt of the message *is* the completion notification for
  the remote producer (PaRSEC's data-flow semantics: data availability and
  dependency release are the same event).
* :class:`WorkerResult` -- worker-to-parent: the final report of one worker
  process (executed tasks, recorded communication events, the collected
  result fragment, and the first error if any).

Only plain values (numpy arrays, factor dataclasses, strings, ints) cross the
process boundary; task bodies, handles and the graph itself are inherited via
``fork`` and never serialized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.runtime.distributed.comm import CommEvent

__all__ = ["DataMessage", "WorkerResult", "RemoteTaskError"]


@dataclass
class DataMessage:
    """Payload of one dependency edge, sent producer -> consumer.

    ``payload`` is what crosses the queue: on the shm plane the encoded
    descriptor list (:func:`~repro.runtime.distributed.blockstore.encode_payload`),
    on the pickle plane the pickled tuple of handle values.  Serializing once
    in the sender both produces the wire bytes and yields the measured
    ``payload_nbytes`` for the communication ledger.
    """

    edge: Tuple[int, int]
    src: int
    dst: int
    payload: bytes


@dataclass
class WorkerResult:
    """Final report of one worker process, sent to the parent.

    When the execution is traced, ``spans`` carries one raw stamp tuple
    ``(tid, queue_t, start_t, end_t)`` per executed task and ``comm_spans``
    one ``(action, src, dst, edge, nbytes, start_t, end_t)`` tuple per timed
    communication action -- absolute ``perf_counter`` stamps on the parent's
    clock (fork shares ``CLOCK_MONOTONIC``), assembled into an
    :class:`~repro.runtime.tracing.ExecutionTrace` by the parent.
    ``overhead`` is the worker's measured bookkeeping time (dependency
    release, scheduling) outside task bodies and communication.

    When the execution carries a metrics registry, ``metrics`` is the rank's
    local :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (a plain
    picklable dict) -- the same shuttle pattern as the trace stamps; the
    parent merges every rank's snapshot into the caller's registry.
    """

    rank: int
    executed: List[int] = field(default_factory=list)
    events: List[CommEvent] = field(default_factory=list)
    fragment: Any = None
    error: Optional["RemoteTaskError"] = None
    wall_time: float = 0.0
    spans: List[Tuple[int, float, float, float]] = field(default_factory=list)
    comm_spans: List[Tuple] = field(default_factory=list)
    overhead: float = 0.0
    metrics: Any = None


class RemoteTaskError(RuntimeError):
    """A task body raised inside a worker process.

    The original exception cannot always be pickled faithfully, so the worker
    ships its ``repr`` and formatted traceback; the parent re-raises this
    wrapper with the partial :class:`~repro.runtime.distributed.backend.DistributedReport`
    attached as ``execution_report``.
    """

    def __init__(self, rank: int, tid: int, task_name: str, exc_repr: str, traceback_text: str) -> None:
        super().__init__(
            f"task {tid} ({task_name!r}) failed on process {rank}: {exc_repr}"
        )
        self.rank = rank
        self.tid = tid
        self.task_name = task_name
        self.exc_repr = exc_repr
        self.traceback_text = traceback_text

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted message)
        # into __init__, which has a different signature -- spell it out.
        return (
            RemoteTaskError,
            (self.rank, self.tid, self.task_name, self.exc_repr, self.traceback_text),
        )
