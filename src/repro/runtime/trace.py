"""Simulation traces and the per-worker time breakdowns of Fig. 10.

The paper instruments all three codes and reports, per worker (core):

* ``COMPUTE TASK TIME`` -- average time spent inside computational kernels;
* ``RUNTIME OVERHEAD`` -- average time spent in the runtime system
  (scheduling, task discovery, memory management, MPI progress) for the
  PaRSEC-based codes (LORAPO, HATRIX-DTD);
* ``MPI TIME`` -- average time spent inside MPI calls for the fork-join code
  (STRUMPACK).

:class:`SimulationResult` carries the same quantities for the simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["WorkerBreakdown", "SimulationResult"]


@dataclass
class WorkerBreakdown:
    """Per-worker accumulated times (seconds)."""

    compute: float = 0.0
    overhead: float = 0.0
    communication: float = 0.0
    idle: float = 0.0


@dataclass
class SimulationResult:
    """Outcome of simulating one task graph on one machine configuration.

    Attributes
    ----------
    makespan:
        Simulated wall-clock factorization time (the quantity plotted in
        Fig. 9, 11, 12).
    policy:
        ``"async"`` or ``"forkjoin"``.
    nodes, workers:
        Machine size used.
    num_tasks:
        Number of tasks in the simulated graph.
    total_compute:
        Sum of all task execution times (all workers).
    total_communication:
        Sum of all inter-process transfer times.
    total_runtime_overhead:
        Sum of runtime-system costs (scheduling + DTD graph discovery).
    total_mpi:
        Sum of communication + barrier/collective costs (fork-join codes).
    per_worker:
        Optional per-worker breakdowns.
    """

    makespan: float
    policy: str
    nodes: int
    workers: int
    num_tasks: int
    total_compute: float = 0.0
    total_communication: float = 0.0
    total_runtime_overhead: float = 0.0
    total_mpi: float = 0.0
    per_worker: Dict[int, WorkerBreakdown] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    # -- Fig. 10 style averages --------------------------------------------
    @property
    def compute_task_time(self) -> float:
        """Average per-worker time inside computational kernels ("COMPUTE TASK TIME")."""
        return self.total_compute / max(self.workers, 1)

    @property
    def runtime_overhead(self) -> float:
        """Average per-worker runtime-system time ("RUNTIME OVERHEAD", PaRSEC codes)."""
        return (self.total_runtime_overhead + self.total_communication) / max(self.workers, 1)

    @property
    def mpi_time(self) -> float:
        """Average per-worker time inside MPI ("MPI TIME", fork-join codes)."""
        return self.total_mpi / max(self.workers, 1)

    @property
    def compute_time(self) -> float:
        """Alias of :attr:`compute_task_time` (STRUMPACK terminology)."""
        return self.compute_task_time

    def breakdown(self) -> Dict[str, float]:
        """Dictionary view used by the Fig. 10 benchmark tables."""
        return {
            "makespan": self.makespan,
            "compute_task_time": self.compute_task_time,
            "runtime_overhead": self.runtime_overhead,
            "mpi_time": self.mpi_time,
        }

    def __repr__(self) -> str:
        return (
            f"SimulationResult(policy={self.policy!r}, nodes={self.nodes}, "
            f"tasks={self.num_tasks}, makespan={self.makespan:.4g}s)"
        )
