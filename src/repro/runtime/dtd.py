"""Dynamic Task Discovery (DTD) runtime -- the PaRSEC interface used by HATRIX-DTD.

The DTD programming model (Sec. 4.2): the algorithm is written as a sequence of
``insert_task`` calls, each declaring which data handles it reads and writes.
The runtime derives the dependency DAG from the access order:

* a task reading a handle depends on the last writer of that handle;
* a task writing a handle depends on the last writer *and* on every reader
  since that write (write-after-read);

and, in the real PaRSEC DTD, *every process discovers the entire task graph*
and then trims the tasks that are not local.  That per-process discovery cost
is the runtime overhead that limits HATRIX-DTD's weak scaling (Sec. 5.3.3);
the machine model charges it explicitly.

Execution modes
---------------
``immediate``
    The task body runs at insertion time (sequential, deterministic) while the
    graph is still recorded -- the default for numerical factorizations.
``deferred``
    Bodies are stored and only run when :meth:`DTDRuntime.run` (sequentially,
    in insertion order), :meth:`DTDRuntime.run_parallel` (out-of-order on a
    thread pool, via :func:`repro.runtime.executor.execute_graph`) or
    :meth:`DTDRuntime.run_distributed` (across forked worker processes, via
    :func:`repro.runtime.distributed.execute_graph_distributed`) is called.
``symbolic``
    Bodies are never run; only the graph (block sizes, flops, bytes) is
    recorded.  Used to generate paper-scale DAGs for the machine simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.dag import TaskGraph
from repro.runtime.data import DataHandle
from repro.runtime.task import AccessMode, Task, TaskAccess, normalize_accesses

__all__ = ["DTDRuntime", "resolve_execution"]


class DTDRuntime:
    """A dynamic-task-discovery runtime instance.

    Parameters
    ----------
    execution:
        ``"immediate"`` (default), ``"deferred"`` or ``"symbolic"``.
    trace:
        Record a measured :class:`~repro.runtime.tracing.ExecutionTrace` of
        every execution.  Sequential runs (immediate bodies, :meth:`run`) are
        stamped at DTD level; the parallel/process/distributed backends
        receive the flag and attach their own traces.  The most recent trace
        is available as :attr:`last_trace`.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` accumulating
        task counters, per-kind latency histograms and memory gauges across
        every execution of this runtime.  Sequential runs record at DTD
        level (from the same stamps tracing uses); the backend runners
        receive the registry and record their own metrics (the distributed
        backend merges per-rank registry snapshots into it).
    """

    def __init__(
        self, execution: str = "immediate", *, trace: bool = False, metrics=None
    ) -> None:
        if execution not in ("immediate", "deferred", "symbolic"):
            raise ValueError(f"unknown execution mode {execution!r}")
        self.execution = execution
        self.trace = bool(trace)
        self.metrics = metrics
        self.graph = TaskGraph()
        self._next_tid = 0
        self._last_writer: Dict[int, int] = {}
        self._readers_since_write: Dict[int, List[int]] = {}
        self._handles: Dict[str, DataHandle] = {}
        self._executed: set[int] = set()
        self._failed: Optional[BaseException] = None
        #: Raw sequential span tuples (immediate bodies / run()), absolute stamps.
        self._span_log: List[tuple] = []
        #: Span-log prefix already folded into the metrics registry (so
        #: repeated run() calls never double-count a task).
        self._metrics_upto = 0
        #: Report of the most recent :meth:`run_distributed` call (or None).
        self.last_distributed_report = None
        #: Report of the most recent :meth:`run_parallel` call (or None).
        self.last_parallel_report = None
        #: Report of the most recent :meth:`run_process` call (or None).
        self.last_process_report = None
        #: Stats of the most recent :meth:`fuse` call (or None).
        self.last_fusion_stats = None
        #: Fusion contraction map of all :meth:`fuse` calls (original -> head tid).
        self.last_head_of: Dict[int, int] = {}
        #: Measured trace of the most recent execution (``trace=True`` only).
        self.last_trace = None

    # -- data management ------------------------------------------------------
    def register_handle(self, handle: DataHandle) -> DataHandle:
        """Register a handle so it can be retrieved by name later."""
        self._handles[handle.name] = handle
        return handle

    def new_handle(
        self,
        name: str,
        nbytes: int = 0,
        *,
        owner: Optional[int] = None,
        payload: Any = None,
        **meta: Any,
    ) -> DataHandle:
        """Create and register a new :class:`DataHandle`."""
        if name in self._handles:
            raise ValueError(f"handle {name!r} already registered")
        handle = DataHandle(name=name, nbytes=nbytes, owner=owner, payload=payload, meta=dict(meta))
        return self.register_handle(handle)

    def handle(self, name: str) -> DataHandle:
        """Look up a registered handle by name."""
        return self._handles[name]

    @property
    def handles(self) -> List[DataHandle]:
        return list(self._handles.values())

    # -- task insertion --------------------------------------------------------
    def insert_task(
        self,
        func: Optional[Callable[..., Any]],
        accesses: Sequence[TaskAccess | Tuple[DataHandle, AccessMode]],
        *,
        name: str = "",
        kind: str = "TASK",
        flops: float = 0.0,
        phase: int = 0,
        process: Optional[int] = None,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
    ) -> Task:
        """Insert a task, wiring its dependencies from the declared data accesses.

        Returns the created :class:`Task`.  In ``immediate`` mode the task body
        has already been executed when this returns.
        """
        acc = normalize_accesses(accesses)
        task = Task(
            tid=self._next_tid,
            name=name or f"task{self._next_tid}",
            kind=kind,
            func=None if self.execution == "symbolic" else func,
            args=args,
            kwargs=kwargs or {},
            accesses=acc,
            flops=float(flops),
            phase=phase,
            process=process,
        )
        self._next_tid += 1
        self.graph.add_task(task)

        for access in acc:
            hid = access.handle.hid
            if access.mode.reads:
                writer = self._last_writer.get(hid)
                if writer is not None:
                    self.graph.add_edge(writer, task.tid, access.handle)
                self._readers_since_write.setdefault(hid, []).append(task.tid)
            if access.mode.writes:
                writer = self._last_writer.get(hid)
                if writer is not None:
                    self.graph.add_edge(writer, task.tid, access.handle)
                for reader in self._readers_since_write.get(hid, []):
                    self.graph.add_edge(reader, task.tid, access.handle)
                self._last_writer[hid] = task.tid
                self._readers_since_write[hid] = []

        if self.execution == "immediate" and task.func is not None:
            if self.trace or self.metrics is not None:
                queue_t = time.perf_counter()
                task.run()
                self._span_log.append(
                    (task.tid, task.name, task.kind, task.phase, 0, 0,
                     queue_t, queue_t, time.perf_counter())
                )
            else:
                task.run()
            self._executed.add(task.tid)
        return task

    # -- graph coarsening ------------------------------------------------------
    def fuse(self, *, slots: int = 8):
        """Coarsen the recorded graph in place (chain fusion + batching).

        Collapses linear same-phase, same-owner task chains and batches
        independent same-kind tasks through
        :func:`repro.runtime.fusion.coarsen_graph`, replacing :attr:`graph`
        with the coarse graph.  Surviving tasks keep their original ids and
        the dependency-discovery state is remapped onto them, so more
        ``insert_task`` calls may follow (they will depend on the fused
        tasks exactly as they would have on the absorbed originals).

        Only valid before any task body has run on a deferred (or symbolic)
        graph.  Returns the :class:`~repro.runtime.fusion.FusionStats`, also
        stored as :attr:`last_fusion_stats`.
        """
        from repro.runtime.fusion import coarsen_graph

        if self.execution == "immediate":
            raise RuntimeError(
                "cannot fuse an immediate-mode graph; its task bodies already ran"
            )
        if self._failed is not None:
            raise RuntimeError(
                "runtime has a failed execution; rebuild the task graph"
            ) from self._failed
        if self._executed:
            raise RuntimeError(
                f"{len(self._executed)} task(s) already executed; "
                "fusion requires a fully deferred graph"
            )
        coarse, head_of, stats = coarsen_graph(self.graph, slots=slots)
        self.graph = coarse
        # Remap the discovery state so later insert_task calls wire their
        # dependencies to the fused heads instead of absorbed task ids.
        self._last_writer = {
            hid: head_of.get(tid, tid) for hid, tid in self._last_writer.items()
        }
        self._readers_since_write = {
            hid: sorted({head_of.get(tid, tid) for tid in readers})
            for hid, readers in self._readers_since_write.items()
        }
        self.last_fusion_stats = stats
        # Compose onto any earlier fusion rounds, so last_head_of always maps
        # original ids onto the heads that will actually execute (and show up
        # as spans in a trace).
        self.last_head_of = {
            tid: head_of.get(head, head) for tid, head in self.last_head_of.items()
        }
        for tid, head in head_of.items():
            self.last_head_of.setdefault(tid, head)
        return stats

    # -- execution --------------------------------------------------------------
    def run(self) -> None:
        """Execute all not-yet-executed task bodies in insertion (topological) order."""
        if self.execution == "symbolic":
            return
        if self._failed is not None:
            # A failed task may have left its outputs half-written; running
            # its dependents would propagate garbage silently.
            raise RuntimeError(
                "runtime has a failed execution; rebuild the task graph"
            ) from self._failed
        for task in self.graph.tasks:
            if task.tid not in self._executed and task.func is not None:
                if self.trace or self.metrics is not None:
                    queue_t = time.perf_counter()
                    task.run()
                    self._span_log.append(
                        (task.tid, task.name, task.kind, task.phase, 0, 0,
                         queue_t, queue_t, time.perf_counter())
                    )
                else:
                    task.run()
                self._executed.add(task.tid)
        if self.trace and self._span_log:
            self.assemble_trace()
        if self.metrics is not None:
            from repro.obs.runtime_metrics import record_sequential_run

            record_sequential_run(
                self.metrics, self.execution, self.graph,
                self._span_log[self._metrics_upto:],
            )
            self._metrics_upto = len(self._span_log)

    def assemble_trace(self):
        """Build the :class:`~repro.runtime.tracing.ExecutionTrace` of the
        sequential (immediate / deferred ``run()``) execution so far.

        The timeline origin is the first recorded span's stamp and the wall
        time spans to the last body's end, so an immediate-mode trace covers
        the record-and-execute window including any driver code between
        ``insert_task`` calls (which shows up as idle).  Parallel backends
        attach their own traces to their reports instead; see
        :attr:`last_trace`.
        """
        from repro.runtime.tracing import ExecutionTrace, build_spans

        if not self.trace:
            raise RuntimeError("runtime was created with trace=False")
        log = self._span_log
        t0 = min(item[6] for item in log) if log else 0.0
        wall = (max(item[8] for item in log) - t0) if log else 0.0
        tr = ExecutionTrace(
            backend=self.execution,
            n_workers=1,
            wall_time=wall,
        )
        tr.spans = build_spans(log, t0)
        tr.head_of = dict(self.last_head_of)
        self.last_trace = tr
        return tr

    def run_parallel(self, *, n_workers: int = 4, timeout: Optional[float] = None):
        """Execute the recorded graph out-of-order on a thread pool.

        The parallel counterpart of :meth:`run`: dispatches the task bodies
        through :func:`repro.runtime.executor.execute_graph`, respecting the
        inferred dependencies but otherwise running independent tasks
        concurrently.  Only valid on a fully deferred graph (no task body may
        have run yet); use a ``deferred`` runtime and call this once after all
        ``insert_task`` calls.

        Returns the :class:`~repro.runtime.executor.ExecutionReport`.
        """
        from repro.runtime.executor import execute_graph

        if self.execution == "symbolic":
            raise RuntimeError("cannot run a symbolic graph; task bodies were discarded")
        if self._failed is not None:
            raise RuntimeError(
                "runtime has a failed execution; rebuild the task graph"
            ) from self._failed
        if self._executed:
            # execute_graph re-dispatches the whole graph, so a partially
            # executed one (e.g. after a clean timeout) must finish through
            # run(), which skips completed bodies.
            raise RuntimeError(
                f"{len(self._executed)} task(s) already executed; "
                "use run() to finish the remaining tasks sequentially"
            )
        try:
            report = execute_graph(
                self.graph, n_workers=n_workers, timeout=timeout,
                trace=self.trace, metrics=self.metrics,
            )
        except BaseException as exc:
            partial = getattr(exc, "execution_report", None)
            if partial is not None:
                self._executed.update(partial.executed)
                self._adopt_trace(partial)
            # A failed task body may have left shared state half-written, so
            # poison the runtime: run()/run_parallel() must not "resume".  A
            # pure timeout is different -- every started task ran to
            # completion before the workers were joined, so finishing the
            # remaining tasks later (e.g. via run()) is safe.
            timed_out_cleanly = partial is not None and partial.timed_out and not partial.errors
            if partial is not None:
                self.last_parallel_report = partial
            if not timed_out_cleanly:
                self._failed = exc
            raise
        self._executed.update(report.executed)
        self.last_parallel_report = report
        self._adopt_trace(report)
        return report

    def _adopt_trace(self, report) -> None:
        """Attach the fusion map to a backend trace and remember it."""
        trace = getattr(report, "trace", None)
        if trace is not None:
            if self.last_head_of:
                trace.head_of = dict(self.last_head_of)
            self.last_trace = trace

    def run_distributed(
        self,
        *,
        nodes: int = 2,
        strategy=None,
        collect=None,
        timeout: Optional[float] = None,
        data_plane: Optional[str] = None,
    ):
        """Execute the recorded graph across ``nodes`` forked worker processes.

        The distributed counterpart of :meth:`run_parallel`: each worker
        process inherits the graph (and all pre-execution numerical state) via
        ``fork``, runs only the tasks placed on it by owner-computes over the
        handle owners (optionally reassigned through ``strategy``), and ships
        written handle values to remote consumers as explicit, accounted
        messages.  ``collect`` is the per-worker result-gathering callback and
        ``data_plane`` selects the wire representation (``"shm"`` zero-copy
        shared-memory segments or ``"pickle"`` full payloads -- see
        :func:`repro.runtime.distributed.execute_graph_distributed`).

        Only valid on a fully deferred graph.  Any failure -- a remote task
        error or a timeout -- poisons the runtime: the partially computed
        state lives in terminated worker processes and cannot be resumed.

        Returns the :class:`~repro.runtime.distributed.DistributedReport`,
        also stored as :attr:`last_distributed_report`.
        """
        from repro.runtime.distributed import execute_graph_distributed

        if self.execution == "symbolic":
            raise RuntimeError("cannot run a symbolic graph; task bodies were discarded")
        if self._failed is not None:
            raise RuntimeError(
                "runtime has a failed execution; rebuild the task graph"
            ) from self._failed
        if self._executed:
            raise RuntimeError(
                f"{len(self._executed)} task(s) already executed; "
                "the distributed backend requires a fully deferred graph"
            )
        try:
            report = execute_graph_distributed(
                self.graph, nodes=nodes, strategy=strategy, collect=collect,
                timeout=timeout, trace=self.trace, metrics=self.metrics,
                data_plane=data_plane,
            )
        except BaseException as exc:
            partial = getattr(exc, "execution_report", None)
            if partial is not None:
                self._executed.update(partial.executed)
                self.last_distributed_report = partial
                self._adopt_trace(partial)
            self._failed = exc
            raise
        self._executed.update(report.executed)
        self.last_distributed_report = report
        self._adopt_trace(report)
        return report

    def run_process(
        self,
        *,
        n_workers: int = 4,
        collect=None,
        timeout: Optional[float] = None,
    ):
        """Execute the recorded graph on a pool of forked worker processes.

        The GIL-free counterpart of :meth:`run_parallel`: task bodies run in
        ``fork``-ed worker processes that inherit the graph and all
        pre-execution numerical state; values written through *bound* handles
        are shipped back to the parent after each task and injected into the
        consumers' processes, so the numerical dataflow is exact.  Results
        living outside handles are gathered per worker by ``collect`` (see
        :func:`repro.runtime.executor.execute_graph_processes`).

        Only valid on a fully deferred graph.  Like the distributed backend,
        any failure poisons the runtime: partially computed state lives in
        pool worker processes and cannot be resumed.

        Returns the :class:`~repro.runtime.executor.ExecutionReport`
        (fragments in ``report.fragments``), also stored as
        :attr:`last_process_report`.
        """
        from repro.runtime.executor import execute_graph_processes

        if self.execution == "symbolic":
            raise RuntimeError("cannot run a symbolic graph; task bodies were discarded")
        if self._failed is not None:
            raise RuntimeError(
                "runtime has a failed execution; rebuild the task graph"
            ) from self._failed
        if self._executed:
            raise RuntimeError(
                f"{len(self._executed)} task(s) already executed; "
                "the process backend requires a fully deferred graph"
            )
        try:
            report = execute_graph_processes(
                self.graph, n_workers=n_workers, collect=collect,
                timeout=timeout, trace=self.trace, metrics=self.metrics,
            )
        except BaseException as exc:
            partial = getattr(exc, "execution_report", None)
            if partial is not None:
                self._executed.update(partial.executed)
                self.last_process_report = partial
                self._adopt_trace(partial)
            self._failed = exc
            raise
        self._executed.update(report.executed)
        self.last_process_report = report
        self._adopt_trace(report)
        return report

    # -- inspection ---------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return self.graph.num_tasks

    def validate(self) -> None:
        """Sanity checks on the recorded graph (acyclic, insertion-ordered edges)."""
        self.graph.validate_insertion_order()
        if not self.graph.is_acyclic():
            raise ValueError("task graph has a cycle")

    def __repr__(self) -> str:
        return f"DTDRuntime(execution={self.execution!r}, tasks={self.num_tasks})"


def resolve_execution(
    runtime: Optional[DTDRuntime], execution: Optional[str]
) -> Tuple[DTDRuntime, str]:
    """Resolve the ``runtime`` / ``execution`` arguments of a DTD factorization driver.

    Returns ``(runtime, mode)`` where ``mode`` tells the caller how to execute
    the recorded graph: ``"sequential"`` (:meth:`DTDRuntime.run`),
    ``"parallel"`` (:meth:`DTDRuntime.run_parallel`) or ``"distributed"``
    (:meth:`DTDRuntime.run_distributed`).  ``execution`` must be one of
    ``"immediate"``, ``"deferred"``, ``"parallel"`` or ``"distributed"`` and
    is mutually exclusive with passing an existing ``runtime``.
    """
    if execution is not None:
        if runtime is not None:
            raise ValueError("pass either `runtime` or `execution`, not both")
        if execution in ("parallel", "process", "distributed"):
            return DTDRuntime(execution="deferred"), execution
        if execution in ("immediate", "deferred"):
            return DTDRuntime(execution=execution), "sequential"
        raise ValueError(
            f"unknown execution mode {execution!r}; "
            "expected 'immediate', 'deferred', 'parallel', 'process' or "
            "'distributed'"
        )
    return (runtime if runtime is not None else DTDRuntime(execution="immediate")), "sequential"
