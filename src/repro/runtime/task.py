"""Tasks and data-access declarations (the nodes of the DAG in Fig. 6)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.runtime.data import DataHandle

__all__ = ["AccessMode", "TaskAccess", "Task"]


class AccessMode(enum.Enum):
    """How a task accesses a data handle (paper Fig. 6: R in green, RW in red)."""

    READ = "R"
    WRITE = "W"
    RW = "RW"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.READ, AccessMode.RW)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.WRITE, AccessMode.RW)


@dataclass(frozen=True)
class TaskAccess:
    """One (handle, access-mode) pair of a task."""

    handle: DataHandle
    mode: AccessMode


@dataclass(eq=False)
class Task:
    """A node of the task DAG.

    Attributes
    ----------
    tid:
        Unique task id (insertion order within its runtime).
    name:
        Human-readable name, e.g. ``"POTRF(2,2)"``.
    kind:
        Computational kernel class (``POTRF``, ``TRSM``, ``SYRK``, ``GEMM``,
        ``DIAG_PRODUCT``, ``PARTIAL_FACTOR``, ``MERGE``, ...), used by the
        performance model and the breakdown reports.
    func:
        Optional callable executing the task body.  ``None`` for symbolic
        (simulation-only) graphs.
    args, kwargs:
        Arguments passed to ``func``.
    accesses:
        Data accesses; the first WRITE access determines the executing process
        under owner-computes placement.
    flops:
        Floating-point operations of the task body (performance model input).
    phase:
        Phase label used by the fork-join scheduler to place barriers -- for
        the HSS-ULV this is the HSS level, for tile Cholesky the panel index.
    process:
        Explicitly pinned process rank; ``None`` means owner-computes.
    """

    tid: int
    name: str
    kind: str
    func: Optional[Callable[..., Any]] = None
    args: Tuple[Any, ...] = ()
    kwargs: dict = field(default_factory=dict)
    accesses: List[TaskAccess] = field(default_factory=list)
    flops: float = 0.0
    phase: int = 0
    process: Optional[int] = None

    def __hash__(self) -> int:
        return hash(self.tid)

    # -- dependency helpers -------------------------------------------------
    @property
    def read_handles(self) -> List[DataHandle]:
        return [a.handle for a in self.accesses if a.mode.reads]

    @property
    def write_handles(self) -> List[DataHandle]:
        return [a.handle for a in self.accesses if a.mode.writes]

    def primary_write(self) -> Optional[DataHandle]:
        """The first written handle (owner-computes placement key)."""
        writes = self.write_handles
        return writes[0] if writes else None

    def owner_process(self) -> Optional[int]:
        """The process this task runs on: pinned process or owner of the primary write."""
        if self.process is not None:
            return self.process
        primary = self.primary_write()
        if primary is not None and primary.owner is not None:
            return primary.owner
        for access in self.accesses:
            if access.handle.owner is not None:
                return access.handle.owner
        return None

    def run(self) -> Any:
        """Execute the task body (no-op for symbolic tasks)."""
        if self.func is None:
            return None
        return self.func(*self.args, **self.kwargs)

    def __repr__(self) -> str:
        return f"Task({self.tid}, {self.name!r}, kind={self.kind}, flops={self.flops:.3g})"


def normalize_accesses(
    accesses: Sequence[TaskAccess | Tuple[DataHandle, AccessMode]]
) -> List[TaskAccess]:
    """Accept either :class:`TaskAccess` objects or ``(handle, mode)`` tuples."""
    out: List[TaskAccess] = []
    for item in accesses:
        if isinstance(item, TaskAccess):
            out.append(item)
        else:
            handle, mode = item
            out.append(TaskAccess(handle=handle, mode=mode))
    return out
