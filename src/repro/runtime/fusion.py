"""Record-time task fusion and batching (graph coarsening).

The per-task bodies of the ULV graphs are tiny numpy calls, so on small
block sizes the scheduler dispatch cost (heap pops, condition-variable
wakeups, cross-process submissions) dominates the useful work -- the exact
runtime-overhead regime the paper measures in Sec. 5.3.3.  This module
coarsens a recorded :class:`~repro.runtime.dag.TaskGraph` so every scheduled
task amortizes its dispatch cost, without changing a single bit of the
numerical result:

* **Chain fusion** collapses linear task chains -- a task whose only
  successor has it as its only predecessor, within the same phase and on the
  same owner process (per-leaf ``DIAG_PRODUCT -> PARTIAL_FACTOR`` pairs,
  forward/backward solve sequences) -- into one task that runs the member
  bodies back to back.
* **Batching** groups independent same-kind, same-phase, same-owner tasks
  (leaf assembly/compression blocks, BLR2 coupling tiles, RHS panels) into
  stacked tasks, splitting each group over a bounded number of ``slots`` so
  wide phases keep enough concurrency for the pool.

Both passes contract groups of tasks into their *head* (the earliest member
by insertion order).  A task may only join a group when every predecessor
outside the group was inserted before the group's head; every contracted
edge therefore still runs from a lower to a higher task id, so the coarse
graph keeps the DTD invariant that insertion order is a topological order --
``validate_insertion_order`` holds with no tid renumbering, and schedulers,
transfer planning and the comm ledger work on the coarse graph unchanged.

Member bodies execute in insertion order inside the fused body, which is
exactly the order the sequential reference uses, so fusion preserves
bit-identity on every backend.  Access lists are merged per handle: a handle
read by a member before any member wrote it stays an external read, a handle
written by any member stays a write -- so the derived dependencies (and the
handles carried on cross-task edges) remain exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.dag import TaskGraph
from repro.runtime.task import AccessMode, Task, TaskAccess

__all__ = ["FusionStats", "coarsen_graph", "fuse_chains", "batch_tasks"]


@dataclass(frozen=True)
class FusionStats:
    """What one :func:`coarsen_graph` call did to the graph."""

    tasks_before: int
    tasks_after: int
    chains_fused: int
    batches_fused: int

    @property
    def tasks_removed(self) -> int:
        return self.tasks_before - self.tasks_after


def _fused_body(members: Sequence[Task]) -> Callable[[], None]:
    """One callable running the member bodies back to back, in insertion order."""
    bodies = tuple((t.func, t.args, t.kwargs) for t in members)

    def run_fused() -> None:
        for func, args, kwargs in bodies:
            if func is not None:
                func(*args, **kwargs)

    return run_fused


def _merge_accesses(members: Sequence[Task]) -> List[TaskAccess]:
    """Merge member access lists into the access list of the fused task.

    Handles appear in first-occurrence order (the head's accesses first, so
    placement-relevant accesses keep their position).  A handle is an
    external read if any member reads it before a member wrote it; it is a
    write if any member writes it.  Purely internal values (written then only
    read inside the group) collapse to a plain write.
    """
    order: List[int] = []
    by_hid: Dict[int, TaskAccess] = {}
    read_external: set = set()
    written: set = set()
    for task in members:
        for access in task.accesses:
            hid = access.handle.hid
            if hid not in by_hid:
                by_hid[hid] = access
                order.append(hid)
            if access.mode.reads and hid not in written:
                read_external.add(hid)
            if access.mode.writes:
                written.add(hid)
    merged: List[TaskAccess] = []
    for hid in order:
        if hid in written:
            mode = AccessMode.RW if hid in read_external else AccessMode.WRITE
        else:
            mode = AccessMode.READ
        merged.append(TaskAccess(handle=by_hid[hid].handle, mode=mode))
    return merged


def _fused_kind(members: Sequence[Task]) -> str:
    kinds: List[str] = []
    for t in members:
        if t.kind not in kinds:
            kinds.append(t.kind)
    return "+".join(kinds)


def _make_fused_task(members: Sequence[Task], kind: Optional[str] = None) -> Task:
    """Contract ``members`` (insertion-ordered) into one task at the head's tid."""
    head = members[0]
    if len(members) == 1:
        return head
    return Task(
        tid=head.tid,
        name=f"{head.name}+{len(members) - 1}",
        kind=kind if kind is not None else _fused_kind(members),
        func=_fused_body(members),
        accesses=_merge_accesses(members),
        flops=float(sum(t.flops for t in members)),
        phase=head.phase,
        # Pin the placement the head had under owner-computes so fusion never
        # moves work between processes (access merging may reorder writes).
        process=head.owner_process(),
    )


def _contract(
    graph: TaskGraph,
    groups: Sequence[Sequence[Task]],
    kinds: Optional[Sequence[Optional[str]]] = None,
) -> Tuple[TaskGraph, Dict[int, int]]:
    """Build the coarse graph: one task per group, edges contracted to heads.

    Returns ``(coarse_graph, head_of)`` where ``head_of`` maps every original
    task id to the id of the task it survives as.
    """
    head_of: Dict[int, int] = {}
    for group in groups:
        head = group[0]
        for member in group:
            head_of[member.tid] = head.tid
    coarse = TaskGraph()
    for i, group in enumerate(groups):
        kind = kinds[i] if kinds is not None else None
        coarse.add_task(_make_fused_task(group, kind=kind))
    for s, d in sorted(graph.edges):
        hs, hd = head_of[s], head_of[d]
        if hs == hd:
            continue
        handles = graph.edge_data.get((s, d), ())
        if handles:
            for handle in handles:
                coarse.add_edge(hs, hd, handle)
        else:
            coarse.add_edge(hs, hd)
    return coarse, head_of


def fuse_chains(graph: TaskGraph) -> Tuple[TaskGraph, Dict[int, int], int]:
    """Collapse linear same-phase, same-owner chains into single tasks.

    Returns ``(coarse_graph, head_of, chains_fused)``.
    """
    succ, pred = graph.adjacency()
    absorbed: set = set()
    groups: List[List[Task]] = []
    for task in graph.tasks:
        if task.tid in absorbed:
            continue
        chain = [task]
        tail = task
        while True:
            nxt = succ.get(tail.tid, [])
            if len(nxt) != 1:
                break
            candidate = graph.task(nxt[0])
            if (
                len(pred.get(candidate.tid, [])) != 1
                or candidate.phase != tail.phase
                or candidate.owner_process() != task.owner_process()
            ):
                break
            chain.append(candidate)
            absorbed.add(candidate.tid)
            tail = candidate
        groups.append(chain)
    chains = sum(1 for g in groups if len(g) > 1)
    if not chains:
        return graph, {t.tid: t.tid for t in graph.tasks}, 0
    coarse, head_of = _contract(graph, groups)
    return coarse, head_of, chains


def batch_tasks(graph: TaskGraph, *, slots: int = 8) -> Tuple[TaskGraph, Dict[int, int], int]:
    """Group independent same-kind, same-phase, same-owner tasks into batches.

    Tasks join the currently open group of their ``(kind, phase, owner)`` key
    when every predecessor outside the group precedes the group's head; each
    group is then split into at most ``slots`` contiguous chunks so a wide
    phase still feeds every pool worker.  Returns ``(coarse_graph, head_of,
    batches_fused)``.
    """
    _, pred = graph.adjacency()
    open_group: Dict[tuple, List[Task]] = {}
    open_members: Dict[tuple, set] = {}
    groups: List[List[Task]] = []

    for task in graph.tasks:
        key = (task.kind, task.phase, task.owner_process())
        group = open_group.get(key)
        if group is not None:
            members = open_members[key]
            head_tid = group[0].tid
            if all(p < head_tid or p in members for p in pred.get(task.tid, [])):
                group.append(task)
                members.add(task.tid)
                continue
        group = [task]
        open_group[key] = group
        open_members[key] = {task.tid}
        groups.append(group)

    # Split each group into at most `slots` contiguous chunks (insertion
    # order), so batching trades dispatch overhead without serializing a
    # whole phase onto one worker.
    slots = max(1, int(slots))
    chunks: List[List[Task]] = []
    kinds: List[Optional[str]] = []
    for group in groups:
        n_chunks = min(len(group), slots)
        size = -(-len(group) // n_chunks)  # ceil division
        for start in range(0, len(group), size):
            chunk = group[start:start + size]
            chunks.append(chunk)
            # Batches keep the member kind so task censuses and the
            # performance model's per-kind breakdowns stay recognizable.
            kinds.append(chunk[0].kind)
    chunks_with_kinds = sorted(zip(chunks, kinds), key=lambda ck: ck[0][0].tid)
    chunks = [c for c, _ in chunks_with_kinds]
    kinds = [k for _, k in chunks_with_kinds]
    batches = sum(1 for c in chunks if len(c) > 1)
    if not batches:
        return graph, {t.tid: t.tid for t in graph.tasks}, 0
    coarse, head_of = _contract(graph, chunks, kinds)
    return coarse, head_of, batches


def coarsen_graph(
    graph: TaskGraph, *, slots: int = 8
) -> Tuple[TaskGraph, Dict[int, int], FusionStats]:
    """Chain-fuse then batch ``graph``.

    Returns ``(coarse_graph, head_of, stats)`` where ``head_of`` maps every
    original task id to the id it survives as.  The result keeps original
    task ids for the surviving heads (insertion order remains a topological
    order), merges access lists exactly, and leaves placement untouched -- so
    it can be executed, transfer-planned and comm-verified by every backend
    exactly like the fine graph.
    """
    before = graph.num_tasks
    chained, chain_map, n_chains = fuse_chains(graph)
    batched, batch_map, n_batches = batch_tasks(chained, slots=slots)
    head_of = {tid: batch_map[head] for tid, head in chain_map.items()}
    stats = FusionStats(
        tasks_before=before,
        tasks_after=batched.num_tasks,
        chains_fused=n_chains,
        batches_fused=n_batches,
    )
    return batched, head_of, stats
