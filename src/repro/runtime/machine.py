"""Distributed machine model.

The paper runs on Fugaku: one A64FX CPU per node (48 cores, 4 NUMA domains,
32 GB HBM), Tofu-D interconnect.  We cannot run on Fugaku, so the benchmark
harness replays recorded task graphs on this parametric machine model with a
discrete-event simulator (:mod:`repro.runtime.simulator`).  The defaults below
are calibrated to A64FX-class per-core throughput on small dense blocks and
Tofu-class network latency/bandwidth; absolute times are approximate but the
relative behaviour of the three codes (HATRIX-DTD / STRUMPACK / LORAPO) is
determined by task flops, DAG shape, data distribution and scheduling policy,
which are modelled exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineConfig", "fugaku_like", "laptop_like"]


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the simulated distributed machine.

    Attributes
    ----------
    nodes:
        Number of nodes (MPI processes; the paper uses one process per node).
    cores_per_node:
        Worker threads per process executing tasks.
    flops_per_core:
        Effective double-precision flop rate of one core on the small dense
        blocks of this workload (well below peak; includes BLAS efficiency).
    network_latency:
        Point-to-point message latency in seconds.
    network_bandwidth:
        Point-to-point bandwidth in bytes/second.
    task_scheduling_overhead:
        Runtime-system cost per *executed* task (queueing, dependency release,
        memory management).
    dtd_discovery_overhead:
        DTD-specific cost per *inserted* task paid by **every** process: each
        process discovers the whole task graph, trims non-local tasks and
        converts the remote dependencies (Sec. 4.2).  This is what makes
        HATRIX-DTD's runtime overhead grow with the global task count
        (Fig. 10c).  The default is calibrated against the paper's measured
        per-worker overheads (their task granularity is finer than ours, so
        the per-task equivalent here is larger than PaRSEC's raw per-task
        insertion cost).
    collective_latency_factor:
        Multiplier on ``log2(nodes) * network_latency`` for collective
        operations (fork-join codes use collectives for data shuffles).
    barrier_latency:
        Cost of one bulk-synchronous barrier, multiplied by ``log2(nodes)``.
    forkjoin_phase_cost:
        Per-level, per-node cost of the bulk-synchronous redistribution
        (block-cyclic shuffles + barrier load imbalance) paid by fork-join
        codes; calibrated against STRUMPACK's measured MPI time growth
        (Fig. 10b).
    forkjoin_efficiency:
        Parallel efficiency of the distributed (ScaLAPACK-style) kernels that
        a fork-join code uses inside a single block operation: unlike the
        task-based codes, a fork-join code can spread one block operation over
        many processes, which is why STRUMPACK tolerates large leaf sizes
        better (Fig. 12).
    """

    nodes: int = 2
    cores_per_node: int = 48
    flops_per_core: float = 8.0e9
    network_latency: float = 2.0e-6
    network_bandwidth: float = 6.0e9
    task_scheduling_overhead: float = 8.0e-6
    dtd_discovery_overhead: float = 3.0e-4
    collective_latency_factor: float = 2.0
    barrier_latency: float = 5.0e-6
    forkjoin_phase_cost: float = 1.0e-3
    forkjoin_efficiency: float = 0.15

    @property
    def total_workers(self) -> int:
        """Total number of worker cores across all nodes."""
        return self.nodes * self.cores_per_node

    def task_time(self, flops: float) -> float:
        """Execution time of a task body with the given flop count."""
        return flops / self.flops_per_core

    def message_time(self, nbytes: float) -> float:
        """Point-to-point transfer time of ``nbytes`` bytes."""
        return self.network_latency + nbytes / self.network_bandwidth

    def collective_time(self, nbytes: float) -> float:
        """Cost of a collective moving ``nbytes`` bytes among all nodes."""
        import math

        hops = max(math.log2(max(self.nodes, 2)), 1.0)
        return self.collective_latency_factor * hops * self.network_latency + nbytes / self.network_bandwidth

    def barrier_time(self) -> float:
        """Cost of one global barrier."""
        import math

        hops = max(math.log2(max(self.nodes, 2)), 1.0)
        return self.barrier_latency * hops

    def with_nodes(self, nodes: int) -> "MachineConfig":
        """Copy of this configuration with a different node count."""
        return replace(self, nodes=nodes)


def fugaku_like(nodes: int = 2, *, cores_per_node: int = 48) -> MachineConfig:
    """A Fugaku-like machine: A64FX-class cores, Tofu-D-class network."""
    return MachineConfig(
        nodes=nodes,
        cores_per_node=cores_per_node,
        flops_per_core=8.0e9,
        network_latency=2.0e-6,
        network_bandwidth=6.0e9,
        task_scheduling_overhead=8.0e-6,
        dtd_discovery_overhead=3.0e-4,
        collective_latency_factor=2.0,
        barrier_latency=5.0e-6,
        forkjoin_phase_cost=1.0e-3,
        forkjoin_efficiency=0.15,
    )


def laptop_like(nodes: int = 1, *, cores_per_node: int = 8) -> MachineConfig:
    """A laptop-scale preset, convenient for quick examples and tests."""
    return MachineConfig(
        nodes=nodes,
        cores_per_node=cores_per_node,
        flops_per_core=2.0e10,
        network_latency=1.0e-6,
        network_bandwidth=1.2e10,
        task_scheduling_overhead=4.0e-6,
        dtd_discovery_overhead=1.0e-6,
    )
