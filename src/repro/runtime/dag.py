"""The task DAG: dependency edges, topological checks, critical path.

This is the graph representation of Fig. 6 in the paper: nodes are tasks,
edges are data dependencies (a task cannot start before all predecessors have
finished and their data has been delivered).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.runtime.data import DataHandle
from repro.runtime.task import Task

__all__ = ["TaskGraph"]


@dataclass
class TaskGraph:
    """A directed acyclic graph of :class:`Task` nodes.

    Attributes
    ----------
    tasks:
        Tasks in insertion order (a valid topological order by construction of
        the DTD runtime).
    edges:
        Set of ``(producer_tid, consumer_tid)`` pairs.
    edge_data:
        Mapping from an edge to the handles carried along it (used to compute
        communication volume).
    """

    tasks: List[Task] = field(default_factory=list)
    edges: Set[Tuple[int, int]] = field(default_factory=set)
    edge_data: Dict[Tuple[int, int], List[DataHandle]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_tid: Dict[int, Task] = {t.tid: t for t in self.tasks}

    # -- construction -------------------------------------------------------
    def add_task(self, task: Task) -> None:
        self.tasks.append(task)
        self._by_tid[task.tid] = task

    def add_edge(self, src: int, dst: int, handle: DataHandle | None = None) -> None:
        if src == dst:
            return
        self.edges.add((src, dst))
        if handle is not None:
            self.edge_data.setdefault((src, dst), [])
            if handle not in self.edge_data[(src, dst)]:
                self.edge_data[(src, dst)].append(handle)

    # -- queries ------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def task(self, tid: int) -> Task:
        return self._by_tid[tid]

    def predecessors(self, tid: int) -> List[int]:
        return [s for (s, d) in self.edges if d == tid]

    def successors(self, tid: int) -> List[int]:
        return [d for (s, d) in self.edges if s == tid]

    def adjacency(self) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
        """Return ``(successors, predecessors)`` adjacency maps (rebuilt on each call)."""
        succ: Dict[int, List[int]] = defaultdict(list)
        pred: Dict[int, List[int]] = defaultdict(list)
        for s, d in self.edges:
            succ[s].append(d)
            pred[d].append(s)
        return succ, pred

    def _drained_count(self) -> int:
        """Number of tasks reachable by Kahn's algorithm (== num_tasks iff acyclic)."""
        succ, pred = self.adjacency()
        indeg = {t.tid: len(pred.get(t.tid, [])) for t in self.tasks}
        queue = deque([tid for tid, d in indeg.items() if d == 0])
        seen = 0
        while queue:
            tid = queue.popleft()
            seen += 1
            for nxt in succ.get(tid, []):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        return seen

    def is_acyclic(self) -> bool:
        """True if the graph has no cycles (Kahn's algorithm)."""
        return self._drained_count() == len(self.tasks)

    def topological_order(self) -> List[Task]:
        """Tasks in a topological order (insertion order is one by construction)."""
        if not self.is_acyclic():
            raise ValueError("task graph has a cycle")
        return list(self.tasks)

    def validate_insertion_order(self) -> None:
        """Check that every edge goes from an earlier to a later inserted task."""
        for s, d in self.edges:
            if s >= d:
                raise ValueError(f"edge ({s} -> {d}) violates insertion order")

    def validate_drainable(self) -> None:
        """Fail fast on graphs no scheduler could drain.

        Raises :class:`ValueError` when an edge references a task id that is
        not in the graph, or when the graph has a cycle -- either would leave
        an executor's workers blocked forever.  Shared by the thread-pool and
        the distributed executors.
        """
        known = {t.tid for t in self.tasks}
        for s, d in self.edges:
            if s not in known or d not in known:
                raise ValueError(f"edge ({s} -> {d}) references an unknown task")
        drained = self._drained_count()
        if drained != self.num_tasks:
            raise ValueError(
                f"task graph has a cycle ({self.num_tasks - drained} task(s) unreachable)"
            )

    # -- metrics ------------------------------------------------------------
    def total_flops(self) -> float:
        return float(sum(t.flops for t in self.tasks))

    def flops_by_kind(self) -> Dict[str, float]:
        out: Dict[str, float] = defaultdict(float)
        for t in self.tasks:
            out[t.kind] += t.flops
        return dict(out)

    def tasks_by_phase(self) -> Dict[int, List[Task]]:
        out: Dict[int, List[Task]] = defaultdict(list)
        for t in self.tasks:
            out[t.phase].append(t)
        return dict(out)

    def critical_path_flops(self) -> float:
        """Longest path through the DAG weighted by task flops.

        This is the inherent sequential bottleneck: no schedule on any number
        of workers can run faster than the critical path.
        """
        succ, pred = self.adjacency()
        longest: Dict[int, float] = {}
        for task in self.tasks:  # insertion order == topological order
            best_pred = max((longest.get(p, 0.0) for p in pred.get(task.tid, [])), default=0.0)
            longest[task.tid] = best_pred + task.flops
        return max(longest.values(), default=0.0)

    def critical_path_priorities(
        self, succ: Dict[int, List[int]] | None = None
    ) -> Dict[int, float]:
        """Per-task scheduling priority: flops-weighted distance to the sink.

        ``priority[tid]`` is the length of the longest path from ``tid`` to any
        sink of the DAG, weighted by task flops (plus one unit per task so that
        zero-flop tasks such as MERGE still accumulate depth).  A list
        scheduler that always picks the highest-priority ready task runs the
        critical path first, which minimises end-of-graph starvation -- this is
        the classic HLF/CP list-scheduling heuristic.

        ``succ`` may be a precomputed successors map (from :meth:`adjacency`)
        to avoid rebuilding it.
        """
        if succ is None:
            succ, _ = self.adjacency()
        priority: Dict[int, float] = {}
        # Reverse insertion order is reverse topological for runtime-built
        # graphs; .get() keeps hand-built graphs with out-of-order edges from
        # crashing (their priorities are then merely approximate).
        for task in reversed(self.tasks):
            best_succ = max((priority.get(s, 0.0) for s in succ.get(task.tid, [])), default=0.0)
            priority[task.tid] = best_succ + task.flops + 1.0
        return priority

    def communication_bytes(self, same_process_free: bool = True) -> float:
        """Total bytes moved along edges whose endpoints live on different processes."""
        total = 0.0
        for (s, d), handles in self.edge_data.items():
            src_proc = self.task(s).owner_process()
            dst_proc = self.task(d).owner_process()
            if same_process_free and src_proc == dst_proc:
                continue
            total += float(sum(h.nbytes for h in handles))
        return total

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (node attributes: kind, flops, phase)."""
        import networkx as nx

        g = nx.DiGraph()
        for t in self.tasks:
            g.add_node(t.tid, name=t.name, kind=t.kind, flops=t.flops, phase=t.phase)
        for s, d in self.edges:
            g.add_edge(s, d)
        return g

    def __repr__(self) -> str:
        return f"TaskGraph(tasks={self.num_tasks}, edges={self.num_edges}, flops={self.total_flops():.3g})"
