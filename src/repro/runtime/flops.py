"""Floating-point operation counts of the dense kernels used by the task bodies.

These standard counts (LAPACK working notes conventions) drive the performance
model of the distributed-machine simulator.
"""

from __future__ import annotations

__all__ = [
    "flops_potrf",
    "flops_trsm",
    "flops_gemm",
    "flops_syrk",
    "flops_qr",
    "flops_svd",
    "flops_diag_product",
    "flops_partial_factor",
    "flops_solve_forward",
    "flops_solve_root",
    "flops_solve_backward",
]


def flops_potrf(n: int) -> float:
    """Cholesky factorization of an ``n x n`` SPD matrix."""
    return n**3 / 3.0 + n**2 / 2.0


def flops_trsm(m: int, n: int) -> float:
    """Triangular solve with an ``m x m`` triangle and ``n`` right-hand sides."""
    return float(m * m * n)


def flops_gemm(m: int, n: int, k: int) -> float:
    """General matrix multiply ``(m x k) @ (k x n)``."""
    return 2.0 * m * n * k


def flops_syrk(n: int, k: int) -> float:
    """Symmetric rank-k update ``C -= A A^T`` with ``A`` of shape ``(n, k)``."""
    return float(n * n * k)


def flops_qr(m: int, n: int) -> float:
    """Householder QR of an ``m x n`` matrix (m >= n)."""
    return 2.0 * m * n * n - 2.0 * n**3 / 3.0


def flops_svd(m: int, n: int) -> float:
    """Golub-Kahan SVD of an ``m x n`` matrix (rough standard count)."""
    small, large = (m, n) if m <= n else (n, m)
    return 4.0 * large * small**2 + 8.0 * small**3


def flops_diag_product(n: int) -> float:
    """The ULV diagonal product ``U^T A U`` for an ``n x n`` block (two GEMMs)."""
    return 2.0 * flops_gemm(n, n, n)


def flops_partial_factor(n: int, rank: int) -> float:
    """Partial Cholesky of an ``n x n`` block leaving ``rank`` skeleton rows."""
    nr = max(n - rank, 0)
    return flops_potrf(nr) + flops_trsm(nr, rank) + flops_syrk(rank, nr)


def flops_solve_forward(n: int, rank: int, k: int) -> float:
    """Forward elimination of one ULV block for ``k`` right-hand sides (Eq. 17).

    Rotate (``U^T b``), solve the redundant triangle, update the skeleton part.
    """
    nr = max(n - rank, 0)
    return flops_gemm(n, k, n) + flops_trsm(nr, k) + flops_gemm(rank, k, nr)


def flops_solve_root(n: int, k: int) -> float:
    """Root dense solve: two triangular solves against the final Cholesky factor."""
    return 2.0 * flops_trsm(n, k)


def flops_solve_backward(n: int, rank: int, k: int) -> float:
    """Back-substitution of one ULV block for ``k`` right-hand sides (Eq. 17).

    Skeleton update, redundant triangular solve, rotate back (``U y``).
    """
    nr = max(n - rank, 0)
    return flops_gemm(nr, k, rank) + flops_trsm(nr, k) + flops_gemm(n, k, n)
