"""Shared-memory parallel execution of a recorded task graph.

This is the "real execution" counterpart of the simulator: a thread pool
executes the task bodies respecting the DAG dependencies.  NumPy/BLAS releases
the GIL inside the dense kernels, so genuinely concurrent execution of
independent tasks is possible.  Used by examples and tests to demonstrate that
the task-based factorization produces the same numbers as the sequential
reference regardless of execution order.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.runtime.dag import TaskGraph

__all__ = ["execute_graph", "ExecutionReport"]


class ExecutionReport:
    """Summary of a parallel graph execution."""

    def __init__(self, num_tasks: int, num_workers: int) -> None:
        self.num_tasks = num_tasks
        self.num_workers = num_workers
        self.executed: List[int] = []
        self.errors: Dict[int, BaseException] = {}

    @property
    def ok(self) -> bool:
        return not self.errors and len(self.executed) == self.num_tasks

    def __repr__(self) -> str:
        return (
            f"ExecutionReport(tasks={self.num_tasks}, workers={self.num_workers}, "
            f"executed={len(self.executed)}, errors={len(self.errors)})"
        )


def execute_graph(
    graph: TaskGraph, *, n_workers: int = 4, timeout: Optional[float] = None
) -> ExecutionReport:
    """Execute all task bodies of ``graph`` with ``n_workers`` threads.

    A task is submitted to the pool as soon as all of its predecessors have
    completed.  Tasks with ``func is None`` (symbolic tasks) are treated as
    instantaneous no-ops.

    Returns
    -------
    ExecutionReport
        ``report.ok`` is True when every task ran without raising.
    """
    succ, pred = graph.adjacency()
    remaining = {t.tid: len(pred.get(t.tid, [])) for t in graph.tasks}
    report = ExecutionReport(num_tasks=graph.num_tasks, num_workers=n_workers)
    if graph.num_tasks == 0:
        return report

    lock = threading.Lock()
    done_event = threading.Event()
    inflight = {"count": 0}

    ready: deque[int] = deque(tid for tid, cnt in remaining.items() if cnt == 0)

    def on_finish(tid: int) -> None:
        newly_ready: List[int] = []
        with lock:
            report.executed.append(tid)
            inflight["count"] -= 1
            for nxt in succ.get(tid, []):
                remaining[nxt] -= 1
                if remaining[nxt] == 0:
                    newly_ready.append(nxt)
            for nxt in newly_ready:
                ready.append(nxt)
            if not ready and inflight["count"] == 0:
                done_event.set()
            if report.errors:
                done_event.set()

    def run_task(tid: int) -> None:
        task = graph.task(tid)
        try:
            task.run()
        except BaseException as exc:  # propagate through the report
            with lock:
                report.errors[tid] = exc
        finally:
            on_finish(tid)

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        while True:
            with lock:
                to_submit = []
                while ready:
                    tid = ready.popleft()
                    inflight["count"] += 1
                    to_submit.append(tid)
            for tid in to_submit:
                pool.submit(run_task, tid)
            if done_event.wait(timeout=0.01):
                with lock:
                    if (not ready and inflight["count"] == 0) or report.errors:
                        break
            with lock:
                if len(report.executed) == graph.num_tasks:
                    break

    if report.errors:
        first_tid = next(iter(report.errors))
        raise report.errors[first_tid]
    return report
