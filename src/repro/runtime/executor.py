"""Shared-memory parallel execution of a recorded task graph.

This is the "real execution" counterpart of the simulator: a pool of worker
threads executes the task bodies respecting the DAG dependencies.  NumPy/BLAS
releases the GIL inside the dense kernels, so genuinely concurrent execution
of independent tasks is possible.  Used by the ``"parallel"`` execution mode
of the DTD factorizations (:func:`repro.core.hss_ulv_dtd.hss_ulv_factorize_dtd`
and :func:`repro.core.blr2_ulv_dtd.blr2_ulv_factorize_dtd`) and by examples,
benchmarks and tests to demonstrate that the task-based factorization produces
the same numbers as the sequential reference regardless of execution order.

Scheduling is entirely event-driven (no polling): workers sleep on a condition
variable and are woken exactly when a task becomes ready, an error occurs or
the graph is drained.  Ready tasks are dispatched from a priority queue seeded
with the flops-weighted critical-path depth of each task
(:meth:`repro.runtime.dag.TaskGraph.critical_path_priorities`), i.e. the
longest chain of work that still hangs off a task -- the classic critical-path
list-scheduling heuristic.

Error handling is deterministic: the first task body that raises stops all
dispatch; tasks that have not started yet are recorded in
``ExecutionReport.cancelled`` and are guaranteed never to run, while tasks
already in flight on other workers are allowed to finish (threads cannot be
interrupted mid-kernel).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.runtime.dag import TaskGraph

__all__ = ["execute_graph", "execute_graph_processes", "ExecutionReport"]


class ExecutionReport:
    """Summary of a parallel graph execution.

    Attributes
    ----------
    num_workers:
        Workers actually spawned: ``max(1, min(requested, num_tasks))`` (0
        for an empty graph) -- the executor never starts more workers than
        there are tasks.
    requested_workers:
        The ``n_workers`` the caller asked for.
    executed:
        Task ids that completed successfully, in completion order.
    errors:
        ``tid -> exception`` for every task body that raised.
    cancelled:
        Task ids that were never started because an earlier task failed (or
        the execution timed out).  Disjoint from ``executed`` and ``errors``.
    timed_out:
        True when the overall ``timeout`` expired before the graph drained.
    wall_time:
        Wall-clock seconds spent inside :func:`execute_graph`.
    fragments:
        Per-worker result fragments (process-pool executions only).
    trace:
        Measured :class:`~repro.runtime.tracing.ExecutionTrace` when the
        execution ran with ``trace=True`` (None otherwise).
    memory:
        :class:`~repro.obs.memory.MemoryStats` (peak RSS + handle-table
        logical/measured bytes) when the execution ran with a metrics
        registry (None otherwise).
    """

    def __init__(
        self,
        num_tasks: int,
        num_workers: int,
        requested_workers: Optional[int] = None,
    ) -> None:
        self.num_tasks = num_tasks
        self.num_workers = num_workers
        self.requested_workers = (
            requested_workers if requested_workers is not None else num_workers
        )
        self.executed: List[int] = []
        self.errors: Dict[int, BaseException] = {}
        self.cancelled: List[int] = []
        self.timed_out: bool = False
        self.wall_time: float = 0.0
        self.fragments: List = []
        self.trace = None
        self.memory = None

    @property
    def ok(self) -> bool:
        return (
            not self.errors
            and not self.cancelled
            and not self.timed_out
            and len(self.executed) == self.num_tasks
        )

    def __repr__(self) -> str:
        return (
            f"ExecutionReport(tasks={self.num_tasks}, workers={self.num_workers}, "
            f"executed={len(self.executed)}, errors={len(self.errors)}, "
            f"cancelled={len(self.cancelled)}, timed_out={self.timed_out}, "
            f"wall_time={self.wall_time:.3g}s)"
        )


def execute_graph(
    graph: TaskGraph,
    *,
    n_workers: int = 4,
    timeout: Optional[float] = None,
    priorities: Optional[Mapping[int, float]] = None,
    raise_on_error: bool = True,
    trace: bool = False,
    metrics=None,
) -> ExecutionReport:
    """Execute all task bodies of ``graph`` with ``n_workers`` threads.

    A task becomes *ready* when all of its predecessors have completed; ready
    tasks are dispatched highest-priority-first.  Tasks with ``func is None``
    (symbolic tasks) are treated as instantaneous no-ops but still participate
    in the dependency bookkeeping.

    Parameters
    ----------
    graph:
        The recorded task graph (insertion order must be a topological order,
        which :class:`~repro.runtime.dtd.DTDRuntime` guarantees).
    n_workers:
        Number of worker threads.
    timeout:
        Overall wall-clock limit in seconds; on expiry no further tasks are
        started and not-yet-started tasks are cancelled.
    priorities:
        Optional ``tid -> priority`` map (higher runs first among ready
        tasks).  Defaults to the flops-weighted critical-path depth.
    raise_on_error:
        If True (default) the first task error (or :class:`TimeoutError`) is
        raised after dispatch has stopped; the partial report is attached to
        the exception as ``exc.execution_report``.  Pass False to inspect the
        partial :class:`ExecutionReport` (``errors`` / ``cancelled`` /
        ``timed_out``) instead.
    trace:
        Record a measured :class:`~repro.runtime.tracing.ExecutionTrace`
        (per-task spans, per-worker dispatch overhead and wait time) onto
        ``report.trace``.  The workers only append stamp tuples while tasks
        run; span objects are built after the graph drains.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When given,
        the execution records task counters, per-kind latency and
        queue-delay histograms, scheduler overhead, the ready-queue high
        water and memory gauges into it (metric names in
        :mod:`repro.obs.runtime_metrics`), and ``report.memory`` is filled.
        The same stamps feed the trace and the histograms, so the two
        surfaces always agree; ``report.trace`` is still only attached for
        ``trace=True``.

    Returns
    -------
    ExecutionReport
        ``report.ok`` is True when every task ran without raising.
    """
    t0 = time.perf_counter()
    # Metrics ride on the same stamps tracing uses: enabling either turns
    # stamping on, and the histograms are derived from the built spans.
    stamp = trace or metrics is not None
    succ, pred = graph.adjacency()
    remaining = {t.tid: len(pred.get(t.tid, [])) for t in graph.tasks}
    # Report the worker count that will actually be spawned, not the request.
    actual_workers = max(1, min(n_workers, graph.num_tasks)) if graph.num_tasks else 0
    report = ExecutionReport(
        num_tasks=graph.num_tasks,
        num_workers=actual_workers,
        requested_workers=n_workers,
    )
    if graph.num_tasks == 0:
        report.wall_time = time.perf_counter() - t0
        if metrics is not None:
            from repro.obs.runtime_metrics import record_execution_metrics

            report.memory = record_execution_metrics(
                metrics, backend="parallel", report=report, graph=graph
            )
        return report

    # Fail fast on graphs the scheduler could never drain -- otherwise the
    # workers and the main thread would all block on the condition forever.
    graph.validate_drainable()

    if priorities is None:
        priorities = graph.critical_path_priorities(succ)

    cond = threading.Condition()
    # Min-heap on (-priority, tid): highest priority first, insertion order as
    # a deterministic tie-break.  All mutable state below is guarded by `cond`.
    ready: List[tuple] = [
        (-priorities.get(tid, 0.0), tid) for tid, cnt in remaining.items() if cnt == 0
    ]
    heapq.heapify(ready)
    started: set = set()
    cancelled_set: set = set()
    state = {"inflight": 0, "stop": False, "timed_out": False, "ready_hw": len(ready)}
    # Tracing state: per-worker raw stamp tuples and measured dispatch
    # overhead, plus the ready-time of every dispatched task (guarded by
    # `cond`, like the heap it annotates).
    ready_at: Dict[int, float] = {}
    span_logs: List[List[tuple]] = [[] for _ in range(actual_workers)]
    overhead_log: List[float] = [0.0] * actual_workers
    if stamp:
        for _, tid in ready:
            ready_at[tid] = t0

    def _settled() -> int:  # caller holds cond
        return len(report.executed) + len(report.errors) + len(report.cancelled)

    def _cancel_unstarted() -> None:  # caller holds cond
        ready.clear()
        for task in graph.tasks:
            if task.tid not in started and task.tid not in cancelled_set:
                cancelled_set.add(task.tid)
                report.cancelled.append(task.tid)
        state["stop"] = True
        cond.notify_all()

    def worker(widx: int) -> None:
        spans = span_logs[widx]
        overhead = 0.0
        t_start = t_end = 0.0
        while True:
            # Dispatch: everything inside the condition block that is not
            # cond.wait counts as measured runtime overhead; the wait itself
            # is the worker's idle time.
            tb0 = time.perf_counter() if stamp else 0.0
            idle_round = 0.0
            with cond:
                while not ready and not state["stop"]:
                    if stamp:
                        tw0 = time.perf_counter()
                        cond.wait()
                        idle_round += time.perf_counter() - tw0
                    else:
                        cond.wait()
                if state["stop"]:
                    overhead_log[widx] = overhead
                    return
                _, tid = heapq.heappop(ready)
                started.add(tid)
                state["inflight"] += 1
            task = graph.task(tid)
            error: Optional[BaseException] = None
            if stamp:
                t_start = time.perf_counter()
                overhead += (t_start - tb0) - idle_round
            try:
                task.run()
            except BaseException as exc:  # propagate through the report
                error = exc
            if stamp:
                t_end = time.perf_counter()
            with cond:
                state["inflight"] -= 1
                if error is not None:
                    report.errors[tid] = error
                    _cancel_unstarted()
                else:
                    report.executed.append(tid)
                    if stamp:
                        spans.append(
                            (tid, task.name, task.kind, task.phase, widx, 0,
                             ready_at.get(tid, t0), t_start, t_end)
                        )
                    if not state["stop"]:
                        now = time.perf_counter() if stamp else 0.0
                        for nxt in succ.get(tid, []):
                            remaining[nxt] -= 1
                            if remaining[nxt] == 0:
                                heapq.heappush(ready, (-priorities.get(nxt, 0.0), nxt))
                                if stamp:
                                    ready_at[nxt] = now
                        if stamp and len(ready) > state["ready_hw"]:
                            state["ready_hw"] = len(ready)
                        if ready:
                            cond.notify_all()
                if _settled() == graph.num_tasks and state["inflight"] == 0:
                    state["stop"] = True
                    cond.notify_all()
            if stamp:
                overhead += time.perf_counter() - t_end

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"executor-{i}", daemon=True)
        for i in range(actual_workers)
    ]
    for thread in threads:
        thread.start()

    try:
        with cond:
            finished = cond.wait_for(lambda: state["stop"], timeout=timeout)
            if not finished:
                state["timed_out"] = True
                _cancel_unstarted()
    finally:
        # Also reached on KeyboardInterrupt: stop dispatch and wait for
        # in-flight tasks, so no worker keeps mutating shared state after
        # execute_graph has returned or raised.
        with cond:
            if not state["stop"]:
                _cancel_unstarted()
        for thread in threads:
            thread.join()
        report.timed_out = state["timed_out"]
        report.wall_time = time.perf_counter() - t0
        if stamp:
            from repro.runtime.tracing import ExecutionTrace, build_spans

            tr = ExecutionTrace(
                backend="parallel",
                n_workers=actual_workers,
                wall_time=report.wall_time,
            )
            tr.spans = build_spans(
                [item for log in span_logs for item in log], t0
            )
            tr.worker_overhead = {w: o for w, o in enumerate(overhead_log)}
            if trace:
                report.trace = tr
            if metrics is not None:
                from repro.obs.runtime_metrics import record_execution_metrics

                report.memory = record_execution_metrics(
                    metrics,
                    backend="parallel",
                    report=report,
                    trace=tr,
                    graph=graph,
                    queue_high_water=state["ready_hw"],
                )

    if raise_on_error:
        # A task error outranks a concurrent timeout: TimeoutError means
        # "every started task completed", which a failed body violates.
        if report.errors:
            first = next(iter(report.errors.values()))
            first.execution_report = report
            raise first
        if report.timed_out:
            err = TimeoutError(
                f"graph execution exceeded {timeout}s "
                f"({len(report.executed)}/{report.num_tasks} tasks completed)"
            )
            err.execution_report = report
            raise err
    return report


# -- process-pool execution ---------------------------------------------------
#
# The pool workers are forked, so they inherit the recorded graph (closures
# and all) plus the pre-execution numerical state through this module-level
# slot -- nothing but task ids and handle values ever crosses the process
# boundary.  The slot is populated before the pool is created and cleared in
# the `finally` of execute_graph_processes; ProcessPoolExecutor forks its
# workers lazily from the submitting (main) thread, so every worker sees a
# consistent snapshot.
_POOL_STATE: Dict[str, Any] = {}


def _pack_oob(obj: Any) -> tuple:
    """Serialize for the pool channel: protocol 5 with out-of-band buffers.

    Returns ``(payload, buffers)``: the pickle stream without any array bytes
    in it, plus each array's flat bytes as a writable ``bytearray``.  The
    pool's own (protocol-4) channel pickler cannot ship ``PickleBuffer``
    views, so each buffer is flattened to a ``bytearray`` -- the one copy the
    shuttle makes per direction; :func:`_unpack_oob` then reconstructs every
    array as a zero-copy (writable) view over its received buffer instead of
    copying it back out of a pickle stream.
    """
    pickle_buffers: List[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=pickle_buffers.append)
    return payload, [bytearray(b.raw()) for b in pickle_buffers]


def _unpack_oob(packed: tuple) -> Any:
    payload, buffers = packed
    return pickle.loads(payload, buffers=buffers)


def _oob_nbytes(packed: tuple) -> int:
    """Physical bytes of a packed message (stream + out-of-band buffers)."""
    payload, buffers = packed
    return len(payload) + sum(len(b) for b in buffers)


def _pool_run_task(tid: int, packed_inject: tuple) -> tuple:
    """Run one task inside a pool worker.

    ``packed_inject`` is the :func:`_pack_oob` form of the ``hid -> value``
    dict of bound read handles the parent injects.  Returns
    ``(packed_writes, span, phys_nbytes)``: the written values in the same
    packed form, ``span`` None unstamped or the raw stamp tuple ``(pid,
    install_t0, install_t1, run_t0, run_t1, gather_t1)`` -- absolute
    ``perf_counter`` stamps on the parent's clock (fork shares
    ``CLOCK_MONOTONIC``), split into handle-install (recv), task body
    (compute) and written-value gather (send) intervals -- and
    ``phys_nbytes`` the measured physical size of the written values (free
    from the packed form; None when the execution carries no metrics
    registry).
    """
    stamp = _POOL_STATE.get("trace", False)
    t_in0 = time.perf_counter() if stamp else 0.0
    graph = _POOL_STATE["graph"]
    by_hid = _POOL_STATE["by_hid"]
    for hid, value in _unpack_oob(packed_inject).items():
        by_hid[hid].set_value(value)
    task = graph.task(tid)
    t_run0 = time.perf_counter() if stamp else 0.0
    task.run()
    t_run1 = time.perf_counter() if stamp else 0.0
    out: Dict[int, Any] = {}
    for handle in task.write_handles:
        if handle.bound:
            out[handle.hid] = handle.get_value()
    packed_out = _pack_oob(out)
    phys = None
    if _POOL_STATE.get("measure", False) and out:
        phys = _oob_nbytes(packed_out)
    if not stamp:
        return packed_out, None, phys
    return packed_out, (os.getpid(), t_in0, t_run0, t_run0, t_run1, time.perf_counter()), phys


def _pool_collect(_slot: int) -> Any:
    """Gather one worker's result fragment (runs inside the worker).

    Blocks on a barrier sized to the worker count first, which forces the
    pool to stand up every worker and hand each exactly one collect call --
    so every worker's fragment is gathered exactly once.
    """
    barrier = _POOL_STATE["barrier"]
    if barrier is not None:
        barrier.wait(timeout=120.0)
    collect = _POOL_STATE["collect"]
    return collect() if collect is not None else None


def _check_bound_dataflow(graph: TaskGraph) -> None:
    """Every cross-task value flow must go through a *bound* handle.

    The process backend ships written handle values between workers through
    their getters/setters; a task reading a handle some earlier task wrote
    without accessors would silently read stale forked state.  Task chains
    passing state outside handles must be fused first (the `process` backend
    enables fusion by default).
    """
    last_writer: Dict[int, int] = {}
    for task in graph.tasks:
        for handle in task.read_handles:
            writer = last_writer.get(handle.hid)
            if writer is not None and writer != task.tid and not handle.bound:
                raise RuntimeError(
                    f"process backend: task {task.tid} ({task.name!r}) reads "
                    f"unbound handle {handle.name!r} written by task {writer}; "
                    "bind the handle (DataHandle.bind/bind_item) or fuse the chain"
                )
        for handle in task.write_handles:
            last_writer[handle.hid] = task.tid


def execute_graph_processes(
    graph: TaskGraph,
    *,
    n_workers: int = 4,
    timeout: Optional[float] = None,
    priorities: Optional[Mapping[int, float]] = None,
    collect: Optional[Callable[[], Any]] = None,
    raise_on_error: bool = True,
    trace: bool = False,
    metrics=None,
) -> ExecutionReport:
    """Execute all task bodies of ``graph`` on ``n_workers`` forked processes.

    The GIL-free counterpart of :func:`execute_graph`: workers are forked
    from the current process (inheriting the graph and all pre-execution
    state), ready tasks are dispatched highest-critical-path-first, and the
    parent holds the authoritative copy of every *bound* handle -- written
    values are shipped back after each task and injected into the process
    that runs a consumer, so out-of-order cross-process execution is exactly
    as bit-identical as the thread pool.

    ``collect`` (optional) is invoked once inside every worker after the
    graph drains; the returned fragments are stored in
    ``ExecutionReport.fragments`` so results kept outside handles (per-node
    factor stores, solution blocks) can be merged by the caller.

    Error and timeout semantics mirror :func:`execute_graph`: the first task
    error cancels all not-yet-started tasks, a timeout cancels the rest but
    lets in-flight bodies finish, and with ``raise_on_error`` the partial
    report rides on the raised exception as ``exc.execution_report``.

    With ``trace=True`` every worker stamps its task bodies and the
    handle-shuttle intervals (install/gather, reported as communication) and
    ships the stamps back with the results; the parent's scheduling loop time
    is measured as ``scheduler_overhead``.  Fork shares ``CLOCK_MONOTONIC``,
    so child stamps merge directly onto the parent's timeline in
    ``report.trace``.

    With a ``metrics`` registry the execution additionally records task
    counters and latency histograms (derived from the same stamps) plus the
    handle-shuttle traffic as comm metrics: every inject (parent -> pool)
    and every gather (pool -> parent) counts one message, with *logical*
    bytes from the declared handle sizes and *physical* bytes measured from
    the serialized payloads (protocol 5 with out-of-band buffers: array
    bytes travel as flat buffers beside a tiny pickle stream, and the
    receiving side reconstructs each array as a zero-copy view over its
    buffer).  ``report.memory`` is filled.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        raise RuntimeError("the process backend requires fork (POSIX)")
    t0 = time.perf_counter()
    stamp = trace or metrics is not None
    succ, pred = graph.adjacency()
    remaining = {t.tid: len(pred.get(t.tid, [])) for t in graph.tasks}
    actual_workers = max(1, min(n_workers, graph.num_tasks)) if graph.num_tasks else 0
    report = ExecutionReport(
        num_tasks=graph.num_tasks,
        num_workers=actual_workers,
        requested_workers=n_workers,
    )
    if graph.num_tasks == 0:
        report.wall_time = time.perf_counter() - t0
        if metrics is not None:
            from repro.obs.runtime_metrics import record_execution_metrics

            report.memory = record_execution_metrics(
                metrics, backend="process", report=report, graph=graph
            )
        return report

    graph.validate_drainable()
    _check_bound_dataflow(graph)

    if priorities is None:
        priorities = graph.critical_path_priorities(succ)

    by_hid: Dict[int, Any] = {}
    for task in graph.tasks:
        for access in task.accesses:
            by_hid.setdefault(access.handle.hid, access.handle)

    ctx = multiprocessing.get_context("fork")
    deadline = None if timeout is None else t0 + timeout
    ready: List[tuple] = [
        (-priorities.get(tid, 0.0), tid) for tid, cnt in remaining.items() if cnt == 0
    ]
    heapq.heapify(ready)
    dirty: set = set()          # hids written by completed tasks
    started: set = set()
    futures: Dict[Any, int] = {}  # future -> tid

    # Tracing state: parent-side submit stamps (queue_t of each span), raw
    # child stamp tuples, and the parent scheduling-loop time (everything the
    # parent does between waits, accounted as central scheduler overhead).
    submit_at: Dict[int, float] = {}
    child_spans: List[tuple] = []   # (tid, pid, in0, in1, run0, run1, out1)
    sched_overhead = 0.0
    # Metrics state: handle-shuttle messages as (src, dst, logical, physical)
    # byte tuples, recorded after the run, and the ready-queue high water.
    shuttle_msgs: List[tuple] = []
    ready_hw = len(ready)

    _POOL_STATE["graph"] = graph
    _POOL_STATE["by_hid"] = by_hid
    _POOL_STATE["collect"] = collect
    _POOL_STATE["trace"] = stamp
    _POOL_STATE["measure"] = metrics is not None
    _POOL_STATE["barrier"] = ctx.Barrier(actual_workers) if collect is not None else None
    pool = ProcessPoolExecutor(max_workers=actual_workers, mp_context=ctx)
    try:
        def submit_ready() -> None:
            nonlocal ready_hw
            if stamp and len(ready) > ready_hw:
                ready_hw = len(ready)
            while ready:
                _, tid = heapq.heappop(ready)
                task = graph.task(tid)
                inject = {
                    h.hid: h.get_value()
                    for h in task.read_handles
                    if h.bound and h.hid in dirty
                }
                packed = _pack_oob(inject)
                started.add(tid)
                if stamp:
                    submit_at[tid] = time.perf_counter()
                if metrics is not None and inject:
                    logical = sum(
                        h.nbytes for h in task.read_handles
                        if h.bound and h.hid in inject
                    )
                    shuttle_msgs.append(("parent", "pool", logical, _oob_nbytes(packed)))
                futures[pool.submit(_pool_run_task, tid, packed)] = tid

        submit_ready()
        stop = False
        while futures and not stop:
            budget = None if deadline is None else max(0.0, deadline - time.perf_counter())
            done, _ = wait(futures, timeout=budget, return_when=FIRST_COMPLETED)
            if not done:
                report.timed_out = True
                break
            ts0 = time.perf_counter() if stamp else 0.0
            for fut in done:
                tid = futures.pop(fut)
                try:
                    packed_writes, span, phys = fut.result()
                except BaseException as exc:
                    report.errors[tid] = exc
                    stop = True
                    continue
                writes = _unpack_oob(packed_writes)
                for hid, value in writes.items():
                    by_hid[hid].set_value(value)
                    dirty.add(hid)
                report.executed.append(tid)
                if span is not None:
                    child_spans.append((tid,) + span)
                if phys is not None:
                    logical = sum(by_hid[hid].nbytes for hid in writes)
                    shuttle_msgs.append(("pool", "parent", logical, phys))
                if not stop:
                    for nxt in succ.get(tid, []):
                        remaining[nxt] -= 1
                        if remaining[nxt] == 0:
                            heapq.heappush(ready, (-priorities.get(nxt, 0.0), nxt))
            if not stop:
                submit_ready()
            if stamp:
                sched_overhead += time.perf_counter() - ts0

        if report.timed_out or report.errors:
            # Cancel whatever has not started; in-flight bodies finish (their
            # processes cannot be interrupted mid-kernel) and are recorded.
            for fut, tid in list(futures.items()):
                if fut.cancel():
                    started.discard(tid)
                    del futures[fut]
            for fut, tid in futures.items():
                try:
                    packed_writes, span, phys = fut.result()
                except BaseException as exc:
                    report.errors.setdefault(tid, exc)
                else:
                    writes = _unpack_oob(packed_writes)
                    for hid, value in writes.items():
                        by_hid[hid].set_value(value)
                        dirty.add(hid)
                    report.executed.append(tid)
                    if span is not None:
                        child_spans.append((tid,) + span)
                    if phys is not None:
                        logical = sum(by_hid[hid].nbytes for hid in writes)
                        shuttle_msgs.append(("pool", "parent", logical, phys))
            futures.clear()
            for task in graph.tasks:
                if task.tid not in started:
                    report.cancelled.append(task.tid)
        elif collect is not None:
            # One blocking collect call per worker: the barrier holds each
            # worker until all of them run one, so the pool spawns any
            # workers it never needed during execution (their fragments are
            # near-empty forks of the parent, and merging is idempotent).
            collect_futures = [
                pool.submit(_pool_collect, slot) for slot in range(actual_workers)
            ]
            report.fragments = [f.result(timeout=150.0) for f in collect_futures]
    finally:
        pool.shutdown(wait=True)
        _POOL_STATE.clear()
        report.wall_time = time.perf_counter() - t0
        if stamp:
            from repro.runtime.tracing import CommSpan, ExecutionTrace, build_spans

            tr = ExecutionTrace(
                backend="process",
                n_workers=actual_workers,
                wall_time=report.wall_time,
                scheduler_overhead=sched_overhead,
            )
            # Map distinct worker pids onto dense worker indices in
            # first-seen (completion) order.
            slot_of: Dict[int, int] = {}
            raw: List[tuple] = []
            for tid, pid, t_in0, t_in1, t_run0, t_run1, t_out1 in child_spans:
                widx = slot_of.setdefault(pid, len(slot_of))
                task = graph.task(tid)
                raw.append(
                    (tid, task.name, task.kind, task.phase, widx, widx,
                     submit_at.get(tid, t0), t_run0, t_run1)
                )
                # Handle shuttling across the fork boundary: install of
                # injected values (recv) and gather of written values (send).
                if t_in1 > t_in0:
                    tr.comm.append(CommSpan(
                        action="recv", worker=widx, src=-1, dst=widx,
                        edge=(tid, tid), nbytes=0,
                        start_t=t_in0 - t0, end_t=t_in1 - t0,
                    ))
                if t_out1 > t_run1:
                    tr.comm.append(CommSpan(
                        action="send", worker=widx, src=widx, dst=-1,
                        edge=(tid, tid), nbytes=0,
                        start_t=t_run1 - t0, end_t=t_out1 - t0,
                    ))
            tr.spans = build_spans(raw, t0)
            if trace:
                report.trace = tr
            if metrics is not None:
                from repro.obs.runtime_metrics import (
                    record_comm_message,
                    record_execution_metrics,
                )

                report.memory = record_execution_metrics(
                    metrics,
                    backend="process",
                    report=report,
                    trace=tr,
                    graph=graph,
                    queue_high_water=ready_hw,
                )
                for src, dst, logical, physical in shuttle_msgs:
                    record_comm_message(
                        metrics, "process",
                        src=src, dst=dst,
                        logical_bytes=logical, physical_bytes=physical,
                    )

    if raise_on_error:
        if report.errors:
            first = next(iter(report.errors.values()))
            try:
                first.execution_report = report
            except AttributeError:
                pass  # some builtin exceptions reject new attributes
            raise first
        if report.timed_out:
            err = TimeoutError(
                f"graph execution exceeded {timeout}s "
                f"({len(report.executed)}/{report.num_tasks} tasks completed)"
            )
            err.execution_report = report
            raise err
    return report
