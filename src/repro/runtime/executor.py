"""Shared-memory parallel execution of a recorded task graph.

This is the "real execution" counterpart of the simulator: a pool of worker
threads executes the task bodies respecting the DAG dependencies.  NumPy/BLAS
releases the GIL inside the dense kernels, so genuinely concurrent execution
of independent tasks is possible.  Used by the ``"parallel"`` execution mode
of the DTD factorizations (:func:`repro.core.hss_ulv_dtd.hss_ulv_factorize_dtd`
and :func:`repro.core.blr2_ulv_dtd.blr2_ulv_factorize_dtd`) and by examples,
benchmarks and tests to demonstrate that the task-based factorization produces
the same numbers as the sequential reference regardless of execution order.

Scheduling is entirely event-driven (no polling): workers sleep on a condition
variable and are woken exactly when a task becomes ready, an error occurs or
the graph is drained.  Ready tasks are dispatched from a priority queue seeded
with the flops-weighted critical-path depth of each task
(:meth:`repro.runtime.dag.TaskGraph.critical_path_priorities`), i.e. the
longest chain of work that still hangs off a task -- the classic critical-path
list-scheduling heuristic.

Error handling is deterministic: the first task body that raises stops all
dispatch; tasks that have not started yet are recorded in
``ExecutionReport.cancelled`` and are guaranteed never to run, while tasks
already in flight on other workers are allowed to finish (threads cannot be
interrupted mid-kernel).
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Dict, List, Mapping, Optional

from repro.runtime.dag import TaskGraph

__all__ = ["execute_graph", "ExecutionReport"]


class ExecutionReport:
    """Summary of a parallel graph execution.

    Attributes
    ----------
    executed:
        Task ids that completed successfully, in completion order.
    errors:
        ``tid -> exception`` for every task body that raised.
    cancelled:
        Task ids that were never started because an earlier task failed (or
        the execution timed out).  Disjoint from ``executed`` and ``errors``.
    timed_out:
        True when the overall ``timeout`` expired before the graph drained.
    wall_time:
        Wall-clock seconds spent inside :func:`execute_graph`.
    """

    def __init__(self, num_tasks: int, num_workers: int) -> None:
        self.num_tasks = num_tasks
        self.num_workers = num_workers
        self.executed: List[int] = []
        self.errors: Dict[int, BaseException] = {}
        self.cancelled: List[int] = []
        self.timed_out: bool = False
        self.wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            not self.errors
            and not self.cancelled
            and not self.timed_out
            and len(self.executed) == self.num_tasks
        )

    def __repr__(self) -> str:
        return (
            f"ExecutionReport(tasks={self.num_tasks}, workers={self.num_workers}, "
            f"executed={len(self.executed)}, errors={len(self.errors)}, "
            f"cancelled={len(self.cancelled)}, wall_time={self.wall_time:.3g}s)"
        )


def execute_graph(
    graph: TaskGraph,
    *,
    n_workers: int = 4,
    timeout: Optional[float] = None,
    priorities: Optional[Mapping[int, float]] = None,
    raise_on_error: bool = True,
) -> ExecutionReport:
    """Execute all task bodies of ``graph`` with ``n_workers`` threads.

    A task becomes *ready* when all of its predecessors have completed; ready
    tasks are dispatched highest-priority-first.  Tasks with ``func is None``
    (symbolic tasks) are treated as instantaneous no-ops but still participate
    in the dependency bookkeeping.

    Parameters
    ----------
    graph:
        The recorded task graph (insertion order must be a topological order,
        which :class:`~repro.runtime.dtd.DTDRuntime` guarantees).
    n_workers:
        Number of worker threads.
    timeout:
        Overall wall-clock limit in seconds; on expiry no further tasks are
        started and not-yet-started tasks are cancelled.
    priorities:
        Optional ``tid -> priority`` map (higher runs first among ready
        tasks).  Defaults to the flops-weighted critical-path depth.
    raise_on_error:
        If True (default) the first task error (or :class:`TimeoutError`) is
        raised after dispatch has stopped; the partial report is attached to
        the exception as ``exc.execution_report``.  Pass False to inspect the
        partial :class:`ExecutionReport` (``errors`` / ``cancelled`` /
        ``timed_out``) instead.

    Returns
    -------
    ExecutionReport
        ``report.ok`` is True when every task ran without raising.
    """
    t0 = time.perf_counter()
    succ, pred = graph.adjacency()
    remaining = {t.tid: len(pred.get(t.tid, [])) for t in graph.tasks}
    report = ExecutionReport(num_tasks=graph.num_tasks, num_workers=n_workers)
    if graph.num_tasks == 0:
        return report

    # Fail fast on graphs the scheduler could never drain -- otherwise the
    # workers and the main thread would all block on the condition forever.
    graph.validate_drainable()

    if priorities is None:
        priorities = graph.critical_path_priorities(succ)

    cond = threading.Condition()
    # Min-heap on (-priority, tid): highest priority first, insertion order as
    # a deterministic tie-break.  All mutable state below is guarded by `cond`.
    ready: List[tuple] = [
        (-priorities.get(tid, 0.0), tid) for tid, cnt in remaining.items() if cnt == 0
    ]
    heapq.heapify(ready)
    started: set = set()
    cancelled_set: set = set()
    state = {"inflight": 0, "stop": False, "timed_out": False}

    def _settled() -> int:  # caller holds cond
        return len(report.executed) + len(report.errors) + len(report.cancelled)

    def _cancel_unstarted() -> None:  # caller holds cond
        ready.clear()
        for task in graph.tasks:
            if task.tid not in started and task.tid not in cancelled_set:
                cancelled_set.add(task.tid)
                report.cancelled.append(task.tid)
        state["stop"] = True
        cond.notify_all()

    def worker() -> None:
        while True:
            with cond:
                while not ready and not state["stop"]:
                    cond.wait()
                if state["stop"]:
                    return
                _, tid = heapq.heappop(ready)
                started.add(tid)
                state["inflight"] += 1
            task = graph.task(tid)
            error: Optional[BaseException] = None
            try:
                task.run()
            except BaseException as exc:  # propagate through the report
                error = exc
            with cond:
                state["inflight"] -= 1
                if error is not None:
                    report.errors[tid] = error
                    _cancel_unstarted()
                else:
                    report.executed.append(tid)
                    if not state["stop"]:
                        for nxt in succ.get(tid, []):
                            remaining[nxt] -= 1
                            if remaining[nxt] == 0:
                                heapq.heappush(ready, (-priorities.get(nxt, 0.0), nxt))
                        if ready:
                            cond.notify_all()
                if _settled() == graph.num_tasks and state["inflight"] == 0:
                    state["stop"] = True
                    cond.notify_all()

    threads = [
        threading.Thread(target=worker, name=f"executor-{i}", daemon=True)
        for i in range(max(1, min(n_workers, graph.num_tasks)))
    ]
    for thread in threads:
        thread.start()

    try:
        with cond:
            finished = cond.wait_for(lambda: state["stop"], timeout=timeout)
            if not finished:
                state["timed_out"] = True
                _cancel_unstarted()
    finally:
        # Also reached on KeyboardInterrupt: stop dispatch and wait for
        # in-flight tasks, so no worker keeps mutating shared state after
        # execute_graph has returned or raised.
        with cond:
            if not state["stop"]:
                _cancel_unstarted()
        for thread in threads:
            thread.join()
        report.timed_out = state["timed_out"]
        report.wall_time = time.perf_counter() - t0

    if raise_on_error:
        # A task error outranks a concurrent timeout: TimeoutError means
        # "every started task completed", which a failed body violates.
        if report.errors:
            first = next(iter(report.errors.values()))
            first.execution_report = report
            raise first
        if report.timed_out:
            err = TimeoutError(
                f"graph execution exceeded {timeout}s "
                f"({len(report.executed)}/{report.num_tasks} tasks completed)"
            )
            err.execution_report = report
            raise err
    return report
