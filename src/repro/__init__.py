"""repro: reproduction of "O(N) distributed direct factorization of structured
dense matrices using runtime systems" (HATRIX-DTD, ICPP 2023).

Subpackages
-----------
``repro.geometry``      point clouds, cluster trees, admissibility
``repro.kernels``       Green's-function kernels and kernel-matrix assembly
``repro.lowrank``       SVD / QR / ACA / RSVD / ID compression primitives
``repro.formats``       BlockDense, BLR, BLR2, HSS and HODLR matrix formats
``repro.pipeline``      format-agnostic pipeline: ExecutionPolicy, graph
                        builders, format registry
``repro.core``          BLR2-ULV, HSS-ULV and HODLR-ULV factorizations (the
                        contribution)
``repro.solve``         task-graph ULV solves (multi-RHS panels, refinement)
``repro.service``       SolverService: cached factorizations, batched solves
``repro.runtime``       DTD task runtime, DAG, machine model, simulator
``repro.distribution``  row-cyclic / block-cyclic process distributions
``repro.baselines``     dense Cholesky, LORAPO-like BLR Cholesky, STRUMPACK-like
``repro.analysis``      error metrics, complexity fits, scaling analysis
``repro.experiments``   one driver per paper table/figure
``repro.api``           high-level ``StructuredSolver`` facade (``HSSSolver``
                        is kept as an alias)
"""

from repro.api import HSSSolver, StructuredSolver
from repro.service import SolverService

__version__ = "1.0.0"

__all__ = ["HSSSolver", "StructuredSolver", "SolverService", "__version__"]
