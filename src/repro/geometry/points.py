"""Point-cloud generators used to build kernel (Green's function) matrices.

The paper uses a *uniform 2D grid geometry* for every experiment
("Every implementation uses a uniform 2D grid geometry", Sec. 5).  The
generators here return a :class:`PointCloud` whose points are ordered along a
space-filling (Morton / Z-order) curve so that contiguous index ranges
correspond to spatially compact clusters -- the property the binary cluster
tree relies on for low-rank compressibility of off-diagonal blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PointCloud",
    "uniform_grid_1d",
    "uniform_grid_2d",
    "uniform_grid_3d",
    "random_uniform",
    "circle_points",
]


@dataclass(frozen=True)
class PointCloud:
    """A set of points in ``dim``-dimensional space.

    Attributes
    ----------
    coords:
        Array of shape ``(n, dim)``; row ``i`` is the coordinate of point ``i``.
        The row order is the matrix index order used for kernel matrices.
    description:
        Human-readable provenance string (e.g. ``"uniform 2D grid 64x64"``).
    """

    coords: np.ndarray
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        coords = np.asarray(self.coords, dtype=np.float64)
        if coords.ndim != 2:
            raise ValueError(f"coords must be 2D (n, dim); got shape {coords.shape}")
        object.__setattr__(self, "coords", coords)

    @property
    def n(self) -> int:
        """Number of points."""
        return self.coords.shape[0]

    @property
    def dim(self) -> int:
        """Spatial dimension."""
        return self.coords.shape[1]

    def __len__(self) -> int:
        return self.n

    def subset(self, indices: np.ndarray) -> "PointCloud":
        """Return a new :class:`PointCloud` restricted to ``indices``."""
        return PointCloud(self.coords[np.asarray(indices)], description=self.description)

    def pairwise_distance(self, other: "PointCloud | None" = None) -> np.ndarray:
        """Dense Euclidean distance matrix between ``self`` and ``other`` (or itself)."""
        other_coords = self.coords if other is None else other.coords
        diff = self.coords[:, None, :] - other_coords[None, :, :]
        return np.sqrt(np.sum(diff * diff, axis=-1))


def _morton_order(ij: np.ndarray, bits: int = 16) -> np.ndarray:
    """Return the argsort of integer grid coordinates along a Z-order curve.

    Parameters
    ----------
    ij:
        Integer array of shape ``(n, dim)`` with non-negative entries.
    bits:
        Number of bits interleaved per coordinate.
    """
    ij = np.asarray(ij, dtype=np.uint64)
    n, dim = ij.shape
    keys = np.zeros(n, dtype=np.uint64)
    for b in range(bits):
        for d in range(dim):
            bit = (ij[:, d] >> np.uint64(b)) & np.uint64(1)
            keys |= bit << np.uint64(b * dim + d)
    return np.argsort(keys, kind="stable")


def uniform_grid_1d(n: int, *, length: float = 1.0) -> PointCloud:
    """``n`` equispaced points on the segment ``[0, length]``."""
    if n <= 0:
        raise ValueError("n must be positive")
    x = np.linspace(0.0, length, n).reshape(-1, 1)
    return PointCloud(x, description=f"uniform 1D grid n={n}")


def uniform_grid_2d(n: int, *, length: float = 1.0, morton: bool = True) -> PointCloud:
    """A uniform 2D grid with (approximately) ``n`` points on ``[0, length]^2``.

    The grid side is ``ceil(sqrt(n))`` and the first ``n`` points in Morton
    order are returned, matching the paper's "uniform 2D grid geometry".

    Parameters
    ----------
    n:
        Requested number of points.
    length:
        Side length of the square domain.
    morton:
        If True (default) order points along a Z-order curve so contiguous
        index ranges are spatially clustered; otherwise row-major order.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    side = int(np.ceil(np.sqrt(n)))
    xs = np.linspace(0.0, length, side)
    ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    coords = np.column_stack([xs[ii.ravel()], xs[jj.ravel()]])
    if morton:
        order = _morton_order(np.column_stack([ii.ravel(), jj.ravel()]))
        coords = coords[order]
    coords = coords[:n]
    return PointCloud(coords, description=f"uniform 2D grid {side}x{side} (n={n})")


def uniform_grid_3d(n: int, *, length: float = 1.0, morton: bool = True) -> PointCloud:
    """A uniform 3D grid with (approximately) ``n`` points on ``[0, length]^3``."""
    if n <= 0:
        raise ValueError("n must be positive")
    side = int(np.ceil(n ** (1.0 / 3.0)))
    while side**3 < n:
        side += 1
    xs = np.linspace(0.0, length, side)
    ii, jj, kk = np.meshgrid(np.arange(side), np.arange(side), np.arange(side), indexing="ij")
    coords = np.column_stack([xs[ii.ravel()], xs[jj.ravel()], xs[kk.ravel()]])
    if morton:
        order = _morton_order(np.column_stack([ii.ravel(), jj.ravel(), kk.ravel()]))
        coords = coords[order]
    coords = coords[:n]
    return PointCloud(coords, description=f"uniform 3D grid {side}^3 (n={n})")


def random_uniform(n: int, dim: int = 2, *, length: float = 1.0, seed: int = 0) -> PointCloud:
    """``n`` points uniformly random in ``[0, length]^dim``, sorted along Morton order."""
    if n <= 0:
        raise ValueError("n must be positive")
    if dim <= 0:
        raise ValueError("dim must be positive")
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, length, size=(n, dim))
    cells = np.floor(coords / length * (2**10 - 1)).astype(np.int64)
    order = _morton_order(cells)
    return PointCloud(coords[order], description=f"random uniform dim={dim} n={n} seed={seed}")


def circle_points(n: int, *, radius: float = 1.0) -> PointCloud:
    """``n`` points on a circle of given radius (a classic 1D BEM boundary geometry)."""
    if n <= 0:
        raise ValueError("n must be positive")
    theta = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    coords = np.column_stack([radius * np.cos(theta), radius * np.sin(theta)])
    return PointCloud(coords, description=f"circle n={n} radius={radius}")
