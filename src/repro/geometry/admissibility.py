"""Admissibility conditions deciding which blocks may be compressed.

*Weak admissibility* (used by the paper's HSS and BLR2 matrices) compresses
every off-diagonal block.  *Strong admissibility* (used by H / H2 matrices and
optionally by BLR) compresses a block only when the corresponding clusters are
geometrically well separated: ``min(diam(X), diam(Y)) <= eta * dist(X, Y)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.cluster_tree import ClusterNode

__all__ = ["Admissibility", "WeakAdmissibility", "StrongAdmissibility"]


class Admissibility:
    """Base class for admissibility conditions."""

    def is_admissible(self, row: ClusterNode, col: ClusterNode) -> bool:
        """Return True if the block ``(row, col)`` may be stored in low-rank form."""
        raise NotImplementedError

    def __call__(self, row: ClusterNode, col: ClusterNode) -> bool:
        return self.is_admissible(row, col)


@dataclass(frozen=True)
class WeakAdmissibility(Admissibility):
    """Every off-diagonal block is admissible (HSS / weak-admissibility BLR2)."""

    def is_admissible(self, row: ClusterNode, col: ClusterNode) -> bool:
        if row.level != col.level:
            raise ValueError("admissibility is defined between nodes of the same level")
        return row.index != col.index


@dataclass(frozen=True)
class StrongAdmissibility(Admissibility):
    """Geometric admissibility: ``min(diam) <= eta * dist`` (H-matrix style).

    Parameters
    ----------
    eta:
        Separation parameter; larger values admit more blocks (more
        compression, less accuracy per rank).
    """

    eta: float = 1.0

    def is_admissible(self, row: ClusterNode, col: ClusterNode) -> bool:
        if row.level != col.level:
            raise ValueError("admissibility is defined between nodes of the same level")
        if row.index == col.index:
            return False
        if row.box is None or col.box is None:
            # Structural tree without geometry: fall back to "non-adjacent in
            # index space", the 1D analogue of geometric separation.
            return abs(row.index - col.index) > 1
        dist = row.box.distance(col.box)
        diam = min(row.box.diameter(), col.box.diameter())
        return diam <= self.eta * dist
