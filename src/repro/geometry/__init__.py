"""Geometry substrate: point clouds, domains, cluster trees and admissibility.

The paper evaluates Green's-function matrices generated from a *uniform 2D
grid geometry* (Sec. 5).  Hierarchical low-rank formats (BLR / BLR2 / HSS)
partition the point index set with a binary cluster tree; which off-diagonal
blocks may be compressed is decided by an admissibility condition.
"""

from repro.geometry.points import (
    PointCloud,
    uniform_grid_2d,
    uniform_grid_3d,
    uniform_grid_1d,
    random_uniform,
    circle_points,
)
from repro.geometry.domain import BoundingBox, box_distance, box_diameter
from repro.geometry.cluster_tree import ClusterNode, ClusterTree, build_cluster_tree
from repro.geometry.admissibility import (
    Admissibility,
    WeakAdmissibility,
    StrongAdmissibility,
)

__all__ = [
    "PointCloud",
    "uniform_grid_2d",
    "uniform_grid_3d",
    "uniform_grid_1d",
    "random_uniform",
    "circle_points",
    "BoundingBox",
    "box_distance",
    "box_diameter",
    "ClusterNode",
    "ClusterTree",
    "build_cluster_tree",
    "Admissibility",
    "WeakAdmissibility",
    "StrongAdmissibility",
]
