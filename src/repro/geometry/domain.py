"""Axis-aligned bounding boxes and geometric predicates used for admissibility."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundingBox", "box_distance", "box_diameter"]


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box of a set of points.

    Attributes
    ----------
    lo, hi:
        Arrays of shape ``(dim,)`` with the lower / upper corner.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.atleast_1d(np.asarray(self.lo, dtype=np.float64))
        hi = np.atleast_1d(np.asarray(self.hi, dtype=np.float64))
        if lo.shape != hi.shape:
            raise ValueError("lo and hi must have the same shape")
        if np.any(hi < lo):
            raise ValueError("hi must be >= lo componentwise")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @classmethod
    def of_points(cls, coords: np.ndarray) -> "BoundingBox":
        """Bounding box of an ``(n, dim)`` coordinate array."""
        coords = np.asarray(coords, dtype=np.float64)
        if coords.size == 0:
            raise ValueError("cannot build a bounding box of zero points")
        return cls(coords.min(axis=0), coords.max(axis=0))

    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    def diameter(self) -> float:
        """Euclidean length of the box diagonal."""
        return float(np.linalg.norm(self.extent))

    def distance(self, other: "BoundingBox") -> float:
        """Minimum Euclidean distance between two boxes (0 if they overlap)."""
        gap = np.maximum(0.0, np.maximum(self.lo - other.hi, other.lo - self.hi))
        return float(np.linalg.norm(gap))

    def longest_axis(self) -> int:
        """Index of the coordinate axis with the largest extent."""
        return int(np.argmax(self.extent))

    def contains(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(point >= self.lo - 1e-14) and np.all(point <= self.hi + 1e-14))


def box_distance(a: BoundingBox, b: BoundingBox) -> float:
    """Minimum distance between two bounding boxes."""
    return a.distance(b)


def box_diameter(box: BoundingBox) -> float:
    """Diameter (diagonal length) of a bounding box."""
    return box.diameter()
