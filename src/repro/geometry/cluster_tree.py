"""Binary cluster tree over the point index set.

Hierarchical matrix formats (BLR2, HSS) are defined over a binary partition of
the index set ``{0, ..., N-1}``.  Points are assumed to be ordered so that a
contiguous index range is a spatially compact cluster (see
:func:`repro.geometry.points.uniform_grid_2d`, which orders along a Morton
curve).  The tree used in the paper is a *complete* binary tree: the leaf
level ``max_level`` has ``2**max_level`` nodes of (nearly) equal size, matching
the notation ``A_{level; i, j}`` of Sec. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.geometry.domain import BoundingBox
from repro.geometry.points import PointCloud

__all__ = ["ClusterNode", "ClusterTree", "build_cluster_tree"]


@dataclass
class ClusterNode:
    """A node of the binary cluster tree.

    Attributes
    ----------
    level:
        Depth of the node; the root is level 0, leaves are level ``max_level``.
    index:
        Position of the node within its level (0-based, left to right).
    start, stop:
        Half-open index range ``[start, stop)`` of the points owned by the node.
    box:
        Bounding box of the owned points (None if the tree was built without
        geometry).
    children:
        Either an empty list (leaf) or exactly two child nodes.
    parent:
        The parent node (None for the root).
    """

    level: int
    index: int
    start: int
    stop: int
    box: Optional[BoundingBox] = None
    children: List["ClusterNode"] = field(default_factory=list)
    parent: Optional["ClusterNode"] = field(default=None, repr=False)

    @property
    def size(self) -> int:
        """Number of indices owned by this node."""
        return self.stop - self.start

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def indices(self) -> np.ndarray:
        """The owned index range as an array."""
        return np.arange(self.start, self.stop)

    def sibling(self) -> Optional["ClusterNode"]:
        """The other child of this node's parent (None for the root)."""
        if self.parent is None:
            return None
        for child in self.parent.children:
            if child is not self:
                return child
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ClusterNode(level={self.level}, index={self.index}, range=[{self.start},{self.stop}))"


class ClusterTree:
    """A complete binary cluster tree.

    Parameters
    ----------
    root:
        The root :class:`ClusterNode`.
    points:
        The point cloud the tree was built on (may be None for purely
        structural trees used by the task-graph simulator).
    """

    def __init__(self, root: ClusterNode, points: Optional[PointCloud] = None) -> None:
        self.root = root
        self.points = points
        self._levels: List[List[ClusterNode]] = []
        frontier = [root]
        while frontier:
            self._levels.append(frontier)
            nxt: List[ClusterNode] = []
            for node in frontier:
                nxt.extend(node.children)
            frontier = nxt
        for level_nodes in self._levels:
            level_nodes.sort(key=lambda nd: nd.start)
            for i, node in enumerate(level_nodes):
                node.index = i

    @property
    def n(self) -> int:
        """Total number of indices (points)."""
        return self.root.size

    @property
    def max_level(self) -> int:
        """Depth of the leaf level (root is level 0)."""
        return len(self._levels) - 1

    @property
    def nlevels(self) -> int:
        """Number of levels including the root."""
        return len(self._levels)

    def level_nodes(self, level: int) -> List[ClusterNode]:
        """All nodes at ``level`` ordered by index range."""
        return self._levels[level]

    @property
    def leaves(self) -> List[ClusterNode]:
        """The leaf nodes ordered by index range."""
        return self._levels[-1]

    @property
    def leaf_size(self) -> int:
        """Maximum leaf block size."""
        return max(leaf.size for leaf in self.leaves)

    def node(self, level: int, index: int) -> ClusterNode:
        """The node at ``(level, index)``."""
        return self._levels[level][index]

    def __iter__(self) -> Iterator[ClusterNode]:
        for level_nodes in self._levels:
            yield from level_nodes

    def block_sizes(self, level: int) -> List[int]:
        """Block sizes of the partition induced by ``level``."""
        return [node.size for node in self.level_nodes(level)]

    def validate(self) -> None:
        """Check partition invariants; raises ``ValueError`` on violation."""
        for level, nodes in enumerate(self._levels):
            if nodes[0].start != 0 or nodes[-1].stop != self.n:
                raise ValueError(f"level {level} does not cover [0, {self.n})")
            for a, b in zip(nodes, nodes[1:]):
                if a.stop != b.start:
                    raise ValueError(f"level {level}: gap/overlap between {a} and {b}")
        for node in self:
            if node.children:
                if len(node.children) != 2:
                    raise ValueError("every internal node must have exactly 2 children")
                c0, c1 = sorted(node.children, key=lambda nd: nd.start)
                if c0.start != node.start or c1.stop != node.stop or c0.stop != c1.start:
                    raise ValueError(f"children of {node} do not partition it")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ClusterTree(n={self.n}, levels={self.nlevels}, leaves={len(self.leaves)})"


def _num_levels(n: int, leaf_size: int) -> int:
    """Smallest depth L so every leaf of a complete 2**L split has <= leaf_size points."""
    levels = 0
    while n > leaf_size * (2**levels):
        levels += 1
    return levels


def build_cluster_tree(
    points: PointCloud | int,
    leaf_size: int = 256,
    *,
    max_level: Optional[int] = None,
    geometric_split: bool = False,
) -> ClusterTree:
    """Build a complete binary cluster tree.

    Parameters
    ----------
    points:
        Either a :class:`PointCloud` or an integer ``N`` (structural tree with
        no geometry, used by the task-graph simulator for paper-scale N).
    leaf_size:
        Target maximum number of points per leaf (ignored when ``max_level``
        is given).
    max_level:
        Explicit tree depth; the leaf level has ``2**max_level`` nodes.
    geometric_split:
        If True, internal index ranges are split by sorting points along the
        longest axis of their bounding box (requires a :class:`PointCloud`);
        otherwise ranges are split at the midpoint of the index range (the
        default, correct for Morton-ordered points).

    Returns
    -------
    ClusterTree
    """
    if isinstance(points, PointCloud):
        cloud: Optional[PointCloud] = points
        n = points.n
    else:
        cloud = None
        n = int(points)
        if geometric_split:
            raise ValueError("geometric_split requires a PointCloud")
    if n <= 0:
        raise ValueError("need at least one point")
    if leaf_size <= 0:
        raise ValueError("leaf_size must be positive")

    depth = max_level if max_level is not None else _num_levels(n, leaf_size)
    if depth < 0:
        raise ValueError("max_level must be >= 0")
    if 2**depth > n:
        raise ValueError(f"cannot split {n} points into {2**depth} non-empty leaves")

    coords = cloud.coords if cloud is not None else None

    def make_node(level: int, start: int, stop: int) -> ClusterNode:
        box = BoundingBox.of_points(coords[start:stop]) if coords is not None else None
        node = ClusterNode(level=level, index=0, start=start, stop=stop, box=box)
        if level < depth:
            if geometric_split and coords is not None:
                axis = box.longest_axis() if box is not None else 0
                local = np.argsort(coords[start:stop, axis], kind="stable")
                coords[start:stop] = coords[start:stop][local]
            mid = start + (stop - start) // 2
            left = make_node(level + 1, start, mid)
            right = make_node(level + 1, mid, stop)
            left.parent = node
            right.parent = node
            node.children = [left, right]
        return node

    root = make_node(0, 0, n)
    tree = ClusterTree(root, cloud)
    tree.validate()
    return tree
