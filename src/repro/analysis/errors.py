"""Accuracy metrics of the paper (Eq. 18 and Eq. 19).

* Construction error: how well the compressed matrix reproduces the action of
  the dense matrix on a random vector,
  ``||A_dense b - A b|| / ||A_dense b||``.
* Solve error: the accuracy of the factorization applied to the compressed
  matrix itself, ``||b - A^{-1} (A b)|| / ||b||``.
"""

from __future__ import annotations

from typing import Callable, Protocol, Union

import numpy as np

__all__ = ["construction_error", "solve_error", "relative_residual"]


class _SupportsMatvec(Protocol):
    def matvec(self, x: np.ndarray) -> np.ndarray: ...


MatvecLike = Union[np.ndarray, _SupportsMatvec, Callable[[np.ndarray], np.ndarray]]


def _apply(op: MatvecLike, x: np.ndarray) -> np.ndarray:
    # Single operator-dispatch point, shared with the solve subsystem (it
    # additionally applies vector-only operators columnwise to RHS blocks).
    from repro.solve.common import apply_operator

    return apply_operator(op, x)


def construction_error(
    dense: MatvecLike,
    compressed: MatvecLike,
    *,
    n: int | None = None,
    b: np.ndarray | None = None,
    seed: int = 0,
) -> float:
    """Relative construction error of Eq. 18.

    Parameters
    ----------
    dense:
        The exact operator (dense array, object with ``matvec`` or callable).
    compressed:
        The compressed operator (e.g. an :class:`~repro.formats.hss.HSSMatrix`).
    n:
        Vector length (required when neither operand is a dense array and
        ``b`` is not given).
    b:
        Probe vector; a standard-normal vector is drawn when omitted.
    seed:
        RNG seed for the probe vector.
    """
    if b is None:
        if n is None:
            if isinstance(dense, np.ndarray):
                n = dense.shape[0]
            elif hasattr(dense, "n"):
                n = dense.n  # type: ignore[union-attr]
            else:
                raise ValueError("provide n or b")
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(n)
    exact = _apply(dense, b)
    approx = _apply(compressed, b)
    denom = np.linalg.norm(exact)
    if denom == 0:
        return float(np.linalg.norm(exact - approx))
    return float(np.linalg.norm(exact - approx) / denom)


def solve_error(
    compressed: MatvecLike,
    solver: Callable[[np.ndarray], np.ndarray],
    *,
    n: int | None = None,
    b: np.ndarray | None = None,
    seed: int = 0,
) -> float:
    """Relative forward/backward solve error of Eq. 19: ``||b - A^{-1}(A b)|| / ||b||``."""
    if b is None:
        if n is None:
            if hasattr(compressed, "n"):
                n = compressed.n  # type: ignore[union-attr]
            elif isinstance(compressed, np.ndarray):
                n = compressed.shape[0]
            else:
                raise ValueError("provide n or b")
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(n)
    ab = _apply(compressed, b)
    recovered = solver(ab)
    return float(np.linalg.norm(b - recovered) / np.linalg.norm(b))


def relative_residual(a: MatvecLike, x: np.ndarray, b: np.ndarray) -> float:
    """``||b - A x|| / ||b||`` for an arbitrary operator and candidate solution."""
    r = b - _apply(a, x)
    return float(np.linalg.norm(r) / np.linalg.norm(b))
