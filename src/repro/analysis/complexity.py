"""Complexity-exponent estimation (the O(N), O(N^2), O(N^3) rows of Table 1).

Given measurements ``y(N)`` (flops, bytes or seconds) over a range of problem
sizes, fit ``y = c * N^p`` in log-log space and report the exponent ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "estimate_complexity_exponent"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a least-squares power-law fit ``y = coefficient * x**exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c x^p`` by linear regression in log-log space.

    Raises
    ------
    ValueError
        If fewer than two points are given or any value is non-positive.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (x, y) pairs")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive values")
    lx, ly = np.log(x), np.log(y)
    p, logc = np.polyfit(lx, ly, 1)
    pred = p * lx + logc
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - np.mean(ly)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(exponent=float(p), coefficient=float(np.exp(logc)), r_squared=r2)


def estimate_complexity_exponent(sizes: Sequence[float], costs: Sequence[float]) -> float:
    """Convenience wrapper returning just the fitted exponent."""
    return fit_power_law(sizes, costs).exponent
