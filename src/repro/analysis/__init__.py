"""Error metrics, complexity fits and scaling analysis."""

from repro.analysis.errors import construction_error, solve_error, relative_residual
from repro.analysis.complexity import fit_power_law, estimate_complexity_exponent
from repro.analysis.scaling import (
    weak_scaling_efficiency,
    parallel_efficiency,
    confidence_interval,
)

__all__ = [
    "construction_error",
    "solve_error",
    "relative_residual",
    "fit_power_law",
    "estimate_complexity_exponent",
    "weak_scaling_efficiency",
    "parallel_efficiency",
    "confidence_interval",
]
