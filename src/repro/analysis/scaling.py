"""Weak/strong scaling metrics and the confidence intervals reported in Sec. 5.2."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
import scipy.stats

__all__ = ["weak_scaling_efficiency", "parallel_efficiency", "confidence_interval"]


def weak_scaling_efficiency(times: Sequence[float]) -> list[float]:
    """Weak-scaling efficiency relative to the first measurement.

    With constant work per process, perfect weak scaling keeps the time
    constant, so efficiency at point ``i`` is ``t[0] / t[i]``.
    """
    times = list(times)
    if not times:
        return []
    if times[0] <= 0:
        raise ValueError("times must be positive")
    return [times[0] / t for t in times]


def parallel_efficiency(times: Sequence[float], procs: Sequence[int]) -> list[float]:
    """Strong-scaling parallel efficiency ``t0 * p0 / (t_i * p_i)``."""
    times = list(times)
    procs = list(procs)
    if len(times) != len(procs) or not times:
        raise ValueError("times and procs must be non-empty and equally long")
    base = times[0] * procs[0]
    return [base / (t * p) for t, p in zip(times, procs)]


def confidence_interval(
    samples: Sequence[float], *, confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Mean and confidence interval of repeated measurements.

    Returns ``(mean, lower, upper)`` using the Student-t distribution, which is
    the 95% CI of the mean reported in the paper's weak-scaling plots.
    """
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    mean = float(np.mean(arr))
    if arr.size == 1:
        return mean, mean, mean
    sem = float(scipy.stats.sem(arr))
    if sem == 0.0:
        return mean, mean, mean
    half = float(sem * scipy.stats.t.ppf(0.5 + confidence / 2.0, arr.size - 1))
    return mean, mean - half, mean + half
