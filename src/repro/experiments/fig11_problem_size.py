"""Fig. 11: increasing problem size with constant resources (64 nodes).

At a fixed node count the HSS-ULV codes should scale as O(N) and LORAPO as
O(N^2); STRUMPACK stays almost flat at small per-process work because its time
is dominated by collective communication, and overtakes HATRIX-DTD at large N
on a limited node count because the DTD graph-discovery overhead grows with
the task count (the paper's closing observation in Sec. 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.fig9_weak_scaling import (
    simulate_hatrix,
    simulate_lorapo,
    simulate_strumpack,
)
from repro.experiments.workloads import KERNEL_RANKS
from repro.runtime.machine import MachineConfig

__all__ = ["ProblemSizeResult", "run_fig11", "format_fig11"]


@dataclass
class ProblemSizeResult:
    """One (code, N) measurement at constant node count."""

    code: str
    n: int
    nodes: int
    time: float


def run_fig11(
    *,
    kernel: str = "yukawa",
    nodes: int = 64,
    sizes: Sequence[int] = (8192, 16384, 32768, 65536, 131072, 262144),
    leaf_size: int = 512,
    lorapo_leaf: int = 2048,
    max_lorapo_blocks: int = 256,
    machine: Optional[MachineConfig] = None,
) -> List[ProblemSizeResult]:
    """Sweep the problem size at a constant node count (paper: 64 nodes of Fugaku).

    LORAPO points whose tile count would exceed ``max_lorapo_blocks`` are
    skipped (the symbolic graph grows with the cube of the tile count); the
    paper similarly stops LORAPO's curve at 65,536.
    """
    rank = KERNEL_RANKS.get(kernel, 100)
    results: List[ProblemSizeResult] = []
    for n in sizes:
        res = simulate_hatrix(n, nodes, leaf_size=leaf_size, rank=rank, machine=machine)
        results.append(ProblemSizeResult("HATRIX-DTD", n, nodes, res.makespan))
        res = simulate_strumpack(n, nodes, leaf_size=leaf_size, rank=rank, machine=machine)
        results.append(ProblemSizeResult("STRUMPACK", n, nodes, res.makespan))
        leaf = min(lorapo_leaf, n // 2)
        if n // leaf <= max_lorapo_blocks:
            res = simulate_lorapo(n, nodes, leaf_size=leaf, rank=min(256, lorapo_leaf // 8), machine=machine)
            results.append(ProblemSizeResult("LORAPO", n, nodes, res.makespan))
    return results


def format_fig11(results: List[ProblemSizeResult]) -> str:
    """Render the Fig. 11 series, including O(N) / O(N^2) reference columns."""
    lines: List[str] = []
    codes = ("LORAPO", "STRUMPACK", "HATRIX-DTD")
    sizes = sorted({r.n for r in results})
    base = {c: next((r.time for r in results if r.code == c and r.n == sizes[0]), None) for c in codes}
    header = f"{'N':<10}" + "".join(f"{c:<14}" for c in codes) + f"{'O(N) ref':<12}{'O(N^2) ref':<12}"
    lines.append(header)
    lines.append("-" * len(header))
    for n in sizes:
        row = f"{n:<10}"
        for c in codes:
            t = next((r.time for r in results if r.code == c and r.n == n), None)
            row += f"{t:<14.4f}" if t is not None else f"{'--':<14}"
        ref_base = base["HATRIX-DTD"] or 1.0
        row += f"{ref_base * n / sizes[0]:<12.4f}{ref_base * (n / sizes[0]) ** 2:<12.4f}"
        lines.append(row)
    return "\n".join(lines)
