"""Compression-phase scaling: task-graph construction vs the sequential build.

After PRs 1-4 the factorize and solve phases already run through the DTD
runtime; this driver measures the *construction* phase doing the same
(:mod:`repro.compress`): for every structured format with a registered
``compress_graph`` it compresses the same kernel matrix on the sequential
reference path and on each requested runtime backend, and reports

* the compression wall time and the speedup over the sequential build --
  both sides measured as best-of-``repeats`` warmed runs, interleaved in
  pairs so machine-speed drift cannot land on one side of the ratio
  (:func:`repro.experiments.timing.best_of_pair`), repeat count stamped
  into every row,
* the number of recorded construction tasks (after fusion, when enabled),
* the concurrency each row *actually* used: ``n_workers`` is 1 for the
  sequential-executor backends (``deferred``, ``distributed``) and ``nodes``
  is 1 for the shared-memory ones,
* for the distributed backend: the measured communication volume and
  whether it matches the static transfer plan exactly,
* a bit-identity verdict against the sequential ``formats.build_*`` output
  (the subsystem's correctness contract).

Run via ``python -m repro compresscale`` or the benchmark harness
(``benchmarks/test_compress_scaling.py``, which records the rows into
``benchmarks/BENCH_runtime.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.compress.verify import compressed_identical
from repro.experiments.timing import best_of_pair
from repro.geometry.points import uniform_grid_2d
from repro.kernels.assembly import KernelMatrix
from repro.kernels.greens import kernel_by_name
from repro.pipeline.policy import ExecutionPolicy
from repro.pipeline.registry import available_formats, get_format
from repro.runtime.distributed import measured_vs_planned_comm

__all__ = ["CompressScalingRow", "run_compress_scaling", "format_compress_scaling"]


@dataclass
class CompressScalingRow:
    """One measured (format, backend) point of the compression sweep."""

    format: str
    backend: str
    nodes: int
    n_workers: int
    wall_seconds: float
    sequential_seconds: float
    speedup: float
    tasks: int
    bit_identical: bool
    comm_messages: int = 0
    comm_bytes: int = 0
    comm_matches_plan: bool = True
    fusion: bool = False
    repeats: int = 1
    # Per-repeat raw wall times behind the best-of figures, in repeat order
    # (the interleaved protocol pairs sample i of both lists back to back).
    sequential_samples: List[float] = field(default_factory=list)
    wall_samples: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": self.format,
            "backend": self.backend,
            "nodes": self.nodes,
            "n_workers": self.n_workers,
            "wall_seconds": self.wall_seconds,
            "sequential_seconds": self.sequential_seconds,
            "speedup": self.speedup,
            "tasks": self.tasks,
            "bit_identical": self.bit_identical,
            "comm_messages": self.comm_messages,
            "comm_bytes": self.comm_bytes,
            "comm_matches_plan": self.comm_matches_plan,
            "fusion": self.fusion,
            "repeats": self.repeats,
            "sequential_samples": self.sequential_samples,
            "wall_samples": self.wall_samples,
        }


def run_compress_scaling(
    *,
    n: int = 1024,
    kernel: str = "yukawa",
    leaf_size: int = 128,
    max_rank: int = 30,
    formats: Optional[Sequence[str]] = None,
    backends: Sequence[str] = ("deferred", "parallel", "distributed"),
    n_workers: int = 4,
    nodes: int = 2,
    fusion: Optional[bool] = None,
    repeats: int = 3,
    seed: int = 0,
) -> Dict[str, object]:
    """Measure the compression phase for every (format, backend) pair.

    The kernel matrix is assembled once; each format is first built on the
    sequential reference path (the speedup baseline and the bit-identity
    oracle), then once per runtime backend through its registered
    ``compress_graph``.  Both sides take the best of ``repeats`` warmed
    runs, interleaved per backend so drift hits baseline and contender alike.
    ``fusion`` toggles record-time task fusion/batching of the graphs
    (``None``: fused exactly where required, i.e. the ``process`` backend).
    """
    kmat = KernelMatrix(kernel_by_name(kernel), uniform_grid_2d(n))
    names = tuple(formats) if formats else tuple(
        f for f in available_formats() if get_format(f).compress_graph is not None
    )

    rows: List[CompressScalingRow] = []
    for name in names:
        spec = get_format(name)

        for backend in backends:
            policy = ExecutionPolicy(
                backend=backend,
                n_workers=n_workers,
                nodes=nodes if backend == "distributed" else 1,
                fusion=fusion,
            )
            # The reference build is re-timed interleaved with every backend
            # (not once per format): on a drifting machine a block of
            # baseline timings taken minutes before the graph timings would
            # put all the drift on one side of the speedup.
            pair = best_of_pair(
                lambda: spec.build(
                    kmat, leaf_size=leaf_size, max_rank=max_rank, tol=None,
                    method=None, seed=seed,
                ),
                lambda: spec.compress_graph(
                    kmat, leaf_size=leaf_size, max_rank=max_rank, tol=None,
                    method=None, seed=seed, policy=policy,
                ),
                repeats=repeats,
            )
            t_seq, reference, wall, (matrix, rt) = pair

            comm_messages = comm_bytes = 0
            comm_matches = True
            if backend == "distributed":
                measured, planned = measured_vs_planned_comm(
                    rt.graph, rt.last_distributed_report, policy.nodes
                )
                comm_messages, comm_bytes = measured
                comm_matches = measured == planned

            rows.append(
                CompressScalingRow(
                    format=name,
                    backend=backend,
                    nodes=policy.nodes,
                    # Actual concurrency: deferred runs in-order in the parent
                    # and distributed runs one in-order executor per node.
                    n_workers=n_workers if backend in ("parallel", "process") else 1,
                    wall_seconds=wall,
                    sequential_seconds=t_seq,
                    speedup=t_seq / wall if wall > 0 else float("inf"),
                    tasks=rt.num_tasks,
                    bit_identical=compressed_identical(name, reference, matrix),
                    comm_messages=comm_messages,
                    comm_bytes=comm_bytes,
                    comm_matches_plan=comm_matches,
                    fusion=policy.fusion_enabled,
                    repeats=repeats,
                    sequential_samples=pair.baseline_samples,
                    wall_samples=pair.candidate_samples,
                )
            )
    return {
        "n": n,
        "kernel": kernel,
        "leaf_size": leaf_size,
        "max_rank": max_rank,
        "n_workers": n_workers,
        "nodes": nodes,
        "repeats": repeats,
        "rows": rows,
    }


def format_compress_scaling(result: Dict[str, object]) -> str:
    """Render the sweep as the table ``python -m repro compresscale`` prints."""
    lines = [
        f"Compression scaling: kernel={result['kernel']} n={result['n']} "
        f"leaf_size={result['leaf_size']} max_rank={result['max_rank']} "
        f"workers={result['n_workers']} nodes={result['nodes']} "
        f"repeats={result.get('repeats', 1)}",
        "(task-graph construction vs the sequential formats.build_* reference, "
        "paired best-of-N warmed timings)",
        "",
        f"{'format':>8} {'backend':>12} {'tasks':>6} {'fused':>5} {'seq [s]':>9} "
        f"{'wall [s]':>9} {'speedup':>8} {'msgs':>6} {'comm MB':>9} {'identical':>10}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row.format:>8} {row.backend:>12} {row.tasks:>6d} "
            f"{'yes' if row.fusion else 'no':>5} "
            f"{row.sequential_seconds:>9.4f} {row.wall_seconds:>9.4f} "
            f"{row.speedup:>8.2f} {row.comm_messages:>6d} "
            f"{row.comm_bytes / 1e6:>9.3f} "
            f"{'yes' if row.bit_identical else 'NO':>10}"
        )
    return "\n".join(lines)
