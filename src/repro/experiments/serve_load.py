"""HTTP serving load generator: concurrent clients against the solver server.

The end-to-end counterpart of :mod:`repro.experiments.solve_throughput`: that
driver measures the :class:`~repro.service.SolverService` in-process, this one
measures the whole serving stack -- HTTP parse, auth, ticket queue, the
background batching flush loop, JSON marshalling -- by booting a
:class:`~repro.service.http_server.SolverHTTPServer` and driving it with
``clients`` concurrent keep-alive connections issuing blocking
``POST /v1/solve`` requests.

Every served solution is checked **bit-identical** to the sequential
reference solve of the same right-hand side (the service solves with
``panel_size=1``, whose per-column batched solves are exactly the single-RHS
reference solves), so the load test doubles as a correctness gate: no ticket
may be lost, duplicated or silently wrong under concurrency.

The resulting end-to-end solves/sec rows land in ``BENCH_runtime.json``
under the gated ``serve_load`` section (see
:data:`repro.obs.trajectory.SERVE_SECTION`).

Run as a module against an already-running server (the CI smoke job)::

    python -m repro.experiments.serve_load --host 127.0.0.1 --port 8080 \\
        --clients 4 --requests 8 --expect-429 --expect-503
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.service import FactorKey, SolverService
from repro.service.http_server import SolverHTTPServer

__all__ = [
    "ServeLoadRow",
    "drive_concurrent_clients",
    "run_serve_load",
    "format_serve_load",
]


@dataclass
class ServeLoadRow:
    """One measured (backend, clients) point of the serving load sweep."""

    format: str
    backend: str
    clients: int
    requests: int
    wall_seconds: float
    solves_per_sec: float
    errors: int
    status_counts: Dict[str, int]
    bit_identical: bool
    n: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": self.format,
            "backend": self.backend,
            "clients": self.clients,
            "requests": self.requests,
            "wall_seconds": self.wall_seconds,
            "solves_per_sec": self.solves_per_sec,
            "errors": self.errors,
            "status_counts": dict(self.status_counts),
            "bit_identical": self.bit_identical,
            "n": self.n,
        }


def _post_json(
    conn: http.client.HTTPConnection,
    path: str,
    doc: Dict[str, Any],
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, Any]]:
    body = json.dumps(doc).encode()
    conn.request("POST", path, body=body, headers=headers or {})
    resp = conn.getresponse()
    raw = resp.read()
    try:
        payload = json.loads(raw) if raw else {}
    except ValueError:
        payload = {"raw": raw.decode("latin-1", "replace")}
    return resp.status, payload


def _get_json(
    conn: http.client.HTTPConnection,
    path: str,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, Any]]:
    conn.request("GET", path, headers=headers or {})
    resp = conn.getresponse()
    raw = resp.read()
    try:
        payload = json.loads(raw) if raw else {}
    except ValueError:
        payload = {"raw": raw.decode("latin-1", "replace")}
    return resp.status, payload


def drive_concurrent_clients(
    host: str,
    port: int,
    *,
    rhs: np.ndarray,
    kernel: str,
    n: int,
    leaf_size: int,
    max_rank: int,
    format_name: str = "hss",
    clients: int = 4,
    api_key: Optional[str] = None,
    timeout: float = 60.0,
) -> Dict[str, Any]:
    """Fan the columns of ``rhs`` across ``clients`` concurrent connections.

    Each client thread owns one keep-alive connection and serially POSTs its
    share of ``/v1/solve`` requests.  Returns the wall time of the whole
    storm, per-status counts, and the solutions (``None`` where a request
    did not return 200) in column order.
    """
    total = rhs.shape[1]
    headers = {"x-api-key": api_key} if api_key else {}
    solutions: List[Optional[np.ndarray]] = [None] * total
    status_counts: Dict[str, int] = {}
    counts_lock = threading.Lock()

    def worker(client_index: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            for j in range(client_index, total, clients):
                doc = {
                    "b": rhs[:, j].tolist(),
                    "kernel": kernel,
                    "n": n,
                    "leaf_size": leaf_size,
                    "max_rank": max_rank,
                    "format": format_name,
                }
                try:
                    status, payload = _post_json(conn, "/v1/solve", doc, headers)
                except (OSError, http.client.HTTPException) as exc:
                    with counts_lock:
                        status_counts[f"exc:{type(exc).__name__}"] = (
                            status_counts.get(f"exc:{type(exc).__name__}", 0) + 1
                        )
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=timeout)
                    continue
                with counts_lock:
                    status_counts[str(status)] = status_counts.get(str(status), 0) + 1
                if status == 200:
                    solutions[j] = np.asarray(payload["x"], dtype=np.float64)
        finally:
            conn.close()

    threads = [threading.Thread(target=worker, args=(c,)) for c in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return {
        "wall_seconds": wall,
        "status_counts": status_counts,
        "solutions": solutions,
    }


def run_serve_load(
    *,
    n: int = 256,
    kernel: str = "yukawa",
    leaf_size: int = 64,
    max_rank: int = 20,
    format_name: str = "hss",
    backends: Tuple[str, ...] = ("sequential", "parallel"),
    clients: int = 4,
    requests_per_client: int = 4,
    n_workers: int = 4,
    flush_interval: float = 0.01,
    seed: int = 0,
) -> Dict[str, Any]:
    """Boot a server per backend, drive it concurrently, verify bit-identity.

    The service solves with ``panel_size=1`` so every served column is
    bit-identical to the sequential reference solve of that column -- the
    acceptance criterion of the serving layer.  Returns the problem
    description plus one :class:`ServeLoadRow` per backend.
    """
    rng = np.random.default_rng(seed)
    total = clients * requests_per_client
    rhs = rng.standard_normal((n, total))
    key = FactorKey.make(
        kernel, n, leaf_size=leaf_size, max_rank=max_rank, format=format_name
    )

    # Per-column sequential reference solutions (the bit-identity oracle).
    ref_service = SolverService(backend="reference")
    ref_service.solver_for(key)
    reference = [
        ref_service.solve(
            rhs[:, j], kernel=kernel, n=n, leaf_size=leaf_size,
            max_rank=max_rank, format=format_name,
        )
        for j in range(total)
    ]

    rows: List[ServeLoadRow] = []
    for backend in backends:
        service = SolverService(
            backend=backend,
            n_workers=n_workers,
            panel_size=None if backend == "reference" else 1,
        )
        service.solver_for(key)  # warm: measure serving, not factorization
        server = SolverHTTPServer(
            service, flush_interval=flush_interval, max_pending=4 * total,
            request_timeout=120.0,
        )
        host, port = server.start_in_thread()
        try:
            outcome = drive_concurrent_clients(
                host, port,
                rhs=rhs, kernel=kernel, n=n, leaf_size=leaf_size,
                max_rank=max_rank, format_name=format_name, clients=clients,
            )
        finally:
            server.shutdown()
            server.join(10)
        solutions = outcome["solutions"]
        solved = [x for x in solutions if x is not None]
        bit_identical = len(solved) == total and all(
            np.array_equal(x, ref) for x, ref in zip(solutions, reference)
        )
        wall = outcome["wall_seconds"]
        rows.append(
            ServeLoadRow(
                format=format_name,
                backend=backend,
                clients=clients,
                requests=total,
                wall_seconds=wall,
                solves_per_sec=len(solved) / wall if wall > 0 else float("inf"),
                errors=total - len(solved),
                status_counts=outcome["status_counts"],
                bit_identical=bit_identical,
                n=n,
            )
        )
    return {
        "n": n,
        "format": format_name,
        "kernel": kernel,
        "leaf_size": leaf_size,
        "max_rank": max_rank,
        "clients": clients,
        "requests": total,
        "rows": rows,
    }


def format_serve_load(result: Dict[str, Any]) -> str:
    """Render the serving load sweep as a printable table."""
    lines = [
        f"HTTP serving load: format={result['format']} kernel={result['kernel']} "
        f"n={result['n']} leaf_size={result['leaf_size']} "
        f"max_rank={result['max_rank']} clients={result['clients']} "
        f"requests={result['requests']}",
        "(concurrent keep-alive clients, blocking POST /v1/solve, "
        "panel_size=1 bit-identity vs the sequential reference)",
        "",
        f"{'backend':>12} {'clients':>8} {'wall [s]':>10} {'solves/s':>10} "
        f"{'errors':>7} {'bit-identical':>14}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row.backend:>12} {row.clients:>8d} {row.wall_seconds:>10.4f} "
            f"{row.solves_per_sec:>10.1f} {row.errors:>7d} "
            f"{str(row.bit_identical):>14}"
        )
    return "\n".join(lines)


def _probe_admission_control(
    host: str,
    port: int,
    *,
    n: int,
    kernel: str,
    leaf_size: int,
    max_rank: int,
    bursts: int = 24,
    api_key: Optional[str] = None,
) -> Dict[str, int]:
    """Fire a rapid burst of ``/v1/submit`` requests and tally the statuses.

    Against a server configured with a small rate limit and ``max_pending``,
    the burst must surface both admission-control rejections: 503 once the
    queue is full (backpressure) and 429 once the token bucket drains.
    Accepted tickets are polled to completion afterwards so the probe leaves
    no dangling work.
    """
    rng = np.random.default_rng(1)
    headers = {"x-api-key": api_key} if api_key else {}
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    counts: Dict[str, int] = {}
    accepted: List[str] = []
    try:
        for _ in range(bursts):
            doc = {
                "b": rng.standard_normal(n).tolist(),
                "kernel": kernel,
                "n": n,
                "leaf_size": leaf_size,
                "max_rank": max_rank,
            }
            status, payload = _post_json(conn, "/v1/submit", doc, headers)
            counts[str(status)] = counts.get(str(status), 0) + 1
            if status == 202:
                accepted.append(payload["id"])
        # Drain the accepted tickets (poll until resolved or timeout).
        deadline = time.monotonic() + 60.0
        for ticket_id in accepted:
            while time.monotonic() < deadline:
                status, payload = _get_json(
                    conn, f"/v1/tickets/{ticket_id}", headers
                )
                if status != 200 or payload.get("status") != "pending":
                    break
                time.sleep(0.1)
    finally:
        conn.close()
    return counts


def main(argv: Optional[List[str]] = None) -> int:
    """Drive an already-running server (the CI smoke job's client side)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="concurrent-client load generator for `repro serve`"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--kernel", default="yukawa")
    parser.add_argument("--leaf-size", type=int, default=64)
    parser.add_argument("--max-rank", type=int, default=20)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=8, help="total solve requests")
    parser.add_argument("--api-key", default=None)
    parser.add_argument(
        "--expect-429",
        action="store_true",
        help="burst-probe admission control and require at least one 429",
    )
    parser.add_argument(
        "--expect-503",
        action="store_true",
        help="burst-probe admission control and require at least one 503",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(0)
    rhs = rng.standard_normal((args.n, args.requests))
    ref = SolverService(backend="reference")
    reference = [
        ref.solve(
            rhs[:, j], kernel=args.kernel, n=args.n,
            leaf_size=args.leaf_size, max_rank=args.max_rank,
        )
        for j in range(args.requests)
    ]

    outcome = drive_concurrent_clients(
        args.host, args.port,
        rhs=rhs, kernel=args.kernel, n=args.n, leaf_size=args.leaf_size,
        max_rank=args.max_rank, clients=args.clients, api_key=args.api_key,
    )
    solved = [x for x in outcome["solutions"] if x is not None]
    identical = sum(
        1
        for x, r in zip(outcome["solutions"], reference)
        if x is not None and np.array_equal(x, r)
    )
    print(
        f"solve storm: {len(solved)}/{args.requests} served in "
        f"{outcome['wall_seconds']:.3f}s, statuses {outcome['status_counts']}, "
        f"{identical}/{len(solved)} bit-identical to the reference",
        flush=True,
    )
    failures = []
    if solved and identical != len(solved):
        failures.append(f"only {identical}/{len(solved)} solutions bit-identical")
    if not solved:
        failures.append("no request was served at all")

    if args.expect_429 or args.expect_503:
        counts = _probe_admission_control(
            args.host, args.port,
            n=args.n, kernel=args.kernel, leaf_size=args.leaf_size,
            max_rank=args.max_rank, api_key=args.api_key,
        )
        print(f"admission-control probe: statuses {counts}", flush=True)
        if args.expect_429 and not counts.get("429"):
            failures.append(f"expected at least one 429, got {counts}")
        if args.expect_503 and not counts.get("503"):
            failures.append(f"expected at least one 503, got {counts}")

    for failure in failures:
        print(f"FAIL: {failure}", flush=True)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    raise SystemExit(main())
