"""Fig. 12: impact of the leaf size at 128 nodes and N = 262,144 (Yukawa).

The leaf size of the HSS matrix corresponds to the front size in a
multi-frontal solver, so the paper studies how sensitive each code is to it:
HATRIX-DTD is fastest at small leaf sizes (lots of leaf-level parallelism) and
degrades at large leaf sizes (less parallelism, more work per task), while
LORAPO prefers a mid-range leaf size and STRUMPACK is comparatively flat.
The HSS rank is fixed at 100; LORAPO's max rank is half its leaf size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.fig9_weak_scaling import (
    simulate_hatrix,
    simulate_lorapo,
    simulate_strumpack,
)
from repro.runtime.machine import MachineConfig

__all__ = ["LeafSizeResult", "run_fig12", "format_fig12"]


@dataclass
class LeafSizeResult:
    """One (code, leaf size) measurement."""

    code: str
    leaf_size: int
    n: int
    nodes: int
    time: float


def run_fig12(
    *,
    n: int = 262144,
    nodes: int = 128,
    leaf_sizes: Sequence[int] = (512, 1024, 2048, 4096, 8192),
    hss_rank: int = 100,
    max_lorapo_blocks: int = 256,
    lorapo_effective_rank_fraction: float = 0.125,
    machine: Optional[MachineConfig] = None,
) -> List[LeafSizeResult]:
    """Sweep the leaf size at constant problem size and node count.

    LORAPO's effective tile rank is modelled as
    ``lorapo_effective_rank_fraction * leaf_size`` (its max rank in the paper
    is half the leaf size; adaptive compression to 1e-8 uses well below the cap).
    LORAPO points whose tile count exceeds ``max_lorapo_blocks`` are skipped
    to bound the symbolic graph size.
    """
    results: List[LeafSizeResult] = []
    for leaf in leaf_sizes:
        if leaf >= n:
            continue
        results.append(
            LeafSizeResult(
                "HATRIX-DTD", leaf, n, nodes,
                simulate_hatrix(n, nodes, leaf_size=leaf, rank=min(hss_rank, leaf), machine=machine).makespan,
            )
        )
        results.append(
            LeafSizeResult(
                "STRUMPACK", leaf, n, nodes,
                simulate_strumpack(n, nodes, leaf_size=leaf, rank=min(hss_rank, leaf), machine=machine).makespan,
            )
        )
        if n // leaf <= max_lorapo_blocks:
            lorapo_rank = max(int(leaf * lorapo_effective_rank_fraction), 1)
            results.append(
                LeafSizeResult(
                    "LORAPO", leaf, n, nodes,
                    simulate_lorapo(n, nodes, leaf_size=leaf, rank=lorapo_rank, machine=machine).makespan,
                )
            )
    return results


def format_fig12(results: List[LeafSizeResult]) -> str:
    """Render the leaf-size sweep as one column per code."""
    lines: List[str] = []
    codes = ("LORAPO", "STRUMPACK", "HATRIX-DTD")
    leaves = sorted({r.leaf_size for r in results})
    header = f"{'Leaf size':<12}" + "".join(f"{c:<14}" for c in codes)
    lines.append(header)
    lines.append("-" * len(header))
    for leaf in leaves:
        row = f"{leaf:<12}"
        for c in codes:
            t = next((r.time for r in results if r.code == c and r.leaf_size == leaf), None)
            row += f"{t:<14.4f}" if t is not None else f"{'--':<14}"
        lines.append(row)
    return "\n".join(lines)
