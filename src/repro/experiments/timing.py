"""Warmed best-of-N timing shared by the experiment drivers and benchmarks.

Every speedup the repository reports divides two wall times; measuring the
baseline once and cold (first-touch allocation, lazy imports, BLAS thread
spin-up) while the contender runs warm systematically inflates the ratio.
These helpers make both sides of every comparison use the same protocol:
``repeats`` fresh runs, best (minimum) wall time, repeat count stamped into
the record.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Optional, Tuple

__all__ = ["bench_repeats", "best_of", "best_of_pair"]

_REPEATS_ENV = "REPRO_BENCH_REPEATS"


def bench_repeats(default: int = 3) -> int:
    """Timing repeats per measurement (override with ``REPRO_BENCH_REPEATS``)."""
    raw = os.environ.get(_REPEATS_ENV)
    if not raw:
        return default
    value = int(raw)
    if value <= 0:
        raise ValueError(f"{_REPEATS_ENV} must be a positive integer, got {raw!r}")
    return value


def best_of(
    run: Callable[..., Any], *, repeats: int = 3, setup: Optional[Callable[[], Any]] = None
) -> Tuple[float, Any]:
    """Best-of-``repeats`` wall time of ``run`` over fresh states.

    Each repeat optionally calls ``setup`` (untimed -- e.g. recording a fresh
    task graph, since an executed graph cannot run again) and times one call
    of ``run`` (receiving ``setup``'s return value when given).  Returns
    ``(best_seconds, last_result)``: the minimum discards cold-start effects,
    the last repeat's result serves the caller's correctness checks.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: Any = None
    for _ in range(repeats):
        state = setup() if setup is not None else None
        t0 = time.perf_counter()
        result = run(state) if setup is not None else run()
        best = min(best, time.perf_counter() - t0)
    return best, result


def best_of_pair(
    baseline: Callable[[], Any],
    candidate: Callable[[], Any],
    *,
    repeats: int = 3,
) -> Tuple[float, Any, float, Any]:
    """Best-of-``repeats`` wall times of two callables, interleaved.

    Timing all baseline repeats in one block and all candidate repeats in
    another lets machine-speed drift (shared tenancy, frequency scaling)
    land entirely on one side of the ratio; interleaving pairs each baseline
    run with an adjacent candidate run so a slow epoch penalizes both.
    Returns ``(best_baseline, last_baseline_result, best_candidate,
    last_candidate_result)``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best_base = best_cand = float("inf")
    base_result: Any = None
    cand_result: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        base_result = baseline()
        best_base = min(best_base, time.perf_counter() - t0)
        t0 = time.perf_counter()
        cand_result = candidate()
        best_cand = min(best_cand, time.perf_counter() - t0)
    return best_base, base_result, best_cand, cand_result
