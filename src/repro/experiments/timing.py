"""Warmed best-of-N timing shared by the experiment drivers and benchmarks.

Every speedup the repository reports divides two wall times; measuring the
baseline once and cold (first-touch allocation, lazy imports, BLAS thread
spin-up) while the contender runs warm systematically inflates the ratio.
These helpers make both sides of every comparison use the same protocol:
``repeats`` fresh runs, best (minimum) wall time, repeat count stamped into
the record.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "bench_repeats",
    "best_of",
    "best_of_pair",
    "TimingResult",
    "PairTimingResult",
]

_REPEATS_ENV = "REPRO_BENCH_REPEATS"


def bench_repeats(default: int = 3) -> int:
    """Timing repeats per measurement (override with ``REPRO_BENCH_REPEATS``)."""
    raw = os.environ.get(_REPEATS_ENV)
    if not raw:
        return default
    value = int(raw)
    if value <= 0:
        raise ValueError(f"{_REPEATS_ENV} must be a positive integer, got {raw!r}")
    return value


class TimingResult(tuple):
    """The ``(best_seconds, last_result)`` pair of :func:`best_of`.

    Unpacks exactly like the 2-tuple it always was; additionally carries the
    per-repeat raw wall times as :attr:`samples`, so bench artifacts can
    record the full evidence behind every "best" claim.
    """

    samples: List[float]

    def __new__(cls, best: float, result: Any, samples: List[float]) -> "TimingResult":
        self = super().__new__(cls, (best, result))
        self.samples = list(samples)
        return self


class PairTimingResult(tuple):
    """The 4-tuple of :func:`best_of_pair`, plus both sides' raw samples.

    Unpacks as ``(best_baseline, baseline_result, best_candidate,
    candidate_result)``; :attr:`baseline_samples` / :attr:`candidate_samples`
    hold the per-repeat wall times in repeat order (interleaved protocol:
    sample ``i`` of both lists ran back to back).
    """

    baseline_samples: List[float]
    candidate_samples: List[float]

    def __new__(
        cls,
        best_base: float,
        base_result: Any,
        best_cand: float,
        cand_result: Any,
        baseline_samples: List[float],
        candidate_samples: List[float],
    ) -> "PairTimingResult":
        self = super().__new__(cls, (best_base, base_result, best_cand, cand_result))
        self.baseline_samples = list(baseline_samples)
        self.candidate_samples = list(candidate_samples)
        return self


def best_of(
    run: Callable[..., Any], *, repeats: int = 3, setup: Optional[Callable[[], Any]] = None
) -> TimingResult:
    """Best-of-``repeats`` wall time of ``run`` over fresh states.

    Each repeat optionally calls ``setup`` (untimed -- e.g. recording a fresh
    task graph, since an executed graph cannot run again) and times one call
    of ``run`` (receiving ``setup``'s return value when given).  Returns a
    :class:`TimingResult` unpacking as ``(best_seconds, last_result)``: the
    minimum discards cold-start effects, the last repeat's result serves the
    caller's correctness checks, and ``.samples`` carries every repeat's raw
    wall time for auditability.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    samples: List[float] = []
    result: Any = None
    for _ in range(repeats):
        state = setup() if setup is not None else None
        t0 = time.perf_counter()
        result = run(state) if setup is not None else run()
        samples.append(time.perf_counter() - t0)
    return TimingResult(min(samples), result, samples)


def best_of_pair(
    baseline: Callable[[], Any],
    candidate: Callable[[], Any],
    *,
    repeats: int = 3,
) -> PairTimingResult:
    """Best-of-``repeats`` wall times of two callables, interleaved.

    Timing all baseline repeats in one block and all candidate repeats in
    another lets machine-speed drift (shared tenancy, frequency scaling)
    land entirely on one side of the ratio; interleaving pairs each baseline
    run with an adjacent candidate run so a slow epoch penalizes both.
    Returns a :class:`PairTimingResult` unpacking as ``(best_baseline,
    last_baseline_result, best_candidate, last_candidate_result)``, with the
    per-repeat raw samples on ``.baseline_samples`` / ``.candidate_samples``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    base_samples: List[float] = []
    cand_samples: List[float] = []
    base_result: Any = None
    cand_result: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        base_result = baseline()
        base_samples.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        cand_result = candidate()
        cand_samples.append(time.perf_counter() - t0)
    return PairTimingResult(
        min(base_samples), base_result, min(cand_samples), cand_result,
        base_samples, cand_samples,
    )
