"""Measured vs simulated weak scaling of the distributed HSS-ULV factorization.

For each node count ``P`` the problem size grows proportionally
(``n = base_n * P``, the paper's weak-scaling protocol, Fig. 9) and the *same*
recorded task graph is both

* executed for real on the multi-process distributed backend (``P`` forked
  worker processes, owner-computes placement, explicit data transfers), and
* replayed through the discrete-event machine simulator,

so the measured makespan and communication volume can be cross-validated
against the model.  Each configuration runs under every requested distribution
strategy (row-cyclic vs block-cyclic), exposing how placement alone changes
the communication volume of an identical DAG, and under every requested data
plane (zero-copy ``"shm"`` vs legacy ``"pickle"``), exposing the physical
byte savings of the shared-memory plane on an identical transfer plan: the
*logical* volume of a row is invariant across planes, the *physical* (wire)
bytes collapse to descriptor size under ``"shm"``.

Used by ``python -m repro weakscale`` and
``benchmarks/test_runtime_distributed_scaling.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.hss_ulv_dtd import hss_ulv_factorize_dtd
from repro.distribution.strategies import strategy_by_name
from repro.formats.hss import build_hss
from repro.geometry.points import uniform_grid_2d
from repro.kernels.assembly import KernelMatrix
from repro.kernels.greens import kernel_by_name
from repro.runtime.machine import MachineConfig, laptop_like
from repro.runtime.simulator import simulate

__all__ = [
    "DistributedWeakScalingRow",
    "run_distributed_weak_scaling",
    "format_distributed_weak_scaling",
    "comm_plane_savings",
]


@dataclass
class DistributedWeakScalingRow:
    """One (strategy, node-count, data-plane) configuration: measured vs modelled."""

    distribution: str
    nodes: int
    n: int
    num_tasks: int
    measured_seconds: float
    simulated_makespan: float
    measured_messages: int
    measured_bytes: int
    modeled_bytes: float
    data_plane: str = "shm"
    physical_bytes: int = 0
    mapped_bytes: int = 0

    @property
    def comm_bytes_match(self) -> bool:
        """Measured *logical* volume agrees with the graph's static model.

        Holds on every data plane: the plane changes the wire representation
        (``physical_bytes``), never the modelled volume (``measured_bytes``).
        """
        return abs(self.measured_bytes - self.modeled_bytes) < 0.5


def run_distributed_weak_scaling(
    *,
    base_n: int = 512,
    node_counts: Sequence[int] = (1, 2, 4),
    kernel: str = "yukawa",
    leaf_size: int = 64,
    max_rank: int = 24,
    distributions: Sequence[str] = ("row", "block"),
    data_planes: Sequence[str] = ("shm", "pickle"),
    machine: Optional[MachineConfig] = None,
) -> List[DistributedWeakScalingRow]:
    """Run the weak-scaling sweep on the real backend and the simulator.

    ``machine`` defaults to a one-core-per-node laptop preset so the simulated
    topology matches the real backend (one single-threaded worker process per
    node).  Each (distribution, nodes) configuration builds its HSS matrix
    once and factorizes once per requested data plane, so the per-plane rows
    differ only in the wire representation of an identical transfer plan.
    """
    rows: List[DistributedWeakScalingRow] = []
    for dist_name in distributions:
        for nodes in node_counts:
            n = base_n * nodes
            points = uniform_grid_2d(n)
            kmat = KernelMatrix(kernel_by_name(kernel), points)
            hss = build_hss(kmat, leaf_size=leaf_size, max_rank=max_rank)
            strategy = strategy_by_name(dist_name, nodes, max_level=hss.max_level)

            for plane in data_planes:
                t0 = time.perf_counter()
                _, rt = hss_ulv_factorize_dtd(
                    hss, execution="distributed", nodes=nodes,
                    distribution=strategy, data_plane=plane,
                )
                measured = time.perf_counter() - t0
                report = rt.last_distributed_report

                mach = machine if machine is not None else laptop_like(nodes, cores_per_node=1)
                sim = simulate(
                    rt.graph, mach.with_nodes(nodes), policy="async", distribution=strategy
                )

                rows.append(
                    DistributedWeakScalingRow(
                        distribution=dist_name,
                        nodes=nodes,
                        n=n,
                        num_tasks=rt.num_tasks,
                        measured_seconds=measured,
                        simulated_makespan=sim.makespan,
                        measured_messages=report.ledger.num_messages,
                        measured_bytes=report.ledger.total_bytes,
                        modeled_bytes=rt.graph.communication_bytes(),
                        data_plane=report.data_plane,
                        physical_bytes=report.ledger.total_payload_bytes,
                        mapped_bytes=report.ledger.total_mapped_bytes,
                    )
                )
    return rows


def comm_plane_savings(
    rows: Sequence[DistributedWeakScalingRow],
) -> Dict[Tuple[str, int], float]:
    """Physical-byte savings factor of the shm plane per (distribution, nodes).

    ``pickle_physical / shm_physical`` for every multi-node configuration
    measured under both planes -- the quantity the trajectory gate asserts
    stays >= its floor.  Single-node rows (no transfers) are skipped.
    """
    physical: Dict[Tuple[str, int, str], int] = {}
    for r in rows:
        physical[(r.distribution, r.nodes, r.data_plane)] = r.physical_bytes
    savings: Dict[Tuple[str, int], float] = {}
    for (dist, nodes, plane), nbytes in physical.items():
        if plane != "shm" or nodes <= 1:
            continue
        pickle_bytes = physical.get((dist, nodes, "pickle"))
        if pickle_bytes is None:
            continue
        savings[(dist, nodes)] = pickle_bytes / max(nbytes, 1)
    return savings


def format_distributed_weak_scaling(rows: List[DistributedWeakScalingRow]) -> str:
    """Format the sweep as a fixed-width table."""
    if not rows:
        return "no weak-scaling configurations ran (check --max-nodes / node_counts)"
    lines = [
        f"{'dist':<6} {'nodes':>5} {'N':>7} {'plane':<6} {'tasks':>6} "
        f"{'measured [s]':>12} {'simulated [s]':>13} {'msgs':>5} "
        f"{'comm [B]':>10} {'wire [B]':>10} {'shm [B]':>10}"
    ]
    for r in rows:
        lines.append(
            f"{r.distribution:<6} {r.nodes:>5} {r.n:>7} {r.data_plane:<6} "
            f"{r.num_tasks:>6} {r.measured_seconds:>12.3f} "
            f"{r.simulated_makespan:>13.3e} {r.measured_messages:>5} "
            f"{r.measured_bytes:>10} {r.physical_bytes:>10} {r.mapped_bytes:>10}"
        )
    mismatched = [r for r in rows if not r.comm_bytes_match]
    lines.append(
        "communication volume: measured == static model (all planes)"
        if not mismatched
        else f"WARNING: {len(mismatched)} row(s) disagree with the static comm model"
    )
    savings = comm_plane_savings(rows)
    for (dist, nodes), factor in sorted(savings.items()):
        lines.append(
            f"zero-copy wire savings {dist}/{nodes} nodes: {factor:.1f}x "
            "(pickle physical / shm physical)"
        )
    return "\n".join(lines)
