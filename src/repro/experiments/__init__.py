"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every driver exposes a ``run_*`` function returning plain data (lists of row
dictionaries) plus a ``format_table`` helper that prints the same rows/series
the paper reports.  The benchmark harness under ``benchmarks/`` and the
examples call into these drivers; ``EXPERIMENTS.md`` records the
paper-reported vs. measured values.
"""

from repro.experiments.workloads import (
    KERNEL_RANKS,
    WeakScalingPoint,
    build_problem,
    hss_weak_scaling_schedule,
    lorapo_weak_scaling_schedule,
)
from repro.experiments.table1_complexity import run_table1, format_table1
from repro.experiments.table2_accuracy import run_table2, format_table2
from repro.experiments.fig9_weak_scaling import run_fig9, format_fig9
from repro.experiments.fig10_breakdown import (
    MeasuredBreakdownRow,
    format_fig10,
    format_fig10_measured,
    run_fig10,
    run_fig10_measured,
)
from repro.experiments.fig11_problem_size import run_fig11, format_fig11
from repro.experiments.fig12_leaf_size import run_fig12, format_fig12
from repro.experiments.parallel_speedup import (
    SpeedupRow,
    format_parallel_speedup,
    run_parallel_speedup,
)
from repro.experiments.distributed_weak_scaling import (
    DistributedWeakScalingRow,
    comm_plane_savings,
    format_distributed_weak_scaling,
    run_distributed_weak_scaling,
)
from repro.experiments.solve_throughput import (
    ThroughputRow,
    format_solve_throughput,
    run_solve_throughput,
)
from repro.experiments.serve_load import (
    ServeLoadRow,
    drive_concurrent_clients,
    format_serve_load,
    run_serve_load,
)
from repro.experiments.compress_scaling import (
    CompressScalingRow,
    format_compress_scaling,
    run_compress_scaling,
)
from repro.experiments.timing import bench_repeats, best_of, best_of_pair

__all__ = [
    "bench_repeats",
    "best_of",
    "best_of_pair",
    "CompressScalingRow",
    "run_compress_scaling",
    "format_compress_scaling",
    "ThroughputRow",
    "run_solve_throughput",
    "format_solve_throughput",
    "ServeLoadRow",
    "run_serve_load",
    "format_serve_load",
    "drive_concurrent_clients",
    "SpeedupRow",
    "run_parallel_speedup",
    "format_parallel_speedup",
    "DistributedWeakScalingRow",
    "run_distributed_weak_scaling",
    "format_distributed_weak_scaling",
    "comm_plane_savings",
    "KERNEL_RANKS",
    "WeakScalingPoint",
    "build_problem",
    "hss_weak_scaling_schedule",
    "lorapo_weak_scaling_schedule",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "run_fig9",
    "format_fig9",
    "run_fig10",
    "format_fig10",
    "MeasuredBreakdownRow",
    "run_fig10_measured",
    "format_fig10_measured",
    "run_fig11",
    "format_fig11",
    "run_fig12",
    "format_fig12",
]
