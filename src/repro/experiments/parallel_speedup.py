"""Sequential vs parallel execution of the recorded ULV task graphs.

The paper's central claim is that the ULV factorization expressed as
``insert_task`` calls runs correctly under out-of-order parallel execution.
This driver measures the actual wall time of the same task graph executed
sequentially and in parallel, for both the HSS-ULV and the BLR2-ULV task
graphs, and verifies the parallel factors are bit-identical to the sequential
ones.  Two parallel backends are supported:

``thread``
    The recorded graph is executed out-of-order on an ``n_workers``-thread
    pool (:meth:`~repro.runtime.dtd.DTDRuntime.run_parallel`); timings cover
    pure execution of an already-recorded graph.
``process``
    The factorization runs on the distributed multi-process backend with
    ``n_workers`` forked worker processes
    (:meth:`~repro.runtime.dtd.DTDRuntime.run_distributed`); timings cover
    recording plus execution for both the sequential and the distributed run
    (the graph must be recorded inside each address-space configuration), and
    the row also reports the measured communication volume.

Used by ``python -m repro speedup [--backend thread|process]`` and by
``benchmarks/test_runtime_parallel_speedup.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.blr2_ulv_dtd import blr2_ulv_factorize_dtd
from repro.core.hodlr_ulv_dtd import hodlr_ulv_factorize_dtd
from repro.core.hss_ulv_dtd import hss_ulv_factorize_dtd
from repro.formats.blr2 import build_blr2
from repro.formats.hodlr import build_hodlr
from repro.formats.hss import build_hss
from repro.geometry.points import uniform_grid_2d
from repro.kernels.assembly import KernelMatrix
from repro.kernels.greens import kernel_by_name

__all__ = ["SpeedupRow", "run_parallel_speedup", "format_parallel_speedup"]


@dataclass
class SpeedupRow:
    """One algorithm's sequential-vs-parallel measurement."""

    algorithm: str
    format: str
    n: int
    num_tasks: int
    n_workers: int
    seq_seconds: float
    par_seconds: float
    max_abs_diff: float
    backend: str = "thread"
    comm_bytes: int = 0

    @property
    def speedup(self) -> float:
        return self.seq_seconds / self.par_seconds if self.par_seconds > 0 else float("inf")


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run_parallel_speedup(
    *,
    n: int = 2048,
    kernel: str = "yukawa",
    leaf_size: int = 256,
    max_rank: int = 60,
    n_workers: int = 4,
    backend: str = "thread",
    seed: int = 0,
) -> List[SpeedupRow]:
    """Measure sequential vs parallel task-graph execution for both formats.

    ``backend`` selects the parallel execution substrate: ``"thread"`` (thread
    pool, shared memory) or ``"process"`` (distributed multi-process backend,
    ``n_workers`` worker processes with owner-computes placement).
    """
    if backend not in ("thread", "process"):
        raise ValueError(f"unknown backend {backend!r}; expected 'thread' or 'process'")
    points = uniform_grid_2d(n)
    kmat = KernelMatrix(kernel_by_name(kernel), points)
    b = np.random.default_rng(seed).standard_normal(n)

    algorithms = (
        ("HSS-ULV", "hss", build_hss, hss_ulv_factorize_dtd),
        ("BLR2-ULV", "blr2", build_blr2, blr2_ulv_factorize_dtd),
        ("HODLR-ULV", "hodlr", build_hodlr, hodlr_ulv_factorize_dtd),
    )
    rows: List[SpeedupRow] = []
    for name, fmt, build, factorize_dtd in algorithms:
        matrix = build(kmat, leaf_size=leaf_size, max_rank=max_rank)
        comm_bytes = 0
        if backend == "thread":
            # Record each graph without executing, so the timings below cover
            # pure execution (insert_task recording cost is identical either way).
            seq_factor, seq_rt = factorize_dtd(matrix, execution="deferred", execute=False)
            par_factor, par_rt = factorize_dtd(matrix, execution="deferred", execute=False)
            t_seq = _timed(seq_rt.run)
            t_par = _timed(lambda: par_rt.run_parallel(n_workers=n_workers))
        else:
            # The distributed backend records and executes in one call (each
            # worker's address space needs the recorded closures), so time the
            # full record+execute path for both runs to keep them comparable.
            seq_holder, par_holder = {}, {}
            t_seq = _timed(
                lambda: seq_holder.update(
                    factor=factorize_dtd(matrix, execution="deferred")[0]
                )
            )
            t_par = _timed(
                lambda: par_holder.update(
                    result=factorize_dtd(matrix, execution="distributed", nodes=n_workers)
                )
            )
            seq_factor = seq_holder["factor"]
            par_factor, par_rt = par_holder["result"]
            comm_bytes = par_rt.last_distributed_report.ledger.total_bytes
        diff = float(np.max(np.abs(par_factor.solve(b) - seq_factor.solve(b))))
        rows.append(
            SpeedupRow(
                algorithm=name,
                format=fmt,
                n=n,
                num_tasks=par_rt.num_tasks,
                n_workers=n_workers,
                seq_seconds=t_seq,
                par_seconds=t_par,
                max_abs_diff=diff,
                backend=backend,
                comm_bytes=comm_bytes,
            )
        )
    return rows


def format_parallel_speedup(rows: List[SpeedupRow]) -> str:
    """Format the measurement as a fixed-width table."""
    lines = [
        f"{'algorithm':<10} {'backend':<8} {'N':>7} {'tasks':>6} {'workers':>7} "
        f"{'seq [s]':>9} {'par [s]':>9} {'speedup':>8} {'comm [B]':>9} {'max diff':>10}"
    ]
    for r in rows:
        lines.append(
            f"{r.algorithm:<10} {r.backend:<8} {r.n:>7} {r.num_tasks:>6} {r.n_workers:>7} "
            f"{r.seq_seconds:>9.3f} {r.par_seconds:>9.3f} {r.speedup:>8.2f} "
            f"{r.comm_bytes:>9} {r.max_abs_diff:>10.2e}"
        )
    return "\n".join(lines)
