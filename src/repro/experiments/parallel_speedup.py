"""Sequential vs parallel execution of the recorded ULV task graphs.

The paper's central claim is that the ULV factorization expressed as
``insert_task`` calls runs correctly under out-of-order parallel execution.
This driver measures the actual wall time of the same task graph executed
sequentially and in parallel, for the HSS-ULV, BLR2-ULV and HODLR-ULV task
graphs, and verifies the parallel factors are bit-identical to the sequential
ones.  Three parallel backends are supported:

``thread``
    The recorded graph is executed out-of-order on an ``n_workers``-thread
    pool (:meth:`~repro.runtime.dtd.DTDRuntime.run_parallel`); timings cover
    pure execution of an already-recorded graph (recording is identical on
    both sides and excluded).
``process``
    The recorded (and, by default, fused) graph is executed on a pool of
    ``n_workers`` forked worker processes through the ``process``
    :class:`~repro.pipeline.policy.ExecutionPolicy` backend; timings cover
    recording plus execution for both sides (the forked workers' address
    spaces need the recorded closures, so recording cannot be hoisted out).
``distributed``
    The factorization runs on the owner-computes multi-process backend with
    ``n_workers`` forked worker processes
    (:meth:`~repro.runtime.dtd.DTDRuntime.run_distributed`); timings cover
    recording plus execution for both sides, and the row also reports the
    measured communication volume.

Both sides of every comparison use best-of-``repeats`` warmed timings over
fresh graphs (:func:`repro.experiments.timing.best_of`); the sequential
baseline is always the plain in-order execution of the *unfused* graph, the
reference the paper's speedups are defined against.  ``fusion`` toggles
record-time task fusion/batching of the parallel side (``None``: fused
exactly where required, i.e. the ``process`` backend).

Used by ``python -m repro speedup [--backend thread|process|distributed]``
and by ``benchmarks/test_runtime_parallel_speedup.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.blr2_ulv_dtd import blr2_ulv_factorize_dtd
from repro.core.hodlr_ulv_dtd import hodlr_ulv_factorize_dtd
from repro.core.hss_ulv_dtd import hss_ulv_factorize_dtd
from repro.experiments.timing import best_of
from repro.formats.blr2 import build_blr2
from repro.formats.hodlr import build_hodlr
from repro.formats.hss import build_hss
from repro.geometry.points import uniform_grid_2d
from repro.kernels.assembly import KernelMatrix
from repro.kernels.greens import kernel_by_name

__all__ = ["SpeedupRow", "run_parallel_speedup", "format_parallel_speedup"]

_BACKENDS = ("thread", "process", "distributed")


@dataclass
class SpeedupRow:
    """One algorithm's sequential-vs-parallel measurement.

    ``n_workers`` is the concurrency the parallel run *actually used* (the
    executor spawns at most one worker per task); ``requested_workers`` is
    what the caller asked for.  ``nodes`` is the forked-process count of the
    distributed backend (1 for the shared-memory backends).
    ``seq_samples`` / ``par_samples`` are the per-repeat raw wall times
    behind the best-of ``seq_seconds`` / ``par_seconds``, in repeat order.
    """

    algorithm: str
    format: str
    n: int
    num_tasks: int
    n_workers: int
    seq_seconds: float
    par_seconds: float
    max_abs_diff: float
    backend: str = "thread"
    comm_bytes: int = 0
    requested_workers: int = 0
    nodes: int = 1
    fusion: bool = False
    repeats: int = 1
    seq_samples: List[float] = field(default_factory=list)
    par_samples: List[float] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.seq_seconds / self.par_seconds if self.par_seconds > 0 else float("inf")


def run_parallel_speedup(
    *,
    n: int = 2048,
    kernel: str = "yukawa",
    leaf_size: int = 256,
    max_rank: int = 60,
    n_workers: int = 4,
    backend: str = "thread",
    fusion: Optional[bool] = None,
    repeats: int = 3,
    seed: int = 0,
) -> List[SpeedupRow]:
    """Measure sequential vs parallel task-graph execution for every format.

    ``backend`` selects the parallel execution substrate (``"thread"``,
    ``"process"`` or ``"distributed"``); ``fusion`` the record-time task
    coarsening of the parallel side (``None``: backend default); ``repeats``
    the best-of-N timing protocol applied to both sides.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
    if fusion is False and backend == "process":
        raise ValueError("the process backend requires fusion; pass fusion=None or True")
    fused = fusion if fusion is not None else backend == "process"
    slots = 2 * max(1, n_workers)
    points = uniform_grid_2d(n)
    kmat = KernelMatrix(kernel_by_name(kernel), points)
    b = np.random.default_rng(seed).standard_normal(n)

    algorithms = (
        ("HSS-ULV", "hss", build_hss, hss_ulv_factorize_dtd),
        ("BLR2-ULV", "blr2", build_blr2, blr2_ulv_factorize_dtd),
        ("HODLR-ULV", "hodlr", build_hodlr, hodlr_ulv_factorize_dtd),
    )
    rows: List[SpeedupRow] = []
    for name, fmt, build, factorize_dtd in algorithms:
        matrix = build(kmat, leaf_size=leaf_size, max_rank=max_rank)
        comm_bytes = 0
        nodes = 1

        if backend == "thread":
            # Record each graph without executing, so the timings cover pure
            # execution (recording cost is identical on both sides); every
            # repeat records afresh because an executed graph cannot run again.
            def record(*, fuse: bool):
                factor, rt = factorize_dtd(matrix, execution="deferred", execute=False)
                if fuse:
                    rt.fuse(slots=slots)
                return factor, rt

            seq_timing = best_of(
                lambda state: (state[1].run(), state)[1],
                repeats=repeats,
                setup=lambda: record(fuse=False),
            )
            t_seq, (seq_factor, _) = seq_timing
            par_timing = best_of(
                lambda state: (state[1].run_parallel(n_workers=n_workers), state)[1],
                repeats=repeats,
                setup=lambda: record(fuse=fused),
            )
            t_par, (par_factor, par_rt) = par_timing
            actual_workers = par_rt.last_parallel_report.num_workers
        else:
            # Forked workers (pool or owner-computes) inherit the recorded
            # closures, so recording cannot be hoisted out of the timed
            # region; both sides time the full record+execute path to
            # compare like with like.
            from repro.pipeline.policy import ExecutionPolicy
            from repro.pipeline.registry import get_format

            def seq_full():
                factor, _ = factorize_dtd(matrix, execution="deferred")
                return factor

            def par_full():
                policy = ExecutionPolicy(
                    backend="process" if backend == "process" else "distributed",
                    n_workers=n_workers,
                    nodes=n_workers if backend == "distributed" else 1,
                    fusion=fusion,
                )
                return get_format(fmt).factorize_dtd(matrix, policy=policy)

            seq_timing = best_of(seq_full, repeats=repeats)
            t_seq, seq_factor = seq_timing
            par_timing = best_of(par_full, repeats=repeats)
            t_par, (par_factor, par_rt) = par_timing
            if backend == "process":
                actual_workers = par_rt.last_process_report.num_workers
            else:
                comm_bytes = par_rt.last_distributed_report.ledger.total_bytes
                nodes = n_workers
                actual_workers = 1  # one in-order executor per forked node

        diff = float(np.max(np.abs(par_factor.solve(b) - seq_factor.solve(b))))
        rows.append(
            SpeedupRow(
                algorithm=name,
                format=fmt,
                n=n,
                num_tasks=par_rt.num_tasks,
                n_workers=actual_workers,
                seq_seconds=t_seq,
                par_seconds=t_par,
                max_abs_diff=diff,
                backend=backend,
                comm_bytes=comm_bytes,
                requested_workers=n_workers,
                nodes=nodes,
                fusion=fused,
                repeats=repeats,
                seq_samples=seq_timing.samples,
                par_samples=par_timing.samples,
            )
        )
    return rows


def format_parallel_speedup(rows: List[SpeedupRow]) -> str:
    """Format the measurement as a fixed-width table."""
    lines = [
        f"{'algorithm':<10} {'backend':<11} {'N':>7} {'tasks':>6} {'workers':>7} "
        f"{'nodes':>5} {'fused':>5} {'seq [s]':>9} {'par [s]':>9} {'speedup':>8} "
        f"{'comm [B]':>9} {'max diff':>10}"
    ]
    for r in rows:
        lines.append(
            f"{r.algorithm:<10} {r.backend:<11} {r.n:>7} {r.num_tasks:>6} "
            f"{r.n_workers:>7} {r.nodes:>5} {'yes' if r.fusion else 'no':>5} "
            f"{r.seq_seconds:>9.3f} {r.par_seconds:>9.3f} {r.speedup:>8.2f} "
            f"{r.comm_bytes:>9} {r.max_abs_diff:>10.2e}"
        )
    return "\n".join(lines)
