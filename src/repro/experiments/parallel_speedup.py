"""Sequential vs parallel execution of the recorded ULV task graphs.

The paper's central claim is that the ULV factorization expressed as
``insert_task`` calls runs correctly under out-of-order parallel execution.
This driver measures the actual wall time of the same recorded task graph
executed (a) sequentially in insertion order and (b) out-of-order on a thread
pool, for both the HSS-ULV and the BLR2-ULV task graphs, and verifies the
parallel factors are bit-identical to the sequential ones.

Used by ``python -m repro speedup`` and by
``benchmarks/test_runtime_parallel_speedup.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.blr2_ulv_dtd import blr2_ulv_factorize_dtd
from repro.core.hss_ulv_dtd import hss_ulv_factorize_dtd
from repro.formats.blr2 import build_blr2
from repro.formats.hss import build_hss
from repro.geometry.points import uniform_grid_2d
from repro.kernels.assembly import KernelMatrix
from repro.kernels.greens import kernel_by_name

__all__ = ["SpeedupRow", "run_parallel_speedup", "format_parallel_speedup"]


@dataclass
class SpeedupRow:
    """One algorithm's sequential-vs-parallel measurement."""

    algorithm: str
    n: int
    num_tasks: int
    n_workers: int
    seq_seconds: float
    par_seconds: float
    max_abs_diff: float

    @property
    def speedup(self) -> float:
        return self.seq_seconds / self.par_seconds if self.par_seconds > 0 else float("inf")


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run_parallel_speedup(
    *,
    n: int = 2048,
    kernel: str = "yukawa",
    leaf_size: int = 256,
    max_rank: int = 60,
    n_workers: int = 4,
    seed: int = 0,
) -> List[SpeedupRow]:
    """Measure sequential vs thread-pool task-graph execution for both formats."""
    points = uniform_grid_2d(n)
    kmat = KernelMatrix(kernel_by_name(kernel), points)
    b = np.random.default_rng(seed).standard_normal(n)

    algorithms = (
        ("HSS-ULV", build_hss, hss_ulv_factorize_dtd),
        ("BLR2-ULV", build_blr2, blr2_ulv_factorize_dtd),
    )
    rows: List[SpeedupRow] = []
    for name, build, factorize_dtd in algorithms:
        matrix = build(kmat, leaf_size=leaf_size, max_rank=max_rank)
        # Record each graph without executing, so the timings below cover
        # pure execution (insert_task recording cost is identical either way).
        seq_factor, seq_rt = factorize_dtd(matrix, execution="deferred", execute=False)
        par_factor, par_rt = factorize_dtd(matrix, execution="deferred", execute=False)
        t_seq = _timed(seq_rt.run)
        t_par = _timed(lambda: par_rt.run_parallel(n_workers=n_workers))
        diff = float(np.max(np.abs(par_factor.solve(b) - seq_factor.solve(b))))
        rows.append(
            SpeedupRow(
                algorithm=name,
                n=n,
                num_tasks=par_rt.num_tasks,
                n_workers=n_workers,
                seq_seconds=t_seq,
                par_seconds=t_par,
                max_abs_diff=diff,
            )
        )
    return rows


def format_parallel_speedup(rows: List[SpeedupRow]) -> str:
    """Format the measurement as a fixed-width table."""
    lines = [
        f"{'algorithm':<10} {'N':>7} {'tasks':>6} {'workers':>7} "
        f"{'seq [s]':>9} {'par [s]':>9} {'speedup':>8} {'max diff':>10}"
    ]
    for r in rows:
        lines.append(
            f"{r.algorithm:<10} {r.n:>7} {r.num_tasks:>6} {r.n_workers:>7} "
            f"{r.seq_seconds:>9.3f} {r.par_seconds:>9.3f} {r.speedup:>8.2f} {r.max_abs_diff:>10.2e}"
        )
    return "\n".join(lines)
