"""Solve-throughput experiment: solves/sec vs batch size vs backend.

The end-to-end serving story of the reproduction: a :class:`~repro.service.SolverService`
caches one factorization per problem description and drains queued right-hand
sides as batched task-graph solves.  This driver measures, for each backend
and each batch size, the wall time to serve a fixed stream of single-RHS
requests (submitted in groups of ``batch_size`` and flushed per group) and
reports the resulting solves/sec -- the unit the north star bills by.

Run via ``python -m repro servebench`` or the benchmark harness
(``benchmarks/test_solve_throughput.py``, which records the rows into
``benchmarks/BENCH_runtime.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.service import FactorKey, SolverService

__all__ = ["ThroughputRow", "run_solve_throughput", "format_solve_throughput"]


@dataclass
class ThroughputRow:
    """One measured (backend, batch size) point of the throughput sweep.

    ``n_workers`` / ``nodes`` record the concurrency *this row's backend*
    actually uses (1/1 for the in-order backends), not the sweep-level knob
    values -- a row is self-describing without the surrounding payload.
    """

    backend: str
    batch_size: int
    requests: int
    batches: int
    wall_seconds: float
    solves_per_sec: float
    max_residual: float
    format: str = "hss"
    n_workers: int = 1
    nodes: int = 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": self.format,
            "backend": self.backend,
            "batch_size": self.batch_size,
            "requests": self.requests,
            "batches": self.batches,
            "wall_seconds": self.wall_seconds,
            "solves_per_sec": self.solves_per_sec,
            "max_residual": self.max_residual,
            "n_workers": self.n_workers,
            "nodes": self.nodes,
        }


def run_solve_throughput(
    *,
    n: int = 1024,
    kernel: str = "yukawa",
    leaf_size: int = 128,
    max_rank: int = 30,
    requests: int = 32,
    batch_sizes: Sequence[int] = (1, 4, 16),
    backends: Sequence[str] = ("reference", "sequential", "parallel"),
    n_workers: int = 4,
    nodes: int = 2,
    distribution: Optional[str] = None,
    panel_size: Optional[int] = None,
    format_name: str = "hss",
    compress_runtime: bool | str = False,
    seed: int = 0,
) -> Dict[str, object]:
    """Measure serving throughput for every (backend, batch size) pair.

    One :class:`SolverService` per backend (so its factorization cache is
    warmed once and shared across batch sizes); the same ``requests`` random
    right-hand sides are streamed through every configuration.  Returns a
    plain-dict result with the problem description, the per-backend
    factorization seconds and one :class:`ThroughputRow` per measurement.
    """
    rng = np.random.default_rng(seed)
    rhs = rng.standard_normal((n, requests))
    key = FactorKey.make(
        kernel, n, leaf_size=leaf_size, max_rank=max_rank, format=format_name
    )

    rows: List[ThroughputRow] = []
    factor_seconds: Dict[str, float] = {}
    for backend in backends:
        # The reference backend rejects task-graph-only knobs; don't forward them.
        knobs = (
            {} if backend == "reference"
            else {"panel_size": panel_size, "distribution": distribution}
        )
        service = SolverService(
            backend=backend, n_workers=n_workers, nodes=nodes,
            compress_runtime=False if backend == "reference" else compress_runtime,
            **knobs,
        )
        # Warm the cache so the measured windows are pure solve phase.
        solver = service.solver_for(key)
        factor_seconds[backend] = service.stats.factor_seconds
        for batch in batch_sizes:
            tickets = []
            t0 = time.perf_counter()
            batches = 0
            for start in range(0, requests, batch):
                for j in range(start, min(start + batch, requests)):
                    tickets.append(
                        service.submit(
                            rhs[:, j], kernel=kernel, n=n,
                            leaf_size=leaf_size, max_rank=max_rank,
                            format=format_name,
                        )
                    )
                service.flush()
                batches += 1
            wall = time.perf_counter() - t0
            x = np.column_stack([t.result for t in tickets])
            residual = float(
                np.max(
                    np.linalg.norm(solver.matvec(x) - rhs, axis=0)
                    / np.linalg.norm(rhs, axis=0)
                )
            )
            rows.append(
                ThroughputRow(
                    format=format_name,
                    backend=backend,
                    batch_size=batch,
                    requests=requests,
                    batches=batches,
                    wall_seconds=wall,
                    solves_per_sec=requests / wall if wall > 0 else float("inf"),
                    max_residual=residual,
                    n_workers=n_workers if backend in ("parallel", "process") else 1,
                    nodes=nodes if backend == "distributed" else 1,
                )
            )
    return {
        "n": n,
        "format": format_name,
        "kernel": kernel,
        "leaf_size": leaf_size,
        "max_rank": max_rank,
        "requests": requests,
        "factor_seconds": factor_seconds,
        "rows": rows,
    }


def format_solve_throughput(result: Dict[str, object]) -> str:
    """Render the throughput sweep as the table ``python -m repro servebench`` prints."""
    lines = [
        f"Solve throughput: format={result.get('format', 'hss')} "
        f"kernel={result['kernel']} n={result['n']} "
        f"leaf_size={result['leaf_size']} max_rank={result['max_rank']} "
        f"requests={result['requests']}",
        "(one cached factorization per backend; requests flushed in groups of batch)",
        "",
        f"{'backend':>12} {'batch':>6} {'batches':>8} {'wall [s]':>10} "
        f"{'solves/s':>10} {'max resid':>10}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row.backend:>12} {row.batch_size:>6d} {row.batches:>8d} "
            f"{row.wall_seconds:>10.4f} {row.solves_per_sec:>10.1f} "
            f"{row.max_residual:>10.2e}"
        )
    fs = result["factor_seconds"]
    lines.append("")
    lines.append(
        "factorization (amortized, cached): "
        + "  ".join(f"{b}={fs[b]:.3f}s" for b in fs)
    )
    return "\n".join(lines)
