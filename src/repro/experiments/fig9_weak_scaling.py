"""Fig. 9: weak scaling of factorization time for the three kernels.

HATRIX-DTD and STRUMPACK factor the *same* HSS structure; the difference is
asynchronous (row-cyclic) versus fork-join (block-cyclic) distributed
execution.  LORAPO runs the BLR tile Cholesky with the asynchronous runtime.
Problem sizes follow the paper's schedules (see
:mod:`repro.experiments.workloads`); factorization time comes from replaying
the recorded task graphs on the Fugaku-like machine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.lorapo_like import build_blr_cholesky_taskgraph
from repro.baselines.strumpack_like import build_strumpack_taskgraph
from repro.core.hss_ulv_dtd import build_hss_ulv_taskgraph
from repro.experiments.workloads import (
    KERNEL_RANKS,
    WeakScalingPoint,
    hss_weak_scaling_schedule,
    lorapo_weak_scaling_schedule,
)
from repro.formats.hss import HSSStructure
from repro.runtime.machine import MachineConfig, fugaku_like
from repro.runtime.simulator import simulate
from repro.runtime.trace import SimulationResult

__all__ = ["WeakScalingResult", "run_fig9", "format_fig9"]


@dataclass
class WeakScalingResult:
    """One simulated weak-scaling measurement."""

    code: str
    kernel: str
    nodes: int
    n: int
    time: float
    result: SimulationResult


def simulate_hatrix(
    n: int, nodes: int, *, leaf_size: int, rank: int, machine: Optional[MachineConfig] = None
) -> SimulationResult:
    """Simulate HATRIX-DTD (HSS-ULV, asynchronous, row-cyclic) for one configuration."""
    machine = machine if machine is not None else fugaku_like(nodes)
    structure = HSSStructure.synthetic(n, leaf_size, rank)
    graph = build_hss_ulv_taskgraph(structure, nodes=nodes).graph
    return simulate(graph, machine.with_nodes(nodes), policy="async")


def simulate_strumpack(
    n: int, nodes: int, *, leaf_size: int, rank: int, machine: Optional[MachineConfig] = None
) -> SimulationResult:
    """Simulate STRUMPACK (HSS-ULV, fork-join, block-cyclic) for one configuration."""
    machine = machine if machine is not None else fugaku_like(nodes)
    structure = HSSStructure.synthetic(n, leaf_size, rank)
    graph = build_strumpack_taskgraph(structure, nodes=nodes).graph
    return simulate(graph, machine.with_nodes(nodes), policy="forkjoin")


def simulate_lorapo(
    n: int,
    nodes: int,
    *,
    leaf_size: int = 2048,
    rank: int = 256,
    machine: Optional[MachineConfig] = None,
) -> SimulationResult:
    """Simulate LORAPO (BLR tile Cholesky, asynchronous, block-cyclic).

    ``rank`` is the *effective* tile rank: LORAPO compresses adaptively to a
    1e-8 tolerance under its max-rank cap, so the tiles it actually computes
    with are much smaller than the cap (the paper's cap is half the leaf
    size).
    """
    machine = machine if machine is not None else fugaku_like(nodes)
    graph = build_blr_cholesky_taskgraph(n, leaf_size, rank, nodes=nodes).graph
    return simulate(graph, machine.with_nodes(nodes), policy="async")


def run_fig9(
    *,
    kernels: Sequence[str] = ("laplace2d", "yukawa", "matern"),
    base_n: int = 4096,
    max_nodes: int = 128,
    leaf_size: int = 512,
    lorapo_leaf: int = 2048,
    lorapo_max_nodes: int = 512,
    machine: Optional[MachineConfig] = None,
) -> List[WeakScalingResult]:
    """Run the weak-scaling study of Fig. 9 for all kernels and all three codes."""
    results: List[WeakScalingResult] = []
    hss_points = hss_weak_scaling_schedule(base_n=base_n, max_nodes=max_nodes)
    lorapo_points = lorapo_weak_scaling_schedule(base_n=base_n, max_nodes=lorapo_max_nodes)

    for kernel in kernels:
        rank = KERNEL_RANKS.get(kernel, 100)
        for point in hss_points:
            res = simulate_hatrix(point.n, point.nodes, leaf_size=leaf_size, rank=rank, machine=machine)
            results.append(WeakScalingResult("HATRIX-DTD", kernel, point.nodes, point.n, res.makespan, res))
            res = simulate_strumpack(point.n, point.nodes, leaf_size=leaf_size, rank=rank, machine=machine)
            results.append(WeakScalingResult("STRUMPACK", kernel, point.nodes, point.n, res.makespan, res))
        for point in lorapo_points:
            res = simulate_lorapo(
                point.n, point.nodes, leaf_size=min(lorapo_leaf, point.n // 2), rank=min(256, lorapo_leaf // 8),
                machine=machine,
            )
            results.append(WeakScalingResult("LORAPO", kernel, point.nodes, point.n, res.makespan, res))
    return results


def format_fig9(results: List[WeakScalingResult]) -> str:
    """Render one weak-scaling series per (kernel, code), like the Fig. 9 panels."""
    lines: List[str] = []
    kernels = sorted({r.kernel for r in results})
    for kernel in kernels:
        lines.append(f"== {kernel} ==")
        lines.append(f"{'Code':<12}{'Nodes':<8}{'N':<10}{'Time (s)':<12}")
        lines.append("-" * 42)
        for r in sorted(
            (r for r in results if r.kernel == kernel), key=lambda r: (r.code, r.nodes)
        ):
            lines.append(f"{r.code:<12}{r.nodes:<8}{r.n:<10}{r.time:<12.4f}")
        lines.append("")
    return "\n".join(lines)
