"""Shared workload definitions for the evaluation experiments (paper Sec. 5).

The paper's setup:

* geometry: uniform 2D grid;
* kernels: Laplace 2D, Yukawa, Matern with the constants of Table 3;
* weak scaling (Fig. 9): HSS codes start at N=4096 on 2 nodes and grow N
  linearly with the node count up to N=262,144 on 128 nodes; LORAPO grows the
  node count 4x for every 2x in N (constant N^2 work per node), reaching
  N=65,536 on 512 nodes;
* ranks/leaf sizes chosen from the Table 2 accuracy study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.formats.hss import HSSMatrix, build_hss
from repro.geometry.points import PointCloud, uniform_grid_2d
from repro.kernels.assembly import KernelMatrix
from repro.kernels.greens import kernel_by_name

__all__ = [
    "KERNEL_RANKS",
    "WeakScalingPoint",
    "build_problem",
    "hss_weak_scaling_schedule",
    "lorapo_weak_scaling_schedule",
]

#: Maximum rank per kernel used in the scaling experiments, informed by the
#: Table 2 accuracy study (the paper picks the rank/leaf combination that
#: meets each kernel's target solve accuracy: 1e-11 Laplace, 1e-14 Yukawa,
#: 1e-9 Matern).
KERNEL_RANKS: Dict[str, int] = {
    "laplace2d": 100,
    "yukawa": 80,
    "matern": 120,
}


@dataclass(frozen=True)
class WeakScalingPoint:
    """One point of a weak-scaling schedule."""

    nodes: int
    n: int


def build_problem(
    kernel_name: str,
    n: int,
    *,
    leaf_size: int = 256,
    max_rank: int = 100,
    tol: Optional[float] = None,
    method: str = "interpolative",
    shift: float | str = "auto",
    seed: int = 0,
) -> Tuple[KernelMatrix, HSSMatrix, PointCloud]:
    """Assemble one benchmark problem: kernel matrix + HSS approximation.

    Returns ``(kernel_matrix, hss, points)``.
    """
    points = uniform_grid_2d(n)
    kernel = kernel_by_name(kernel_name)
    kmat = KernelMatrix(kernel, points, shift=shift)
    hss = build_hss(
        kmat, leaf_size=leaf_size, max_rank=max_rank, tol=tol, method=method, seed=seed
    )
    return kmat, hss, points


def hss_weak_scaling_schedule(
    *,
    base_n: int = 4096,
    base_nodes: int = 2,
    max_nodes: int = 128,
) -> List[WeakScalingPoint]:
    """The HSS (HATRIX-DTD / STRUMPACK) weak-scaling schedule of Fig. 9.

    Problem size grows linearly with the node count (constant O(N)/P work per
    node): N = base_n * nodes / base_nodes.
    """
    points: List[WeakScalingPoint] = []
    nodes = base_nodes
    while nodes <= max_nodes:
        points.append(WeakScalingPoint(nodes=nodes, n=base_n * nodes // base_nodes))
        nodes *= 2
    return points


def lorapo_weak_scaling_schedule(
    *,
    base_n: int = 4096,
    base_nodes: int = 2,
    max_nodes: int = 512,
) -> List[WeakScalingPoint]:
    """The LORAPO weak-scaling schedule of Fig. 9.

    With O(N^2) work, constant work per node requires the node count to grow
    4x for every 2x in N: the paper goes from N=4096 on 2 nodes to N=65,536 on
    512 nodes.
    """
    points: List[WeakScalingPoint] = []
    nodes = base_nodes
    n = base_n
    while nodes <= max_nodes:
        points.append(WeakScalingPoint(nodes=nodes, n=n))
        nodes *= 4
        n *= 2
    return points
