"""Table 2: impact of rank and leaf size on construction and solve error.

For every kernel of Table 3 and every (max rank, leaf size) combination of
Table 2, build the compressed matrix with each of the three codes

* HATRIX   -- HSS with a hard rank cap (this library's ``build_hss``),
* LORAPO   -- BLR with adaptive ranks to a 1e-8 tolerance (capped),
* STRUMPACK -- HSS with adaptive ranks to a 1e-8 tolerance (capped),

factorize it, and report the construction error (Eq. 18) and solve error
(Eq. 19).

The paper uses a constant problem size of 65,536; the default here is smaller
so the driver completes on a laptop in minutes -- pass ``n=65536`` to run at
paper scale (the construction is near-linear, but error evaluation assembles
dense row panels, so expect tens of minutes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.errors import construction_error, solve_error
from repro.baselines.lorapo_like import blr_cholesky_factorize
from repro.core.hss_ulv import hss_ulv_factorize
from repro.formats.blr import build_blr
from repro.formats.hss import build_hss
from repro.geometry.points import uniform_grid_2d
from repro.kernels.assembly import KernelMatrix
from repro.kernels.greens import kernel_by_name

__all__ = ["AccuracyRow", "run_table2", "format_table2", "PAPER_HSS_SETTINGS", "PAPER_BLR_SETTINGS"]

#: (max_rank, leaf_size) combinations of Table 2 for the HSS codes.
PAPER_HSS_SETTINGS: Tuple[Tuple[int, int], ...] = ((100, 256), (200, 256), (200, 512), (400, 512))

#: (max_rank, leaf_size) combinations of Table 2 for LORAPO (BLR).
PAPER_BLR_SETTINGS: Tuple[Tuple[int, int], ...] = ((1024, 2048), (1500, 2048), (1250, 4096), (3000, 4096))


@dataclass
class AccuracyRow:
    """One row of the accuracy table."""

    code: str
    kernel: str
    max_rank: int
    leaf_size: int
    n: int
    construct_error: float
    solve_error: float


def _scale_settings(
    settings: Sequence[Tuple[int, int]], n: int, reference_n: int
) -> List[Tuple[int, int]]:
    """Scale the paper's (rank, leaf) settings down for a reduced problem size.

    The paper's settings target N=65,536.  At a reduced N the settings are
    scaled by ``sqrt(n / reference_n)`` (leaf sizes rounded to powers of two),
    which keeps the four paper combinations distinct and the ranks in a regime
    where the rank-vs-accuracy trend is visible.  Duplicates arising from the
    floors are removed while preserving order.
    """
    if n >= reference_n:
        return [tuple(s) for s in settings]
    import math

    factor = math.sqrt(n / reference_n)
    scaled: List[Tuple[int, int]] = []
    for rank, leaf in settings:
        new_leaf = 2 ** int(round(math.log2(max(leaf * factor, 32))))
        new_leaf = int(min(new_leaf, n // 4))
        new_rank = max(int(round(rank * factor)), 8)
        new_rank = int(min(new_rank, new_leaf))
        if (new_rank, new_leaf) not in scaled:
            scaled.append((new_rank, new_leaf))
    return scaled


def run_table2(
    *,
    n: int = 4096,
    kernels: Sequence[str] = ("laplace2d", "yukawa", "matern"),
    hss_settings: Optional[Sequence[Tuple[int, int]]] = None,
    blr_settings: Optional[Sequence[Tuple[int, int]]] = None,
    reference_n: int = 65536,
    codes: Sequence[str] = ("HATRIX", "LORAPO", "STRUMPACK"),
    seed: int = 0,
) -> List[AccuracyRow]:
    """Run the accuracy study of Table 2.

    Parameters
    ----------
    n:
        Problem size (the paper uses 65,536; default reduced for laptop runs).
    kernels:
        Kernel names.
    hss_settings, blr_settings:
        Explicit (max_rank, leaf_size) lists; default = paper settings, scaled
        down proportionally when ``n < reference_n``.
    codes:
        Which of the three codes to evaluate.
    """
    hss_settings = (
        _scale_settings(PAPER_HSS_SETTINGS, n, reference_n)
        if hss_settings is None
        else list(hss_settings)
    )
    blr_settings = (
        _scale_settings(PAPER_BLR_SETTINGS, n, reference_n)
        if blr_settings is None
        else list(blr_settings)
    )

    points = uniform_grid_2d(n)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n)
    rows: List[AccuracyRow] = []

    for kernel_name in kernels:
        kernel = kernel_by_name(kernel_name)
        kmat = KernelMatrix(kernel, points)

        if "HATRIX" in codes:
            for rank, leaf in hss_settings:
                hss = build_hss(kmat, leaf_size=leaf, max_rank=rank, seed=seed)
                factor = hss_ulv_factorize(hss)
                rows.append(
                    AccuracyRow(
                        code="HATRIX",
                        kernel=kernel_name,
                        max_rank=rank,
                        leaf_size=leaf,
                        n=n,
                        construct_error=construction_error(kmat, hss, b=b),
                        solve_error=solve_error(hss, factor.solve, b=b),
                    )
                )
        if "STRUMPACK" in codes:
            for rank, leaf in hss_settings:
                hss = build_hss(kmat, leaf_size=leaf, max_rank=rank, tol=1e-8, seed=seed)
                factor = hss_ulv_factorize(hss)
                rows.append(
                    AccuracyRow(
                        code="STRUMPACK",
                        kernel=kernel_name,
                        max_rank=rank,
                        leaf_size=leaf,
                        n=n,
                        construct_error=construction_error(kmat, hss, b=b),
                        solve_error=solve_error(hss, factor.solve, b=b),
                    )
                )
        if "LORAPO" in codes:
            for rank, leaf in blr_settings:
                blr = build_blr(kmat, leaf_size=leaf, max_rank=rank, tol=1e-8)
                factor, _ = blr_cholesky_factorize(blr, tol=1e-10, max_rank=rank)
                rows.append(
                    AccuracyRow(
                        code="LORAPO",
                        kernel=kernel_name,
                        max_rank=rank,
                        leaf_size=leaf,
                        n=n,
                        construct_error=construction_error(kmat, blr, b=b),
                        solve_error=solve_error(blr, factor.solve, b=b),
                    )
                )
    return rows


def format_table2(rows: List[AccuracyRow]) -> str:
    """Render the accuracy study grouped by code, one line per (rank, leaf, kernel)."""
    lines = [
        f"{'Code':<11}{'Kernel':<11}{'MaxRank':<9}{'Leaf':<7}{'N':<8}"
        f"{'Const.Err':<12}{'SolveErr':<12}",
        "-" * 70,
    ]
    for row in sorted(rows, key=lambda r: (r.code, r.kernel, r.leaf_size, r.max_rank)):
        lines.append(
            f"{row.code:<11}{row.kernel:<11}{row.max_rank:<9}{row.leaf_size:<7}{row.n:<8}"
            f"{row.construct_error:<12.2e}{row.solve_error:<12.2e}"
        )
    return "\n".join(lines)
