"""Fig. 10: per-worker performance breakdown of the Yukawa weak-scaling runs.

For every point of the Fig. 9b (Yukawa) weak-scaling series the paper reports
the average per-worker time split into

* LORAPO      -- COMPUTE TASK TIME vs RUNTIME OVERHEAD (PaRSEC instrumentation),
* STRUMPACK   -- COMPUTE TIME vs MPI TIME (mpiP),
* HATRIX-DTD  -- COMPUTE TASK TIME vs RUNTIME OVERHEAD.

The simulator tracks exactly these categories (see
:class:`repro.runtime.trace.SimulationResult`).

:func:`run_fig10_measured` is the measured counterpart: it executes a real
traced factorization on the requested runtime backends
(:class:`repro.runtime.tracing.ExecutionTrace`) and emits each point twice --
once with the *measured* per-worker breakdown and once with the simulator's
prediction for the same recorded graph -- so the Fig. 10 categories can be
cross-validated against reality instead of only against the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.fig9_weak_scaling import (
    simulate_hatrix,
    simulate_lorapo,
    simulate_strumpack,
)
from repro.experiments.workloads import (
    KERNEL_RANKS,
    hss_weak_scaling_schedule,
    lorapo_weak_scaling_schedule,
)
from repro.runtime.machine import MachineConfig

__all__ = [
    "BreakdownRow",
    "MeasuredBreakdownRow",
    "run_fig10",
    "format_fig10",
    "run_fig10_measured",
    "format_fig10_measured",
]


@dataclass
class BreakdownRow:
    """Per-worker time breakdown for one (code, nodes) point."""

    code: str
    nodes: int
    n: int
    compute_time: float
    overhead_time: float
    overhead_label: str
    makespan: float


def run_fig10(
    *,
    kernel: str = "yukawa",
    base_n: int = 4096,
    max_nodes: int = 128,
    leaf_size: int = 512,
    lorapo_leaf: int = 2048,
    lorapo_max_nodes: int = 512,
    machine: Optional[MachineConfig] = None,
) -> List[BreakdownRow]:
    """Run the Fig. 10 breakdown for the Yukawa kernel (or any other kernel)."""
    rank = KERNEL_RANKS.get(kernel, 100)
    rows: List[BreakdownRow] = []

    for point in lorapo_weak_scaling_schedule(base_n=base_n, max_nodes=lorapo_max_nodes):
        res = simulate_lorapo(
            point.n,
            point.nodes,
            leaf_size=min(lorapo_leaf, point.n // 2),
            rank=min(256, lorapo_leaf // 8),
            machine=machine,
        )
        rows.append(
            BreakdownRow(
                code="LORAPO",
                nodes=point.nodes,
                n=point.n,
                compute_time=res.compute_task_time,
                overhead_time=res.runtime_overhead,
                overhead_label="RUNTIME OVERHEAD",
                makespan=res.makespan,
            )
        )

    for point in hss_weak_scaling_schedule(base_n=base_n, max_nodes=max_nodes):
        res = simulate_strumpack(point.n, point.nodes, leaf_size=leaf_size, rank=rank, machine=machine)
        rows.append(
            BreakdownRow(
                code="STRUMPACK",
                nodes=point.nodes,
                n=point.n,
                compute_time=res.compute_time,
                overhead_time=res.mpi_time,
                overhead_label="MPI TIME",
                makespan=res.makespan,
            )
        )
        res = simulate_hatrix(point.n, point.nodes, leaf_size=leaf_size, rank=rank, machine=machine)
        rows.append(
            BreakdownRow(
                code="HATRIX-DTD",
                nodes=point.nodes,
                n=point.n,
                compute_time=res.compute_task_time,
                overhead_time=res.runtime_overhead,
                overhead_label="RUNTIME OVERHEAD",
                makespan=res.makespan,
            )
        )
    return rows


@dataclass
class MeasuredBreakdownRow:
    """One breakdown point of a real traced execution (or its simulation).

    Each (backend, format) pair of :func:`run_fig10_measured` produces two of
    these: ``source="measured"`` with the per-worker averages derived from the
    recorded :class:`~repro.runtime.tracing.ExecutionTrace`, and
    ``source="simulated"`` with the machine model's prediction for the same
    recorded graph.  All time columns are average per-worker seconds except
    ``makespan`` (wall clock).
    """

    backend: str
    source: str
    format: str
    n: int
    n_workers: int
    nodes: int
    num_tasks: int
    compute_time: float
    overhead_time: float
    comm_time: float
    idle_time: float
    makespan: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "source": self.source,
            "format": self.format,
            "n": self.n,
            "n_workers": self.n_workers,
            "nodes": self.nodes,
            "num_tasks": self.num_tasks,
            "compute_time": self.compute_time,
            "overhead_time": self.overhead_time,
            "comm_time": self.comm_time,
            "idle_time": self.idle_time,
            "makespan": self.makespan,
        }


def run_fig10_measured(
    *,
    n: int = 512,
    kernel: str = "yukawa",
    leaf_size: int = 128,
    max_rank: int = 30,
    fmt: str = "hss",
    backends: Sequence[str] = ("deferred", "parallel", "process", "distributed"),
    n_workers: int = 4,
    nodes: int = 2,
    seed: int = 0,
    machine: Optional[MachineConfig] = None,
) -> List[MeasuredBreakdownRow]:
    """Measured Fig. 10 breakdowns from real traced executions.

    Builds the structured matrix once, then factorizes it on every requested
    backend with tracing enabled and derives the per-worker
    compute/overhead/communication/idle averages from the recorded
    :class:`~repro.runtime.tracing.ExecutionTrace`.  Each measured row is
    paired with the simulator's prediction for the *same recorded graph* on a
    machine shaped like the real run (same node and worker counts), so the
    model can be validated category by category.
    """
    from repro.geometry.points import uniform_grid_2d
    from repro.kernels.assembly import KernelMatrix
    from repro.kernels.greens import kernel_by_name
    from repro.pipeline.policy import ExecutionPolicy
    from repro.pipeline.registry import get_format
    from repro.runtime.machine import laptop_like
    from repro.runtime.simulator import simulate

    kmat = KernelMatrix(kernel_by_name(kernel), uniform_grid_2d(n))
    spec = get_format(fmt)
    matrix = spec.build(
        kmat, leaf_size=leaf_size, max_rank=max_rank, tol=None, method=None, seed=seed
    )

    rows: List[MeasuredBreakdownRow] = []
    for backend in backends:
        policy = ExecutionPolicy(
            backend=backend,
            n_workers=n_workers,
            nodes=nodes if backend == "distributed" else 1,
            trace=True,
        )
        _, rt = spec.factorize_dtd(matrix, policy=policy)
        trace = rt.last_trace
        if trace is None:
            raise RuntimeError(f"backend {backend!r} produced no execution trace")

        workers = max(trace.n_workers, 1)
        totals = trace.totals()
        rows.append(
            MeasuredBreakdownRow(
                backend=backend,
                source="measured",
                format=fmt,
                n=n,
                n_workers=trace.n_workers,
                nodes=policy.nodes,
                num_tasks=len(trace.spans),
                compute_time=totals.compute / workers,
                overhead_time=totals.overhead / workers,
                comm_time=totals.communication / workers,
                idle_time=totals.idle / workers,
                makespan=trace.wall_time,
            )
        )

        # Simulate the same recorded graph on a machine shaped like the real
        # run: the distributed backend runs one in-order executor per rank,
        # the shared-memory backends one node with n_workers cores.
        if machine is not None:
            sim_machine = machine
        elif backend == "distributed":
            sim_machine = laptop_like(nodes=policy.nodes, cores_per_node=1)
        else:
            sim_machine = laptop_like(nodes=1, cores_per_node=workers)
        res = simulate(rt.graph, sim_machine, policy="async", record_workers=True)
        sim_workers = max(res.workers, 1)
        sim_idle = sum(b.idle for b in res.per_worker.values()) / sim_workers
        rows.append(
            MeasuredBreakdownRow(
                backend=backend,
                source="simulated",
                format=fmt,
                n=n,
                n_workers=res.workers,
                nodes=sim_machine.nodes,
                num_tasks=res.num_tasks,
                compute_time=res.compute_task_time,
                overhead_time=res.total_runtime_overhead / sim_workers,
                comm_time=res.total_communication / sim_workers,
                idle_time=sim_idle,
                makespan=res.makespan,
            )
        )
    return rows


def format_fig10_measured(rows: List[MeasuredBreakdownRow]) -> str:
    """Render measured and simulated breakdowns side by side per backend."""
    lines = [
        f"{'backend':<12} {'source':<10} {'tasks':>6} {'workers':>7} "
        f"{'compute [s]':>12} {'overhead [s]':>13} {'comm [s]':>10} "
        f"{'idle [s]':>10} {'makespan [s]':>13}"
    ]
    for r in rows:
        lines.append(
            f"{r.backend:<12} {r.source:<10} {r.num_tasks:>6} {r.n_workers:>7} "
            f"{r.compute_time:>12.4f} {r.overhead_time:>13.4f} "
            f"{r.comm_time:>10.4f} {r.idle_time:>10.4f} {r.makespan:>13.4f}"
        )
    return "\n".join(lines)


def format_fig10(rows: List[BreakdownRow]) -> str:
    """Render the three breakdown panels of Fig. 10."""
    lines: List[str] = []
    for code in ("LORAPO", "STRUMPACK", "HATRIX-DTD"):
        subset = [r for r in rows if r.code == code]
        if not subset:
            continue
        label = subset[0].overhead_label
        lines.append(f"== {code} ==")
        lines.append(f"{'Nodes':<8}{'N':<10}{'COMPUTE (s)':<14}{label + ' (s)':<22}")
        lines.append("-" * 54)
        for r in sorted(subset, key=lambda r: r.nodes):
            lines.append(f"{r.nodes:<8}{r.n:<10}{r.compute_time:<14.4e}{r.overhead_time:<22.4e}")
        lines.append("")
    return "\n".join(lines)
