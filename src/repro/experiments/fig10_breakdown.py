"""Fig. 10: per-worker performance breakdown of the Yukawa weak-scaling runs.

For every point of the Fig. 9b (Yukawa) weak-scaling series the paper reports
the average per-worker time split into

* LORAPO      -- COMPUTE TASK TIME vs RUNTIME OVERHEAD (PaRSEC instrumentation),
* STRUMPACK   -- COMPUTE TIME vs MPI TIME (mpiP),
* HATRIX-DTD  -- COMPUTE TASK TIME vs RUNTIME OVERHEAD.

The simulator tracks exactly these categories (see
:class:`repro.runtime.trace.SimulationResult`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.fig9_weak_scaling import (
    simulate_hatrix,
    simulate_lorapo,
    simulate_strumpack,
)
from repro.experiments.workloads import (
    KERNEL_RANKS,
    hss_weak_scaling_schedule,
    lorapo_weak_scaling_schedule,
)
from repro.runtime.machine import MachineConfig

__all__ = ["BreakdownRow", "run_fig10", "format_fig10"]


@dataclass
class BreakdownRow:
    """Per-worker time breakdown for one (code, nodes) point."""

    code: str
    nodes: int
    n: int
    compute_time: float
    overhead_time: float
    overhead_label: str
    makespan: float


def run_fig10(
    *,
    kernel: str = "yukawa",
    base_n: int = 4096,
    max_nodes: int = 128,
    leaf_size: int = 512,
    lorapo_leaf: int = 2048,
    lorapo_max_nodes: int = 512,
    machine: Optional[MachineConfig] = None,
) -> List[BreakdownRow]:
    """Run the Fig. 10 breakdown for the Yukawa kernel (or any other kernel)."""
    rank = KERNEL_RANKS.get(kernel, 100)
    rows: List[BreakdownRow] = []

    for point in lorapo_weak_scaling_schedule(base_n=base_n, max_nodes=lorapo_max_nodes):
        res = simulate_lorapo(
            point.n,
            point.nodes,
            leaf_size=min(lorapo_leaf, point.n // 2),
            rank=min(256, lorapo_leaf // 8),
            machine=machine,
        )
        rows.append(
            BreakdownRow(
                code="LORAPO",
                nodes=point.nodes,
                n=point.n,
                compute_time=res.compute_task_time,
                overhead_time=res.runtime_overhead,
                overhead_label="RUNTIME OVERHEAD",
                makespan=res.makespan,
            )
        )

    for point in hss_weak_scaling_schedule(base_n=base_n, max_nodes=max_nodes):
        res = simulate_strumpack(point.n, point.nodes, leaf_size=leaf_size, rank=rank, machine=machine)
        rows.append(
            BreakdownRow(
                code="STRUMPACK",
                nodes=point.nodes,
                n=point.n,
                compute_time=res.compute_time,
                overhead_time=res.mpi_time,
                overhead_label="MPI TIME",
                makespan=res.makespan,
            )
        )
        res = simulate_hatrix(point.n, point.nodes, leaf_size=leaf_size, rank=rank, machine=machine)
        rows.append(
            BreakdownRow(
                code="HATRIX-DTD",
                nodes=point.nodes,
                n=point.n,
                compute_time=res.compute_task_time,
                overhead_time=res.runtime_overhead,
                overhead_label="RUNTIME OVERHEAD",
                makespan=res.makespan,
            )
        )
    return rows


def format_fig10(rows: List[BreakdownRow]) -> str:
    """Render the three breakdown panels of Fig. 10."""
    lines: List[str] = []
    for code in ("LORAPO", "STRUMPACK", "HATRIX-DTD"):
        subset = [r for r in rows if r.code == code]
        if not subset:
            continue
        label = subset[0].overhead_label
        lines.append(f"== {code} ==")
        lines.append(f"{'Nodes':<8}{'N':<10}{'COMPUTE (s)':<14}{label + ' (s)':<22}")
        lines.append("-" * 54)
        for r in sorted(subset, key=lambda r: r.nodes):
            lines.append(f"{r.nodes:<8}{r.n:<10}{r.compute_time:<14.4e}{r.overhead_time:<22.4e}")
        lines.append("")
    return "\n".join(lines)
