"""Serving layer: cached factorizations, queued right-hand sides, batched solves.

See :class:`repro.service.solver_service.SolverService`.
"""

from repro.service.solver_service import (
    FactorKey,
    ServiceStats,
    SolveTicket,
    SolverService,
)

__all__ = ["FactorKey", "ServiceStats", "SolveTicket", "SolverService"]
