"""Serving layer: cached factorizations, queued right-hand sides, batched solves.

See :class:`repro.service.solver_service.SolverService` for the core and
:class:`repro.service.http_server.SolverHTTPServer` for the asyncio HTTP
front end (auth in :mod:`repro.service.auth`, cache snapshots in
:mod:`repro.service.persistence`).
"""

from repro.service.auth import (
    AuthError,
    Authenticator,
    RateLimited,
    Tenant,
    TokenBucket,
)
from repro.service.http_server import SolverHTTPServer
from repro.service.solver_service import (
    FactorKey,
    ServiceStats,
    SolveTicket,
    SolverService,
)

__all__ = [
    "AuthError",
    "Authenticator",
    "FactorKey",
    "RateLimited",
    "ServiceStats",
    "SolveTicket",
    "SolverHTTPServer",
    "SolverService",
    "Tenant",
    "TokenBucket",
]
