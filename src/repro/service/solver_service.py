"""A caching, batching solve service on top of the task-graph solvers.

The ROADMAP north star bills by solves: one factorization amortized over many
right-hand sides.  :class:`SolverService` keeps an LRU cache of
:class:`~repro.api.StructuredSolver` factorizations keyed by the full problem
description (format, kernel, n, leaf_size, max_rank, kernel params), queues incoming
right-hand sides as :class:`SolveTicket` objects, and drains the queue in
:meth:`SolverService.flush` as *batched* task-graph solves: all queued
requests against the same factorization are stacked into one ``(n, k)`` block
and solved through a single recorded graph on the configured backend
(optionally split into ``panel_size`` panels so independent panels overlap
inside the runtime).

>>> service = SolverService(backend="parallel", n_workers=4)
>>> t1 = service.submit(b1, kernel="yukawa", n=1024, leaf_size=128, max_rank=30)
>>> t2 = service.submit(b2, kernel="yukawa", n=1024, leaf_size=128, max_rank=30)
>>> service.flush()
>>> x1, x2 = t1.result, t2.result      # one factorization, one batched solve
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api import StructuredSolver
from repro.core.rhs import validate_rhs
from repro.distribution.strategies import DistributionStrategy
from repro.obs.metrics import COUNT_BUCKETS, Histogram, MetricsRegistry
from repro.pipeline.registry import get_format

__all__ = [
    "FactorKey",
    "LatencyHistogram",
    "SolveTicket",
    "ServiceStats",
    "SolverService",
]

#: Maps the service backend name to the ``use_runtime`` mode of
#: :meth:`repro.api.StructuredSolver.solve`.
_BACKEND_TO_RUNTIME: Dict[str, Union[bool, str]] = {
    "reference": False,
    "immediate": True,
    "sequential": "deferred",
    "parallel": "parallel",
    "process": "process",
    "distributed": "distributed",
}


@dataclass(frozen=True)
class FactorKey:
    """Cache key identifying one factorization (problem description).

    ``format`` names the structured representation (any format registered in
    :mod:`repro.pipeline.registry`); the same kernel problem compressed as
    HSS and as HODLR are distinct factorizations and cache separately.
    """

    kernel: str
    n: int
    leaf_size: int = 256
    max_rank: int = 100
    params: Tuple[Tuple[str, float], ...] = ()
    format: str = "hss"

    @classmethod
    def make(
        cls, kernel: str, n: int, *, leaf_size: int = 256, max_rank: int = 100,
        format: str = "hss", **params: float,
    ) -> "FactorKey":
        # Resolve through the registry so unknown formats fail at submit
        # time (with the registered choices) instead of at factorization.
        return cls(
            kernel=str(kernel), n=int(n), leaf_size=int(leaf_size),
            max_rank=int(max_rank), params=tuple(sorted(params.items())),
            format=get_format(format).name,
        )

    @property
    def label(self) -> str:
        """Compact metrics label, e.g. ``"hss:yukawa:n=1024"``."""
        return f"{self.format}:{self.kernel}:n={self.n}"


class SolveTicket:
    """Handle for one queued right-hand side, resolved by :meth:`SolverService.flush`.

    A flushed ticket is always resolved exactly once, either with a solution
    (:attr:`result`) or -- when its batch failed -- with the error that
    poisoned it (:attr:`error`; reading :attr:`result` re-raises it).  Failed
    tickets are *not* silently re-queued: a request that cannot be served
    reports its error instead of retrying forever at the head of the queue.
    """

    __slots__ = ("key", "_b", "_single", "_result", "nrhs", "done", "error")

    def __init__(self, key: FactorKey, b: np.ndarray, single: bool) -> None:
        self.key = key
        self._b: Optional[np.ndarray] = b  # validated (n, k) block until resolved
        self._single = single
        self._result: Optional[np.ndarray] = None
        self.nrhs = b.shape[1]
        self.done = False
        #: The exception that failed this ticket's batch (None on success).
        self.error: Optional[BaseException] = None

    @property
    def result(self) -> np.ndarray:
        """The solution, shaped like the submitted ``b``.

        Raises ``RuntimeError`` while unresolved; re-raises the batch's
        exception when the ticket was resolved with an error.
        """
        if not self.done:
            raise RuntimeError(
                "ticket not resolved yet; call SolverService.flush() first"
            )
        if self.error is not None:
            raise self.error
        return self._result

    def _resolve(self, x: np.ndarray) -> None:
        # Copy out of the batch solution so tickets never alias each other,
        # and drop the input block so a resolved ticket holds one array.
        self._result = x[:, 0].copy() if self._single else x.copy()
        self._b = None
        self.done = True

    def _fail(self, exc: BaseException) -> None:
        self.error = exc
        self._b = None
        self.done = True

    def __repr__(self) -> str:
        state = "error" if self.error is not None else ("done" if self.done else "pending")
        return f"SolveTicket({self.key.kernel}, n={self.key.n}, nrhs={self.nrhs}, {state})"


#: Half-decade bucket upper bounds of :class:`LatencyHistogram`, 100us .. 100s.
_BUCKET_BOUNDS: Tuple[float, ...] = tuple(10.0 ** (k / 2.0) for k in range(-8, 5))


class LatencyHistogram:
    """Half-decade log-bucketed latency histogram (seconds).

    Buckets span 100 microseconds to 100 seconds with two buckets per decade
    (plus an overflow bucket), enough resolution to tell a cache-hit batch
    from a factorize-on-miss batch at a fixed, tiny memory cost.

    A view over one :class:`repro.obs.metrics.Histogram` series: the counts
    live in the service's :class:`~repro.obs.metrics.MetricsRegistry` (family
    ``repro_service_batch_seconds``), and this class only preserves the
    pre-registry API (``observe`` / ``quantile`` / ``summary`` and the
    ``counts`` / ``count`` / ``total`` / ``min`` / ``max`` attributes) --
    the latency a Prometheus scrape reports and the one
    :meth:`SolverService.metrics` reports are the same numbers by
    construction.
    """

    __slots__ = ("_hist",)

    def __init__(self, hist: Optional[Histogram] = None) -> None:
        if hist is None:  # standalone use (tests); normally backed by a registry
            hist = MetricsRegistry().histogram(
                _BATCH_SECONDS[0], _BATCH_SECONDS[1], buckets=_BUCKET_BOUNDS
            )
        self._hist = hist

    def observe(self, seconds: float) -> None:
        self._hist.observe(seconds)

    @property
    def counts(self) -> List[int]:
        return list(self._hist.counts)

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def total(self) -> float:
        return self._hist.sum

    @property
    def min(self) -> float:
        return self._hist.min if self._hist.count else float("inf")

    @property
    def max(self) -> float:
        return self._hist.max if self._hist.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile observation."""
        return self._hist.quantile(q)

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable snapshot (count/total/mean/min/max/p50/p95 + buckets)."""
        counts = self.counts
        buckets = {
            f"le_{_BUCKET_BOUNDS[i]:.4g}s": n
            for i, n in enumerate(counts[:-1])
            if n
        }
        if counts[-1]:
            buckets["overflow"] = counts[-1]
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "buckets": buckets,
        }


#: ServiceStats counter attribute -> (metric name, help text).
_STAT_COUNTERS: Dict[str, Tuple[str, str]] = {
    "requests": ("repro_service_requests_total", "Tickets submitted"),
    "solves": ("repro_service_solves_total", "Right-hand-side columns solved"),
    "batches": ("repro_service_batches_total", "Batched graph solves executed"),
    "cache_hits": ("repro_service_cache_hits_total", "Factorization cache hits"),
    "cache_misses": ("repro_service_cache_misses_total", "Factorization cache misses"),
    "evictions": (
        "repro_service_evictions_total",
        "Factorizations evicted from the LRU cache (capacity pressure only)",
    ),
    "expirations": (
        "repro_service_expirations_total",
        "Factorizations dropped by TTL expiry",
    ),
    "errors": (
        "repro_service_errors_total",
        "Tickets resolved with an error (their batch failed)",
    ),
    "compress_tasks": (
        "repro_service_compress_tasks_total",
        "Compression graph tasks recorded (cache misses only)",
    ),
    "factor_tasks": (
        "repro_service_factor_tasks_total",
        "Factorization graph tasks recorded (cache misses only)",
    ),
}

#: ServiceStats stage-timer attribute -> ``stage`` label value.
_STAT_STAGES: Dict[str, str] = {
    "compress_seconds": "compress",
    "factorize_seconds": "factorize",
    "factor_seconds": "factor",
    "solve_seconds": "solve",
}

_STAGE_SECONDS = ("repro_service_stage_seconds_total", "Wall seconds per service stage")
_BATCH_SECONDS = (
    "repro_service_batch_seconds",
    "Batched-solve wall seconds by factorization key",
)
_BATCH_RHS = (
    "repro_service_batch_rhs",
    "Right-hand-side columns per batched solve",
)
_QUEUE_DEPTH = ("repro_service_queue_depth", "Queued-ticket high-water mark")


class ServiceStats:
    """Counters accumulated over the lifetime of one :class:`SolverService`.

    A *view* over the service's :class:`~repro.obs.metrics.MetricsRegistry`:
    the attribute surface of the pre-registry dataclass is preserved
    (including augmented assignment, ``stats.cache_hits += 1``), but every
    counter, stage timer and latency histogram reads and writes registry
    series (``repro_service_*``), so :meth:`SolverService.metrics` and the
    Prometheus exposition can never disagree -- one source of truth.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Per-factorization-key batch-solve latency views
        #: (key label -> :class:`LatencyHistogram`).
        self.latency: Dict[str, LatencyHistogram] = {}
        # Touch every series up front so the exposition reports zeros for a
        # fresh service instead of omitting the families.
        for name, help_text in _STAT_COUNTERS.values():
            self.registry.counter(name, help_text)
        for stage in _STAT_STAGES.values():
            self.registry.counter(*_STAGE_SECONDS, stage=stage)

    @property
    def solves_per_sec(self) -> float:
        """Solved RHS columns per second of solve-phase wall time."""
        solve_seconds = self.solve_seconds
        return self.solves / solve_seconds if solve_seconds > 0 else 0.0

    def observe_latency(self, label: str, seconds: float) -> None:
        """Record one batched-solve latency under ``label``."""
        view = self.latency.get(label)
        if view is None:
            hist = self.registry.histogram(
                *_BATCH_SECONDS, buckets=_BUCKET_BOUNDS, key=label
            )
            view = self.latency[label] = LatencyHistogram(hist)
        view.observe(seconds)


def _counter_view(attr: str) -> property:
    name, help_text = _STAT_COUNTERS[attr]

    def _get(self: ServiceStats) -> int:
        return int(self.registry.value(name))

    def _set(self: ServiceStats, new: float) -> None:
        counter = self.registry.counter(name, help_text)
        counter.inc(new - counter.value)

    return property(_get, _set, doc=help_text)


def _stage_view(attr: str) -> property:
    stage = _STAT_STAGES[attr]

    def _get(self: ServiceStats) -> float:
        return self.registry.value(_STAGE_SECONDS[0], stage=stage)

    def _set(self: ServiceStats, new: float) -> None:
        counter = self.registry.counter(*_STAGE_SECONDS, stage=stage)
        counter.inc(new - counter.value)

    return property(_get, _set, doc=f"Stage timer: wall seconds in {stage!r}")


for _attr in _STAT_COUNTERS:
    setattr(ServiceStats, _attr, _counter_view(_attr))
for _attr in _STAT_STAGES:
    setattr(ServiceStats, _attr, _stage_view(_attr))
del _attr


class SolverService:
    """Serve many right-hand sides from cached, batched task-graph solves.

    Parameters
    ----------
    backend:
        Solve execution path: ``"reference"`` (sequential factor.solve),
        ``"immediate"`` / ``"sequential"`` (task graph, sequential bodies),
        ``"parallel"`` (thread-pool executor, ``n_workers`` threads; the
        default), ``"process"`` (fused graphs on ``n_workers`` forked pool
        processes, GIL-free) or ``"distributed"`` (``nodes`` forked worker
        processes).  All backends produce bit-identical solutions.
    n_workers / nodes / distribution:
        Runtime-backend parameters, as in :meth:`repro.api.StructuredSolver.solve`.
    panel_size:
        RHS-panel width of the batched graph solves (``None``: one panel).
    refine:
        Apply one iterative-refinement step per batch (against the exact
        kernel operator) to every solve.
    max_cached:
        Factorizations kept in the LRU cache before eviction.  Keys with
        queued or in-flight tickets are *pinned*: eviction always takes the
        oldest unpinned entry, so a flush can never be forced into a silent
        mid-batch refactorization of a key it is about to serve.  When every
        entry is pinned the cache temporarily overflows instead of evicting;
        capacity is restored (and the eviction counted) once the pins drop.
    ttl_seconds:
        Optional factorization time-to-live: entries idle for longer than
        this are dropped by :meth:`purge_expired` (called at the start of
        every :meth:`flush`; the HTTP server also calls it from its flush
        loop).  Pinned keys never expire.  ``None`` (default) disables TTL
        eviction.
    compress_runtime:
        Execution path of the *construction* phase on cache misses, as
        ``StructuredSolver.from_kernel(compress_runtime=...)`` accepts it
        (``False``: sequential build; a runtime backend name compresses
        through the task-graph construction subsystem with this service's
        ``n_workers`` / ``nodes`` / ``distribution``).  A
        :class:`FactorKey` cache hit skips compression *and* factorization
        entirely -- zero graph tasks run (see ``ServiceStats.compress_tasks``
        / ``factor_tasks``).
    fusion:
        Record-time task fusion/batching for every graph this service
        records (compression, factorization and the batched solves).
        ``None`` (default) fuses exactly where required -- the ``process``
        backend; ``True``/``False`` force it on the other task-graph
        backends.  Fusion never changes solutions, only the task census.
    trace:
        Record measured :class:`~repro.runtime.tracing.ExecutionTrace` objects
        for every task-graph factorization and batched solve this service
        runs; :meth:`metrics` then includes the most recent solve trace's
        summary.  Ignored by ``backend="reference"`` (no task graph).
    metrics:
        Optional caller-owned :class:`~repro.obs.metrics.MetricsRegistry` the
        service records into (``None``: the service creates its own,
        :attr:`registry`).  The registry holds *both* the service-level
        ``repro_service_*`` series backing :attr:`stats` / :meth:`metrics`
        *and* the runtime-level ``repro_*`` task/comm/memory series of every
        task-graph compression, factorization and batched solve the service
        runs; render it with :meth:`render_prometheus`.
    """

    def __init__(
        self,
        *,
        backend: str = "parallel",
        n_workers: int = 4,
        nodes: int = 1,
        distribution: Optional[Union[str, DistributionStrategy]] = None,
        panel_size: Optional[int] = None,
        refine: bool = False,
        max_cached: int = 8,
        ttl_seconds: Optional[float] = None,
        compress_runtime: Union[bool, str] = False,
        fusion: Optional[bool] = None,
        trace: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if backend not in _BACKEND_TO_RUNTIME:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{sorted(_BACKEND_TO_RUNTIME)}"
            )
        if backend == "reference" and (panel_size is not None or distribution is not None):
            # Mirror HSSSolver.solve: never silently drop task-graph-only knobs.
            raise ValueError(
                "panel_size and distribution only apply to the task-graph "
                "backends; backend='reference' would ignore them"
            )
        if max_cached <= 0:
            raise ValueError("max_cached must be positive")
        if ttl_seconds is not None and ttl_seconds < 0:
            raise ValueError("ttl_seconds must be non-negative (or None)")
        self.backend = backend
        self.n_workers = n_workers
        self.nodes = nodes
        self.distribution = distribution
        self.panel_size = panel_size
        self.refine = refine
        self.max_cached = max_cached
        self.ttl_seconds = ttl_seconds
        self.compress_runtime = compress_runtime
        self.fusion = fusion
        self.trace = bool(trace)
        #: The service's metrics registry (service-level + runtime-level series).
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.stats = ServiceStats(self.registry)
        self._cache: "OrderedDict[FactorKey, StructuredSolver]" = OrderedDict()
        self._queue: List[SolveTicket] = []
        # One re-entrant lock guards every shared mutable structure (the LRU
        # OrderedDict, the ticket queue, the eviction pins and the stats
        # read-modify-write property views): submit()/flush()/solver_for()
        # are safe to call from concurrent threads, which is exactly what the
        # HTTP server does (event-loop handlers submit while an executor
        # thread flushes).  Solves themselves run outside the lock.
        self._lock = threading.RLock()
        #: Keys currently being served by an in-flight flush batch
        #: (key -> ticket count); pinned against eviction with the queue.
        self._inflight: Dict[FactorKey, int] = {}
        #: Last-use monotonic stamp per cached key (drives TTL expiry).
        self._stamps: Dict[FactorKey, float] = {}
        #: Measured trace of the most recent batched solve (``trace=True`` only).
        self.last_solve_trace: Any = None

    # -- factorization cache -------------------------------------------------
    def _pinned_keys(self) -> set:
        """Keys that must not be evicted: queued or in-flight tickets exist.

        Caller holds :attr:`_lock`.
        """
        pinned = {ticket.key for ticket in self._queue}
        pinned.update(key for key, count in self._inflight.items() if count > 0)
        return pinned

    def _evict_over_capacity(self) -> None:
        """Evict oldest *unpinned* entries until the cache fits ``max_cached``.

        Caller holds :attr:`_lock`.  A key with queued or in-flight tickets
        is never evicted (that would force a silent refactorization mid-
        flush), and neither is the most-recently-used entry (evicting the
        factorization that was just built or served would defeat the cache);
        when no other candidate exists the cache temporarily overflows and
        capacity is restored at the next unpinned opportunity.  Only true
        evictions count into ``repro_service_evictions_total``.
        """
        while len(self._cache) > self.max_cached:
            pinned = self._pinned_keys()
            newest = next(reversed(self._cache))
            victim = next(
                (k for k in self._cache if k not in pinned and k != newest), None
            )
            if victim is None:
                break
            del self._cache[victim]
            self._stamps.pop(victim, None)
            self.stats.evictions += 1

    def purge_expired(self, *, now: Optional[float] = None) -> List[FactorKey]:
        """Drop cached factorizations idle for longer than ``ttl_seconds``.

        Returns the expired keys (empty when TTL is disabled).  Pinned keys
        (queued or in-flight tickets) are never expired.  ``now`` overrides
        the monotonic clock for tests.
        """
        if self.ttl_seconds is None:
            return []
        if now is None:
            now = time.monotonic()
        with self._lock:
            pinned = self._pinned_keys()
            expired = [
                key
                for key, stamp in self._stamps.items()
                if now - stamp > self.ttl_seconds and key not in pinned
            ]
            for key in expired:
                self._cache.pop(key, None)
                del self._stamps[key]
                self.stats.expirations += 1
            return expired

    def solver_for(self, key: FactorKey) -> StructuredSolver:
        """The cached, factorized :class:`StructuredSolver` for ``key`` (build on miss).

        Thread-safe; the service lock is held across the whole miss path, so
        two concurrent requests for the same new key build it once.
        """
        with self._lock:
            solver = self._cache.get(key)
            if solver is not None:
                self._cache.move_to_end(key)
                self._stamps[key] = time.monotonic()
                self.stats.cache_hits += 1
                return solver
            return self._build_and_cache(key)

    def _build_and_cache(self, key: FactorKey) -> StructuredSolver:
        """Miss path of :meth:`solver_for`; caller holds :attr:`_lock`."""
        self.stats.cache_misses += 1
        t0 = time.perf_counter()
        solver = StructuredSolver.from_kernel(
            key.kernel, n=key.n, format=key.format,
            leaf_size=key.leaf_size, max_rank=key.max_rank,
            compress_runtime=self.compress_runtime,
            compress_nodes=self.nodes,
            compress_workers=self.n_workers,
            compress_distribution=self.distribution,
            compress_fusion=self.fusion,
            compress_trace=self.trace and self.compress_runtime is not False,
            compress_metrics=self.registry,
            **dict(key.params),
        )
        t1 = time.perf_counter()
        self.stats.compress_seconds += t1 - t0
        # Factorize through the service's backend so the whole miss path is
        # one task-graph pipeline (compress -> factorize); the reference
        # backend keeps the sequential path.
        use_runtime = _BACKEND_TO_RUNTIME[self.backend]
        if use_runtime is False:
            solver.factorize()
        else:
            solver.factorize(
                use_runtime=use_runtime,
                nodes=self.nodes,
                n_workers=self.n_workers,
                distribution=self.distribution,
                fusion=self.fusion,
                trace=self.trace,
                metrics=self.registry,
            )
        t2 = time.perf_counter()
        self.stats.factorize_seconds += t2 - t1
        self.stats.factor_seconds += t2 - t0
        if solver.compress_runtime is not None:
            self.stats.compress_tasks += solver.compress_runtime.num_tasks
        if solver.factorize_runtime is not None:
            self.stats.factor_tasks += solver.factorize_runtime.num_tasks
        self._cache[key] = solver
        self._stamps[key] = time.monotonic()
        self._evict_over_capacity()
        return solver

    @property
    def cached_keys(self) -> List[FactorKey]:
        with self._lock:
            return list(self._cache)

    # -- request queue -------------------------------------------------------
    def submit(
        self,
        b: np.ndarray,
        *,
        kernel: str,
        n: int,
        leaf_size: int = 256,
        max_rank: int = 100,
        format: str = "hss",
        **params: float,
    ) -> SolveTicket:
        """Queue one right-hand side (vector or ``(n, k)`` block) for solving.

        ``n`` is required (never inferred from ``b``): the cache key must name
        the intended problem, so a mis-sized right-hand side raises instead of
        silently factorizing -- and caching -- a wrong-size problem.
        ``format`` selects the structured representation (registry-driven).
        """
        key = FactorKey.make(
            kernel, n, leaf_size=leaf_size, max_rank=max_rank, format=format, **params
        )
        bm, single = validate_rhs(b, key.n)
        ticket = SolveTicket(key, bm, single)
        with self._lock:
            self._queue.append(ticket)
            self.stats.requests += 1
            self.registry.gauge(*_QUEUE_DEPTH, mode="max").set_max(len(self._queue))
        return ticket

    @property
    def pending(self) -> int:
        """Queued tickets not yet flushed."""
        with self._lock:
            return len(self._queue)

    def _revalidate(self, key: FactorKey, solver: StructuredSolver) -> StructuredSolver:
        """Re-validate one cached factorization against its key.

        Runs once per distinct key per :meth:`flush` -- *not* once per ticket
        -- so a large same-key batch pays the check a single time, and a
        cache hit never re-runs compression or factorization (zero graph
        tasks execute; see ``ServiceStats.compress_tasks`` /
        ``factor_tasks``).  A cached entry whose problem description no
        longer matches its key (a corrupted cache) fails loudly instead of
        serving wrong-size solutions.
        """
        if solver.n != key.n or solver.format != key.format:
            raise RuntimeError(
                f"cached solver for {key} describes a different problem "
                f"(n={solver.n}, format={solver.format!r}); the cache is corrupt"
            )
        if solver.factor is None:  # pragma: no cover - defensive
            raise RuntimeError(f"cached solver for {key} lost its factorization")
        return solver

    def flush(self) -> List[SolveTicket]:
        """Drain the queue: one batched task-graph solve per distinct key.

        Tickets sharing a factorization key are stacked column-wise into one
        block right-hand side and solved through a single recorded graph; the
        cached factorization is re-validated once per key (not per ticket)
        and the solution block is split back onto the tickets.  Returns the
        drained tickets in submission order, every one resolved exactly once:
        with its solution, or -- when its batch failed -- with the exception
        set as :attr:`SolveTicket.error` (reading ``.result`` re-raises it).
        A failed key never poisons the rest of the flush: tickets against
        *other* keys in the same drain still solve normally, and a failed
        ticket is never re-queued, so one bad request cannot head-of-line
        block the service by retrying forever.
        """
        self.purge_expired()
        with self._lock:
            queue, self._queue = self._queue, []
            # Pin the keys being served: eviction must not drop a
            # factorization mid-batch (see _evict_over_capacity).
            for ticket in queue:
                self._inflight[ticket.key] = self._inflight.get(ticket.key, 0) + 1
        by_key: "OrderedDict[FactorKey, List[SolveTicket]]" = OrderedDict()
        for ticket in queue:
            by_key.setdefault(ticket.key, []).append(ticket)
        use_runtime = _BACKEND_TO_RUNTIME[self.backend]
        solve_kwargs: Dict[str, object] = {"use_runtime": use_runtime, "refine": self.refine}
        if use_runtime is not False:
            # Task-graph-only knobs; the reference path rejects them.
            solve_kwargs.update(
                nodes=self.nodes,
                n_workers=self.n_workers,
                distribution=self.distribution,
                panel_size=self.panel_size,
                fusion=self.fusion,
                trace=self.trace,
                metrics=self.registry,
            )
        try:
            for key, tickets in by_key.items():
                try:
                    solver = self._revalidate(key, self.solver_for(key))
                    batch = np.concatenate([t._b for t in tickets], axis=1)
                    t0 = time.perf_counter()
                    x = solver.solve(batch, **solve_kwargs)
                    elapsed = time.perf_counter() - t0
                except Exception as exc:
                    # Resolve this key's tickets with the error and move on:
                    # the other keys in the drain must still be served.
                    with self._lock:
                        for ticket in tickets:
                            ticket._fail(exc)
                        self.stats.errors += len(tickets)
                    continue
                with self._lock:
                    self.stats.solve_seconds += elapsed
                    self.stats.observe_latency(key.label, elapsed)
                    self.stats.batches += 1
                    self.stats.solves += batch.shape[1]
                    self.registry.histogram(
                        *_BATCH_RHS, buckets=COUNT_BUCKETS
                    ).observe(batch.shape[1])
                    if self.trace and solver.solve_runtime is not None:
                        self.last_solve_trace = solver.solve_runtime.last_trace
                    start = 0
                    for ticket in tickets:
                        ticket._resolve(x[:, start : start + ticket.nrhs])
                        start += ticket.nrhs
        finally:
            with self._lock:
                for ticket in queue:
                    left = self._inflight.get(ticket.key, 0) - 1
                    if left > 0:
                        self._inflight[ticket.key] = left
                    else:
                        self._inflight.pop(ticket.key, None)
                # Only a BaseException escaping the loop (KeyboardInterrupt,
                # executor teardown) leaves tickets unresolved; re-queue them
                # so a later flush can still serve them.
                unresolved = [t for t in queue if not t.done]
                if unresolved:
                    self._queue = unresolved + self._queue
                # Pins may have held the cache over capacity; restore it now.
                self._evict_over_capacity()
        return queue

    def solve(
        self,
        b: np.ndarray,
        *,
        kernel: str,
        n: int,
        leaf_size: int = 256,
        max_rank: int = 100,
        format: str = "hss",
        **params: float,
    ) -> np.ndarray:
        """Convenience: submit one request, flush, return its solution."""
        ticket = self.submit(
            b, kernel=kernel, n=n, leaf_size=leaf_size, max_rank=max_rank,
            format=format, **params
        )
        self.flush()
        return ticket.result

    def metrics(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the service's runtime metrics.

        Fields: the backend configuration (``backend`` / ``n_workers`` /
        ``nodes`` / ``panel_size``), cache state (``cached`` / ``pending`` /
        ``cache_hits`` / ``cache_misses`` / ``evictions``), request counters
        (``requests`` / ``solves`` / ``batches`` / ``solves_per_sec``), the
        stage timers (``compress_seconds`` / ``factorize_seconds`` /
        ``factor_seconds`` / ``solve_seconds``), per-key batch latency
        histogram summaries under ``latency``, and -- when the service was
        created with ``trace=True`` -- the most recent solve trace's
        breakdown summary under ``last_solve_trace``.

        Every number here is read from the same :attr:`registry` series the
        Prometheus exposition renders (:meth:`render_prometheus`); there is
        no parallel bookkeeping path.
        """
        stats = self.stats
        snapshot: Dict[str, Any] = {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "nodes": self.nodes,
            "panel_size": self.panel_size,
            "cached": len(self._cache),
            "pending": self.pending,
            "requests": stats.requests,
            "solves": stats.solves,
            "batches": stats.batches,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "evictions": stats.evictions,
            "expired": stats.expirations,
            "errors": stats.errors,
            "ttl_seconds": self.ttl_seconds,
            "compress_seconds": stats.compress_seconds,
            "factorize_seconds": stats.factorize_seconds,
            "factor_seconds": stats.factor_seconds,
            "solve_seconds": stats.solve_seconds,
            "solves_per_sec": stats.solves_per_sec,
            "compress_tasks": stats.compress_tasks,
            "factor_tasks": stats.factor_tasks,
            "latency": {label: hist.summary() for label, hist in stats.latency.items()},
        }
        if self.last_solve_trace is not None:
            snapshot["last_solve_trace"] = self.last_solve_trace.summary()
        return snapshot

    # -- persistence ---------------------------------------------------------
    def save_cache(self, path: Any) -> int:
        """Write every cached factorization to ``path``; returns the count.

        See :func:`repro.service.persistence.save_cache` for the format; a
        restarted service calls :meth:`load_cache` on the same path to serve
        cache hits without refactorizing anything.
        """
        from repro.service import persistence

        return persistence.save_cache(self, path)

    def load_cache(self, path: Any) -> int:
        """Install factorizations previously saved with :meth:`save_cache`.

        Returns the number of entries loaded; raises ``ValueError`` on a
        corrupt or truncated file.
        """
        from repro.service import persistence

        return persistence.load_cache(self, path)

    def render_prometheus(self) -> str:
        """The service's :attr:`registry` in Prometheus text exposition format.

        Includes the ``repro_service_*`` serving metrics backing
        :meth:`metrics` and the ``repro_*`` runtime task/comm/memory metrics
        of every task-graph execution the service ran.
        """
        return self.registry.render_prometheus()

    def __repr__(self) -> str:
        return (
            f"SolverService(backend={self.backend!r}, cached={len(self._cache)}, "
            f"pending={self.pending}, solves={self.stats.solves})"
        )
