"""A caching, batching solve service on top of the task-graph solvers.

The ROADMAP north star bills by solves: one factorization amortized over many
right-hand sides.  :class:`SolverService` keeps an LRU cache of
:class:`~repro.api.StructuredSolver` factorizations keyed by the full problem
description (format, kernel, n, leaf_size, max_rank, kernel params), queues incoming
right-hand sides as :class:`SolveTicket` objects, and drains the queue in
:meth:`SolverService.flush` as *batched* task-graph solves: all queued
requests against the same factorization are stacked into one ``(n, k)`` block
and solved through a single recorded graph on the configured backend
(optionally split into ``panel_size`` panels so independent panels overlap
inside the runtime).

>>> service = SolverService(backend="parallel", n_workers=4)
>>> t1 = service.submit(b1, kernel="yukawa", n=1024, leaf_size=128, max_rank=30)
>>> t2 = service.submit(b2, kernel="yukawa", n=1024, leaf_size=128, max_rank=30)
>>> service.flush()
>>> x1, x2 = t1.result, t2.result      # one factorization, one batched solve
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api import StructuredSolver
from repro.core.rhs import validate_rhs
from repro.distribution.strategies import DistributionStrategy
from repro.obs.metrics import COUNT_BUCKETS, Histogram, MetricsRegistry
from repro.pipeline.registry import get_format

__all__ = [
    "FactorKey",
    "LatencyHistogram",
    "SolveTicket",
    "ServiceStats",
    "SolverService",
]

#: Maps the service backend name to the ``use_runtime`` mode of
#: :meth:`repro.api.StructuredSolver.solve`.
_BACKEND_TO_RUNTIME: Dict[str, Union[bool, str]] = {
    "reference": False,
    "immediate": True,
    "sequential": "deferred",
    "parallel": "parallel",
    "process": "process",
    "distributed": "distributed",
}


@dataclass(frozen=True)
class FactorKey:
    """Cache key identifying one factorization (problem description).

    ``format`` names the structured representation (any format registered in
    :mod:`repro.pipeline.registry`); the same kernel problem compressed as
    HSS and as HODLR are distinct factorizations and cache separately.
    """

    kernel: str
    n: int
    leaf_size: int = 256
    max_rank: int = 100
    params: Tuple[Tuple[str, float], ...] = ()
    format: str = "hss"

    @classmethod
    def make(
        cls, kernel: str, n: int, *, leaf_size: int = 256, max_rank: int = 100,
        format: str = "hss", **params: float,
    ) -> "FactorKey":
        # Resolve through the registry so unknown formats fail at submit
        # time (with the registered choices) instead of at factorization.
        return cls(
            kernel=str(kernel), n=int(n), leaf_size=int(leaf_size),
            max_rank=int(max_rank), params=tuple(sorted(params.items())),
            format=get_format(format).name,
        )

    @property
    def label(self) -> str:
        """Compact metrics label, e.g. ``"hss:yukawa:n=1024"``."""
        return f"{self.format}:{self.kernel}:n={self.n}"


class SolveTicket:
    """Handle for one queued right-hand side, resolved by :meth:`SolverService.flush`."""

    __slots__ = ("key", "_b", "_single", "_result", "nrhs", "done")

    def __init__(self, key: FactorKey, b: np.ndarray, single: bool) -> None:
        self.key = key
        self._b: Optional[np.ndarray] = b  # validated (n, k) block until resolved
        self._single = single
        self._result: Optional[np.ndarray] = None
        self.nrhs = b.shape[1]
        self.done = False

    @property
    def result(self) -> np.ndarray:
        """The solution, shaped like the submitted ``b``."""
        if not self.done:
            raise RuntimeError(
                "ticket not resolved yet; call SolverService.flush() first"
            )
        return self._result

    def _resolve(self, x: np.ndarray) -> None:
        # Copy out of the batch solution so tickets never alias each other,
        # and drop the input block so a resolved ticket holds one array.
        self._result = x[:, 0].copy() if self._single else x.copy()
        self._b = None
        self.done = True

    def __repr__(self) -> str:
        return f"SolveTicket({self.key.kernel}, n={self.key.n}, nrhs={self.nrhs}, done={self.done})"


#: Half-decade bucket upper bounds of :class:`LatencyHistogram`, 100us .. 100s.
_BUCKET_BOUNDS: Tuple[float, ...] = tuple(10.0 ** (k / 2.0) for k in range(-8, 5))


class LatencyHistogram:
    """Half-decade log-bucketed latency histogram (seconds).

    Buckets span 100 microseconds to 100 seconds with two buckets per decade
    (plus an overflow bucket), enough resolution to tell a cache-hit batch
    from a factorize-on-miss batch at a fixed, tiny memory cost.

    A view over one :class:`repro.obs.metrics.Histogram` series: the counts
    live in the service's :class:`~repro.obs.metrics.MetricsRegistry` (family
    ``repro_service_batch_seconds``), and this class only preserves the
    pre-registry API (``observe`` / ``quantile`` / ``summary`` and the
    ``counts`` / ``count`` / ``total`` / ``min`` / ``max`` attributes) --
    the latency a Prometheus scrape reports and the one
    :meth:`SolverService.metrics` reports are the same numbers by
    construction.
    """

    __slots__ = ("_hist",)

    def __init__(self, hist: Optional[Histogram] = None) -> None:
        if hist is None:  # standalone use (tests); normally backed by a registry
            hist = MetricsRegistry().histogram(
                _BATCH_SECONDS[0], _BATCH_SECONDS[1], buckets=_BUCKET_BOUNDS
            )
        self._hist = hist

    def observe(self, seconds: float) -> None:
        self._hist.observe(seconds)

    @property
    def counts(self) -> List[int]:
        return list(self._hist.counts)

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def total(self) -> float:
        return self._hist.sum

    @property
    def min(self) -> float:
        return self._hist.min if self._hist.count else float("inf")

    @property
    def max(self) -> float:
        return self._hist.max if self._hist.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile observation."""
        return self._hist.quantile(q)

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable snapshot (count/total/mean/min/max/p50/p95 + buckets)."""
        counts = self.counts
        buckets = {
            f"le_{_BUCKET_BOUNDS[i]:.4g}s": n
            for i, n in enumerate(counts[:-1])
            if n
        }
        if counts[-1]:
            buckets["overflow"] = counts[-1]
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "buckets": buckets,
        }


#: ServiceStats counter attribute -> (metric name, help text).
_STAT_COUNTERS: Dict[str, Tuple[str, str]] = {
    "requests": ("repro_service_requests_total", "Tickets submitted"),
    "solves": ("repro_service_solves_total", "Right-hand-side columns solved"),
    "batches": ("repro_service_batches_total", "Batched graph solves executed"),
    "cache_hits": ("repro_service_cache_hits_total", "Factorization cache hits"),
    "cache_misses": ("repro_service_cache_misses_total", "Factorization cache misses"),
    "evictions": (
        "repro_service_evictions_total",
        "Factorizations evicted from the LRU cache",
    ),
    "compress_tasks": (
        "repro_service_compress_tasks_total",
        "Compression graph tasks recorded (cache misses only)",
    ),
    "factor_tasks": (
        "repro_service_factor_tasks_total",
        "Factorization graph tasks recorded (cache misses only)",
    ),
}

#: ServiceStats stage-timer attribute -> ``stage`` label value.
_STAT_STAGES: Dict[str, str] = {
    "compress_seconds": "compress",
    "factorize_seconds": "factorize",
    "factor_seconds": "factor",
    "solve_seconds": "solve",
}

_STAGE_SECONDS = ("repro_service_stage_seconds_total", "Wall seconds per service stage")
_BATCH_SECONDS = (
    "repro_service_batch_seconds",
    "Batched-solve wall seconds by factorization key",
)
_BATCH_RHS = (
    "repro_service_batch_rhs",
    "Right-hand-side columns per batched solve",
)
_QUEUE_DEPTH = ("repro_service_queue_depth", "Queued-ticket high-water mark")


class ServiceStats:
    """Counters accumulated over the lifetime of one :class:`SolverService`.

    A *view* over the service's :class:`~repro.obs.metrics.MetricsRegistry`:
    the attribute surface of the pre-registry dataclass is preserved
    (including augmented assignment, ``stats.cache_hits += 1``), but every
    counter, stage timer and latency histogram reads and writes registry
    series (``repro_service_*``), so :meth:`SolverService.metrics` and the
    Prometheus exposition can never disagree -- one source of truth.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Per-factorization-key batch-solve latency views
        #: (key label -> :class:`LatencyHistogram`).
        self.latency: Dict[str, LatencyHistogram] = {}
        # Touch every series up front so the exposition reports zeros for a
        # fresh service instead of omitting the families.
        for name, help_text in _STAT_COUNTERS.values():
            self.registry.counter(name, help_text)
        for stage in _STAT_STAGES.values():
            self.registry.counter(*_STAGE_SECONDS, stage=stage)

    @property
    def solves_per_sec(self) -> float:
        """Solved RHS columns per second of solve-phase wall time."""
        solve_seconds = self.solve_seconds
        return self.solves / solve_seconds if solve_seconds > 0 else 0.0

    def observe_latency(self, label: str, seconds: float) -> None:
        """Record one batched-solve latency under ``label``."""
        view = self.latency.get(label)
        if view is None:
            hist = self.registry.histogram(
                *_BATCH_SECONDS, buckets=_BUCKET_BOUNDS, key=label
            )
            view = self.latency[label] = LatencyHistogram(hist)
        view.observe(seconds)


def _counter_view(attr: str) -> property:
    name, help_text = _STAT_COUNTERS[attr]

    def _get(self: ServiceStats) -> int:
        return int(self.registry.value(name))

    def _set(self: ServiceStats, new: float) -> None:
        counter = self.registry.counter(name, help_text)
        counter.inc(new - counter.value)

    return property(_get, _set, doc=help_text)


def _stage_view(attr: str) -> property:
    stage = _STAT_STAGES[attr]

    def _get(self: ServiceStats) -> float:
        return self.registry.value(_STAGE_SECONDS[0], stage=stage)

    def _set(self: ServiceStats, new: float) -> None:
        counter = self.registry.counter(*_STAGE_SECONDS, stage=stage)
        counter.inc(new - counter.value)

    return property(_get, _set, doc=f"Stage timer: wall seconds in {stage!r}")


for _attr in _STAT_COUNTERS:
    setattr(ServiceStats, _attr, _counter_view(_attr))
for _attr in _STAT_STAGES:
    setattr(ServiceStats, _attr, _stage_view(_attr))
del _attr


class SolverService:
    """Serve many right-hand sides from cached, batched task-graph solves.

    Parameters
    ----------
    backend:
        Solve execution path: ``"reference"`` (sequential factor.solve),
        ``"immediate"`` / ``"sequential"`` (task graph, sequential bodies),
        ``"parallel"`` (thread-pool executor, ``n_workers`` threads; the
        default), ``"process"`` (fused graphs on ``n_workers`` forked pool
        processes, GIL-free) or ``"distributed"`` (``nodes`` forked worker
        processes).  All backends produce bit-identical solutions.
    n_workers / nodes / distribution:
        Runtime-backend parameters, as in :meth:`repro.api.StructuredSolver.solve`.
    panel_size:
        RHS-panel width of the batched graph solves (``None``: one panel).
    refine:
        Apply one iterative-refinement step per batch (against the exact
        kernel operator) to every solve.
    max_cached:
        Factorizations kept in the LRU cache before eviction.
    compress_runtime:
        Execution path of the *construction* phase on cache misses, as
        ``StructuredSolver.from_kernel(compress_runtime=...)`` accepts it
        (``False``: sequential build; a runtime backend name compresses
        through the task-graph construction subsystem with this service's
        ``n_workers`` / ``nodes`` / ``distribution``).  A
        :class:`FactorKey` cache hit skips compression *and* factorization
        entirely -- zero graph tasks run (see ``ServiceStats.compress_tasks``
        / ``factor_tasks``).
    fusion:
        Record-time task fusion/batching for every graph this service
        records (compression, factorization and the batched solves).
        ``None`` (default) fuses exactly where required -- the ``process``
        backend; ``True``/``False`` force it on the other task-graph
        backends.  Fusion never changes solutions, only the task census.
    trace:
        Record measured :class:`~repro.runtime.tracing.ExecutionTrace` objects
        for every task-graph factorization and batched solve this service
        runs; :meth:`metrics` then includes the most recent solve trace's
        summary.  Ignored by ``backend="reference"`` (no task graph).
    metrics:
        Optional caller-owned :class:`~repro.obs.metrics.MetricsRegistry` the
        service records into (``None``: the service creates its own,
        :attr:`registry`).  The registry holds *both* the service-level
        ``repro_service_*`` series backing :attr:`stats` / :meth:`metrics`
        *and* the runtime-level ``repro_*`` task/comm/memory series of every
        task-graph compression, factorization and batched solve the service
        runs; render it with :meth:`render_prometheus`.
    """

    def __init__(
        self,
        *,
        backend: str = "parallel",
        n_workers: int = 4,
        nodes: int = 1,
        distribution: Optional[Union[str, DistributionStrategy]] = None,
        panel_size: Optional[int] = None,
        refine: bool = False,
        max_cached: int = 8,
        compress_runtime: Union[bool, str] = False,
        fusion: Optional[bool] = None,
        trace: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if backend not in _BACKEND_TO_RUNTIME:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{sorted(_BACKEND_TO_RUNTIME)}"
            )
        if backend == "reference" and (panel_size is not None or distribution is not None):
            # Mirror HSSSolver.solve: never silently drop task-graph-only knobs.
            raise ValueError(
                "panel_size and distribution only apply to the task-graph "
                "backends; backend='reference' would ignore them"
            )
        if max_cached <= 0:
            raise ValueError("max_cached must be positive")
        self.backend = backend
        self.n_workers = n_workers
        self.nodes = nodes
        self.distribution = distribution
        self.panel_size = panel_size
        self.refine = refine
        self.max_cached = max_cached
        self.compress_runtime = compress_runtime
        self.fusion = fusion
        self.trace = bool(trace)
        #: The service's metrics registry (service-level + runtime-level series).
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.stats = ServiceStats(self.registry)
        self._cache: "OrderedDict[FactorKey, StructuredSolver]" = OrderedDict()
        self._queue: List[SolveTicket] = []
        #: Measured trace of the most recent batched solve (``trace=True`` only).
        self.last_solve_trace: Any = None

    # -- factorization cache -------------------------------------------------
    def solver_for(self, key: FactorKey) -> StructuredSolver:
        """The cached, factorized :class:`StructuredSolver` for ``key`` (build on miss)."""
        solver = self._cache.get(key)
        if solver is not None:
            self._cache.move_to_end(key)
            self.stats.cache_hits += 1
            return solver
        self.stats.cache_misses += 1
        t0 = time.perf_counter()
        solver = StructuredSolver.from_kernel(
            key.kernel, n=key.n, format=key.format,
            leaf_size=key.leaf_size, max_rank=key.max_rank,
            compress_runtime=self.compress_runtime,
            compress_nodes=self.nodes,
            compress_workers=self.n_workers,
            compress_distribution=self.distribution,
            compress_fusion=self.fusion,
            compress_trace=self.trace and self.compress_runtime is not False,
            compress_metrics=self.registry,
            **dict(key.params),
        )
        t1 = time.perf_counter()
        self.stats.compress_seconds += t1 - t0
        # Factorize through the service's backend so the whole miss path is
        # one task-graph pipeline (compress -> factorize); the reference
        # backend keeps the sequential path.
        use_runtime = _BACKEND_TO_RUNTIME[self.backend]
        if use_runtime is False:
            solver.factorize()
        else:
            solver.factorize(
                use_runtime=use_runtime,
                nodes=self.nodes,
                n_workers=self.n_workers,
                distribution=self.distribution,
                fusion=self.fusion,
                trace=self.trace,
                metrics=self.registry,
            )
        t2 = time.perf_counter()
        self.stats.factorize_seconds += t2 - t1
        self.stats.factor_seconds += t2 - t0
        if solver.compress_runtime is not None:
            self.stats.compress_tasks += solver.compress_runtime.num_tasks
        if solver.factorize_runtime is not None:
            self.stats.factor_tasks += solver.factorize_runtime.num_tasks
        self._cache[key] = solver
        while len(self._cache) > self.max_cached:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return solver

    @property
    def cached_keys(self) -> List[FactorKey]:
        return list(self._cache)

    # -- request queue -------------------------------------------------------
    def submit(
        self,
        b: np.ndarray,
        *,
        kernel: str,
        n: int,
        leaf_size: int = 256,
        max_rank: int = 100,
        format: str = "hss",
        **params: float,
    ) -> SolveTicket:
        """Queue one right-hand side (vector or ``(n, k)`` block) for solving.

        ``n`` is required (never inferred from ``b``): the cache key must name
        the intended problem, so a mis-sized right-hand side raises instead of
        silently factorizing -- and caching -- a wrong-size problem.
        ``format`` selects the structured representation (registry-driven).
        """
        key = FactorKey.make(
            kernel, n, leaf_size=leaf_size, max_rank=max_rank, format=format, **params
        )
        bm, single = validate_rhs(b, key.n)
        ticket = SolveTicket(key, bm, single)
        self._queue.append(ticket)
        self.stats.requests += 1
        self.registry.gauge(*_QUEUE_DEPTH, mode="max").set_max(len(self._queue))
        return ticket

    @property
    def pending(self) -> int:
        """Queued tickets not yet flushed."""
        return len(self._queue)

    def _revalidate(self, key: FactorKey, solver: StructuredSolver) -> StructuredSolver:
        """Re-validate one cached factorization against its key.

        Runs once per distinct key per :meth:`flush` -- *not* once per ticket
        -- so a large same-key batch pays the check a single time, and a
        cache hit never re-runs compression or factorization (zero graph
        tasks execute; see ``ServiceStats.compress_tasks`` /
        ``factor_tasks``).  A cached entry whose problem description no
        longer matches its key (a corrupted cache) fails loudly instead of
        serving wrong-size solutions.
        """
        if solver.n != key.n or solver.format != key.format:
            raise RuntimeError(
                f"cached solver for {key} describes a different problem "
                f"(n={solver.n}, format={solver.format!r}); the cache is corrupt"
            )
        if solver.factor is None:  # pragma: no cover - defensive
            raise RuntimeError(f"cached solver for {key} lost its factorization")
        return solver

    def flush(self) -> List[SolveTicket]:
        """Drain the queue: one batched task-graph solve per distinct key.

        Tickets sharing a factorization key are stacked column-wise into one
        block right-hand side and solved through a single recorded graph; the
        cached factorization is re-validated once per key (not per ticket)
        and the solution block is split back onto the tickets.  Returns the
        resolved tickets in submission order.
        """
        queue, self._queue = self._queue, []
        by_key: "OrderedDict[FactorKey, List[SolveTicket]]" = OrderedDict()
        for ticket in queue:
            by_key.setdefault(ticket.key, []).append(ticket)
        use_runtime = _BACKEND_TO_RUNTIME[self.backend]
        solve_kwargs: Dict[str, object] = {"use_runtime": use_runtime, "refine": self.refine}
        if use_runtime is not False:
            # Task-graph-only knobs; the reference path rejects them.
            solve_kwargs.update(
                nodes=self.nodes,
                n_workers=self.n_workers,
                distribution=self.distribution,
                panel_size=self.panel_size,
                fusion=self.fusion,
                trace=self.trace,
                metrics=self.registry,
            )
        try:
            for key, tickets in by_key.items():
                solver = self._revalidate(key, self.solver_for(key))
                batch = np.concatenate([t._b for t in tickets], axis=1)
                t0 = time.perf_counter()
                x = solver.solve(batch, **solve_kwargs)
                elapsed = time.perf_counter() - t0
                self.stats.solve_seconds += elapsed
                self.stats.observe_latency(key.label, elapsed)
                self.stats.batches += 1
                self.stats.solves += batch.shape[1]
                self.registry.histogram(
                    *_BATCH_RHS, buckets=COUNT_BUCKETS
                ).observe(batch.shape[1])
                if self.trace and solver.solve_runtime is not None:
                    self.last_solve_trace = solver.solve_runtime.last_trace
                start = 0
                for ticket in tickets:
                    ticket._resolve(x[:, start : start + ticket.nrhs])
                    start += ticket.nrhs
        except BaseException:
            # A failed batch (bad backend config, worker crash, ...) must not
            # strand the remaining requests: re-queue every unresolved ticket
            # so a corrected service can flush them again.
            self._queue = [t for t in queue if not t.done] + self._queue
            raise
        return queue

    def solve(
        self,
        b: np.ndarray,
        *,
        kernel: str,
        n: int,
        leaf_size: int = 256,
        max_rank: int = 100,
        format: str = "hss",
        **params: float,
    ) -> np.ndarray:
        """Convenience: submit one request, flush, return its solution."""
        ticket = self.submit(
            b, kernel=kernel, n=n, leaf_size=leaf_size, max_rank=max_rank,
            format=format, **params
        )
        self.flush()
        return ticket.result

    def metrics(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the service's runtime metrics.

        Fields: the backend configuration (``backend`` / ``n_workers`` /
        ``nodes`` / ``panel_size``), cache state (``cached`` / ``pending`` /
        ``cache_hits`` / ``cache_misses`` / ``evictions``), request counters
        (``requests`` / ``solves`` / ``batches`` / ``solves_per_sec``), the
        stage timers (``compress_seconds`` / ``factorize_seconds`` /
        ``factor_seconds`` / ``solve_seconds``), per-key batch latency
        histogram summaries under ``latency``, and -- when the service was
        created with ``trace=True`` -- the most recent solve trace's
        breakdown summary under ``last_solve_trace``.

        Every number here is read from the same :attr:`registry` series the
        Prometheus exposition renders (:meth:`render_prometheus`); there is
        no parallel bookkeeping path.
        """
        stats = self.stats
        snapshot: Dict[str, Any] = {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "nodes": self.nodes,
            "panel_size": self.panel_size,
            "cached": len(self._cache),
            "pending": self.pending,
            "requests": stats.requests,
            "solves": stats.solves,
            "batches": stats.batches,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "evictions": stats.evictions,
            "compress_seconds": stats.compress_seconds,
            "factorize_seconds": stats.factorize_seconds,
            "factor_seconds": stats.factor_seconds,
            "solve_seconds": stats.solve_seconds,
            "solves_per_sec": stats.solves_per_sec,
            "compress_tasks": stats.compress_tasks,
            "factor_tasks": stats.factor_tasks,
            "latency": {label: hist.summary() for label, hist in stats.latency.items()},
        }
        if self.last_solve_trace is not None:
            snapshot["last_solve_trace"] = self.last_solve_trace.summary()
        return snapshot

    def render_prometheus(self) -> str:
        """The service's :attr:`registry` in Prometheus text exposition format.

        Includes the ``repro_service_*`` serving metrics backing
        :meth:`metrics` and the ``repro_*`` runtime task/comm/memory metrics
        of every task-graph execution the service ran.
        """
        return self.registry.render_prometheus()

    def __repr__(self) -> str:
        return (
            f"SolverService(backend={self.backend!r}, cached={len(self._cache)}, "
            f"pending={self.pending}, solves={self.stats.solves})"
        )
