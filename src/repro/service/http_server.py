"""Asyncio HTTP front end for the :class:`~repro.service.SolverService`.

The always-on serving layer of ROADMAP item 3: the paper's economics are
factorize-once/solve-many, and this server keeps the factorization cache hot
across requests, batching concurrent right-hand sides into single task-graph
solves through the service's flush loop.  Stdlib-only (``asyncio`` +
hand-rolled HTTP/1.1), so serving adds zero dependencies.

Endpoints
---------
``POST /v1/solve``
    Submit one right-hand side and block until the batching flush loop
    resolves it (or ``request_timeout`` elapses -> 504).  Concurrent solves
    against the same problem are batched into one graph solve.
``POST /v1/submit`` / ``GET /v1/tickets/<id>``
    The asynchronous path: submit returns ``202`` with a ticket id
    immediately; poll the ticket for ``pending`` / ``done`` (solution
    included, record removed) / ``error``.  Tickets are tenant-scoped.
``GET /metrics``
    ``SolverService.render_prometheus()`` verbatim -- service counters plus
    the runtime task/comm/memory series, strict-parser clean
    (``python -m repro.obs.exposition``), plus the ``repro_http_*`` request
    metrics this server records.
``GET /healthz`` / ``GET /v1/stats``
    Liveness and the JSON metrics snapshot (:meth:`SolverService.metrics`).

Admission control
-----------------
Requests authenticate via ``x-api-key`` (or ``Authorization: Bearer``)
against an :class:`~repro.service.auth.Authenticator`; unknown keys get 401.
Per-tenant token buckets return 429 with ``Retry-After`` when a tenant
out-runs its budget, and queue-depth backpressure returns 503 with
``Retry-After`` once ``max_pending`` tickets are queued -- load is shed
*before* it costs a factorization.  ``/healthz`` and ``/metrics`` stay open
so probes and scrapes never need credentials.

Request body (solve/submit), JSON::

    {"b": [...], "kernel": "yukawa", "n": 1024,
     "leaf_size": 128, "max_rank": 30, "format": "hss",
     "params": {"lam": 1.0}}

``b`` is one vector (length ``n``) or an ``(n, k)`` nested list.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.obs.runtime_metrics import (
    record_http_inflight,
    record_http_rejection,
    record_http_request,
)
from repro.service.auth import Authenticator, AuthError, RateLimited
from repro.service.solver_service import SolverService, SolveTicket

__all__ = ["SolverHTTPServer", "HTTPError"]

_MAX_BODY_BYTES = 64 * 1024 * 1024  # one (n, k) float64 block tops out well below
_SERVER_NAME = "repro-solver"


class HTTPError(Exception):
    """An error response with a status code (and optional extra headers)."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _TicketRecord:
    """One submitted ticket awaiting resolution, scoped to its tenant."""

    __slots__ = ("ticket", "tenant", "event", "created", "resolved_at")

    def __init__(self, ticket: SolveTicket, tenant: str) -> None:
        self.ticket = ticket
        self.tenant = tenant
        self.event = asyncio.Event()
        self.created = time.monotonic()
        self.resolved_at: Optional[float] = None


class SolverHTTPServer:
    """Serve a :class:`SolverService` over HTTP (see module docstring).

    Parameters
    ----------
    service:
        The (thread-safe) solver service to front.  Handlers submit tickets
        on the event loop; a background flush loop drains the queue in an
        executor thread, so batching happens exactly as it does offline.
    host / port:
        Bind address.  ``port=0`` picks a free port (see :attr:`port` after
        :meth:`start`).
    flush_interval:
        Seconds between background flushes -- the batching window.  Longer
        windows batch more aggressively at higher latency.
    max_pending:
        Queue-depth backpressure threshold: a solve/submit arriving with
        this many tickets already queued is rejected with 503 and
        ``Retry-After`` of one flush interval.
    request_timeout:
        Seconds a blocking ``/v1/solve`` waits for its ticket before 504.
        The ticket still resolves in the background; the work is not lost,
        only the response.
    ticket_ttl:
        Seconds a *resolved* ticket record stays claimable via
        ``GET /v1/tickets/<id>`` before the sweeper drops it.
    auth:
        :class:`~repro.service.auth.Authenticator`; ``None`` runs open
        (anonymous, unlimited).
    cache_path:
        Optional factorization-cache snapshot: loaded on :meth:`start` when
        the file exists, written on :meth:`stop` -- a restart serves cache
        hits instead of refactorizing (see :mod:`repro.service.persistence`).
    """

    def __init__(
        self,
        service: SolverService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        flush_interval: float = 0.05,
        max_pending: int = 256,
        request_timeout: float = 30.0,
        ticket_ttl: float = 300.0,
        auth: Optional[Authenticator] = None,
        cache_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.service = service
        self.host = host
        self.port = port
        self.flush_interval = flush_interval
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        self.ticket_ttl = ticket_ttl
        self.auth = auth if auth is not None else Authenticator()
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self._tickets: Dict[str, _TicketRecord] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._flush_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped = asyncio.Event()
        self._inflight = 0
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Bind, load the cache snapshot (if any) and start the flush loop."""
        self._loop = asyncio.get_running_loop()
        if self.cache_path is not None and self.cache_path.exists():
            loaded = self.service.load_cache(self.cache_path)
            print(f"loaded {loaded} cached factorization(s) from {self.cache_path}",
                  flush=True)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._stopped = asyncio.Event()
        self._flush_task = asyncio.create_task(self._flush_loop())

    async def stop(self) -> None:
        """Flush outstanding tickets, snapshot the cache, close the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        # Final drain so submitted-but-unflushed tickets are not abandoned.
        if self.service.pending:
            await asyncio.get_running_loop().run_in_executor(None, self.service.flush)
            self._resolve_ready()
        if self.cache_path is not None:
            self.service.save_cache(self.cache_path)
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` is called (from any thread)."""
        await self.start()
        try:
            await self._stopped.wait()
        finally:
            if self._server is not None:
                await self.stop()

    def shutdown(self) -> None:
        """Request a clean stop; safe to call from any thread."""
        loop = self._loop
        if loop is None:
            return

        def _stop() -> None:
            asyncio.ensure_future(self._shutdown_async())

        loop.call_soon_threadsafe(_stop)

    async def _shutdown_async(self) -> None:
        if self._server is not None:
            await self.stop()
        self._stopped.set()

    def start_in_thread(self) -> Tuple[str, int]:
        """Run the server on a daemon thread; returns ``(host, port)`` once bound.

        The test-suite/CLI entry point: the calling thread keeps control
        (drive requests, then :meth:`shutdown`).
        """
        started = threading.Event()
        failure: list = []

        def _run() -> None:
            async def _main() -> None:
                try:
                    await self.start()
                except Exception as exc:  # bind/load errors surface to caller
                    failure.append(exc)
                    started.set()
                    return
                started.set()
                await self._stopped.wait()

            asyncio.run(_main())

        self._thread = threading.Thread(target=_run, daemon=True, name=_SERVER_NAME)
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self.host, self.port

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for a threaded server (:meth:`start_in_thread`) to exit."""
        if self._thread is not None:
            self._thread.join(timeout)

    # -- flush loop ----------------------------------------------------------
    async def _flush_loop(self) -> None:
        """Drain the service queue every ``flush_interval`` seconds.

        The flush itself runs in an executor thread (solves hold the CPU),
        so the event loop keeps accepting requests mid-batch; that is the
        whole point of the thread-safe service.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.flush_interval)
            try:
                if self.service.pending:
                    await loop.run_in_executor(None, self.service.flush)
                self._resolve_ready()
                self._sweep_tickets()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                # flush() resolves per-key errors onto tickets; anything that
                # still escapes must not kill the loop.
                print(f"flush loop error: {exc!r}", flush=True)

    def _resolve_ready(self) -> None:
        """Wake every waiter whose ticket the last flush resolved."""
        now = time.monotonic()
        for record in self._tickets.values():
            if record.ticket.done and not record.event.is_set():
                record.resolved_at = now
                record.event.set()

    def _sweep_tickets(self) -> None:
        """Drop resolved ticket records nobody claimed within ``ticket_ttl``."""
        now = time.monotonic()
        stale = [
            tid
            for tid, record in self._tickets.items()
            if record.resolved_at is not None
            and now - record.resolved_at > self.ticket_ttl
        ]
        for tid in stale:
            del self._tickets[tid]

    # -- HTTP plumbing -------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except HTTPError as err:
                    payload = json.dumps({"error": err.message}).encode()
                    await self._write_response(
                        writer, err.status, payload, dict(err.headers),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                t0 = time.perf_counter()
                self._inflight += 1
                record_http_inflight(self.service.registry, self._inflight)
                try:
                    status, payload, extra, route = await self._dispatch(
                        method, path, headers, body
                    )
                except HTTPError as err:
                    status = err.status
                    payload = json.dumps({"error": err.message}).encode()
                    extra = dict(err.headers)
                    extra.setdefault("Content-Type", "application/json")
                    route = self._route_pattern(path)
                except Exception as exc:  # pragma: no cover - defensive
                    status = 500
                    payload = json.dumps({"error": f"internal error: {exc!r}"}).encode()
                    extra = {"Content-Type": "application/json"}
                    route = self._route_pattern(path)
                finally:
                    self._inflight -= 1
                record_http_request(
                    self.service.registry,
                    route=route,
                    method=method,
                    status=status,
                    seconds=time.perf_counter() - t0,
                )
                await self._write_response(
                    writer, status, payload, extra, keep_alive=keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise HTTPError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise HTTPError(413, f"body exceeds {_MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        extra: Dict[str, str],
        *,
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        headers = {
            "Server": _SERVER_NAME,
            "Content-Length": str(len(payload)),
            "Connection": "keep-alive" if keep_alive else "close",
            "Content-Type": "application/json",
        }
        headers.update(extra)
        head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
            f"{k}: {v}\r\n" for k, v in headers.items()
        )
        writer.write(head.encode("latin-1") + b"\r\n" + payload)
        await writer.drain()

    @staticmethod
    def _route_pattern(path: str) -> str:
        """Bounded-cardinality metrics label for a concrete path."""
        if path.startswith("/v1/tickets/"):
            return "/v1/tickets/{id}"
        if path in ("/healthz", "/metrics", "/v1/stats", "/v1/solve", "/v1/submit"):
            return path
        return "other"

    # -- routing -------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        route = self._route_pattern(path)
        if path == "/healthz":
            self._require(method, "GET")
            return 200, json.dumps({"status": "ok"}).encode(), {}, route
        if path == "/metrics":
            self._require(method, "GET")
            text = self.service.render_prometheus()
            return (
                200,
                text.encode(),
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                route,
            )
        if path == "/v1/stats":
            self._require(method, "GET")
            self._authenticate(headers)
            return 200, json.dumps(self.service.metrics()).encode(), {}, route
        if path == "/v1/solve":
            self._require(method, "POST")
            tenant = self._admit(headers)
            return await self._handle_solve(body, tenant, route)
        if path == "/v1/submit":
            self._require(method, "POST")
            tenant = self._admit(headers)
            return self._handle_submit(body, tenant, route)
        if path.startswith("/v1/tickets/"):
            self._require(method, "GET")
            tenant = self._authenticate(headers)
            return self._handle_ticket(path[len("/v1/tickets/") :], tenant, route)
        raise HTTPError(404, f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HTTPError(405, f"method {method} not allowed (use {expected})")

    def _authenticate(self, headers: Dict[str, str]):
        api_key = headers.get("x-api-key")
        if api_key is None:
            bearer = headers.get("authorization", "")
            if bearer.lower().startswith("bearer "):
                api_key = bearer[7:].strip()
        try:
            return self.auth.authenticate(api_key)
        except AuthError as exc:
            record_http_rejection(self.service.registry, reason="unauthorized")
            raise HTTPError(401, str(exc)) from None

    def _admit(self, headers: Dict[str, str]):
        """Authenticate + rate limit + backpressure for the solving routes."""
        tenant = self._authenticate(headers)
        try:
            self.auth.admit(tenant)
        except RateLimited as exc:
            record_http_rejection(
                self.service.registry, reason="rate_limited", tenant=tenant.name
            )
            raise HTTPError(
                429, str(exc),
                headers={"Retry-After": f"{max(exc.retry_after, 0.001):.3f}"},
            ) from None
        if self.service.pending >= self.max_pending:
            record_http_rejection(
                self.service.registry, reason="backpressure", tenant=tenant.name
            )
            raise HTTPError(
                503,
                f"solve queue full ({self.service.pending} pending); retry shortly",
                headers={"Retry-After": f"{self.flush_interval:.3f}"},
            )
        return tenant

    # -- handlers ------------------------------------------------------------
    def _parse_solve_body(self, body: bytes) -> Tuple[np.ndarray, Dict[str, Any]]:
        try:
            doc = json.loads(body.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(doc, dict):
            raise HTTPError(400, "body must be a JSON object")
        missing = [f for f in ("b", "kernel", "n") if f not in doc]
        if missing:
            raise HTTPError(400, f"missing field(s): {', '.join(missing)}")
        try:
            b = np.asarray(doc["b"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"b is not numeric: {exc}") from None
        params = doc.get("params", {})
        if not isinstance(params, dict):
            raise HTTPError(400, "params must be an object of kernel parameters")
        kwargs: Dict[str, Any] = {
            "kernel": str(doc["kernel"]),
            "n": int(doc["n"]),
            "leaf_size": int(doc.get("leaf_size", 256)),
            "max_rank": int(doc.get("max_rank", 100)),
            "format": str(doc.get("format", "hss")),
        }
        kwargs.update({str(k): float(v) for k, v in params.items()})
        return b, kwargs

    def _submit_ticket(self, body: bytes, tenant: Any) -> Tuple[str, _TicketRecord]:
        b, kwargs = self._parse_solve_body(body)
        try:
            ticket = self.service.submit(b, **kwargs)
        except (ValueError, TypeError) as exc:
            raise HTTPError(400, str(exc)) from None
        record = _TicketRecord(ticket, tenant.name)
        ticket_id = uuid.uuid4().hex
        self._tickets[ticket_id] = record
        return ticket_id, record

    async def _handle_solve(
        self, body: bytes, tenant: Any, route: str
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        ticket_id, record = self._submit_ticket(body, tenant)
        try:
            await asyncio.wait_for(record.event.wait(), timeout=self.request_timeout)
        except asyncio.TimeoutError:
            # The ticket stays registered: the flush loop still resolves it
            # and the client can claim it via the ticket route.
            raise HTTPError(
                504,
                f"solve did not complete within {self.request_timeout}s; "
                f"poll /v1/tickets/{ticket_id}",
            ) from None
        del self._tickets[ticket_id]
        ticket = record.ticket
        if ticket.error is not None:
            raise HTTPError(400, f"solve failed: {ticket.error}")
        x = ticket.result
        return 200, json.dumps({"x": x.tolist()}).encode(), {}, route

    def _handle_submit(
        self, body: bytes, tenant: Any, route: str
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        ticket_id, _record = self._submit_ticket(body, tenant)
        payload = {"id": ticket_id, "status": "pending"}
        return 202, json.dumps(payload).encode(), {}, route

    def _handle_ticket(
        self, ticket_id: str, tenant: Any, route: str
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        record = self._tickets.get(ticket_id)
        if record is None or record.tenant != tenant.name:
            # Wrong-tenant probes get the same 404 as unknown ids: ticket ids
            # are not enumerable across tenants.
            raise HTTPError(404, f"unknown ticket {ticket_id}")
        ticket = record.ticket
        if not ticket.done:
            return 200, json.dumps({"id": ticket_id, "status": "pending"}).encode(), {}, route
        del self._tickets[ticket_id]
        if ticket.error is not None:
            payload = {"id": ticket_id, "status": "error", "error": str(ticket.error)}
            return 200, json.dumps(payload).encode(), {}, route
        payload = {"id": ticket_id, "status": "done", "x": ticket.result.tolist()}
        return 200, json.dumps(payload).encode(), {}, route

    def __repr__(self) -> str:
        state = "listening" if self._server is not None else "stopped"
        return f"SolverHTTPServer({self.host}:{self.port}, {state}, {self.service!r})"
