"""Disk persistence for the SolverService factorization cache.

The whole point of the service is factorize-once/solve-many; a process
restart must not refactorize the world.  :func:`save_cache` snapshots every
cached :class:`~repro.api.StructuredSolver` -- the kernel operator, the
compressed representation and its ULV factorization, keyed by
:class:`~repro.service.solver_service.FactorKey` -- into one
zlib-compressed, checksummed file, and :func:`load_cache` installs them back
into a (possibly freshly constructed) service.  A loaded entry is a full
cache hit: serving it runs zero compression or factorization graph tasks
(see the persistence round-trip test).

File format: ``MAGIC | sha256(blob) | blob`` where ``blob`` is the
zlib-compressed pickle of ``{FactorKey: entry_dict}``.  The checksum turns
truncation or corruption into a loud ``ValueError`` instead of a cache full
of garbage factorizations, and the magic/version byte lets the layout evolve
without misreading old files.  Writes are atomic (temp file + ``os.replace``)
so a crash mid-save never clobbers the previous snapshot.

Pickles are only safe from trusted sources; the cache file is an operator
artifact (written by :meth:`SolverService.save_cache`, pointed at by the
``serve --cache-file`` flag), the same trust model as the model files of any
serving system.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.solver_service import SolverService

__all__ = ["save_cache", "load_cache", "MAGIC"]

#: File magic + layout version.  Bump the last byte on layout changes.
MAGIC = b"RPSC\x01"

_SHA256_LEN = 32


def save_cache(service: "SolverService", path: Union[str, Path]) -> int:
    """Write every cached factorization of ``service`` to ``path``.

    Returns the number of entries written.  The write is atomic: the
    previous file (if any) survives a crash mid-save.
    """
    path = Path(path)
    with service._lock:
        entries = {
            key: {
                "kernel_matrix": solver.kernel_matrix,
                "matrix": solver.matrix,
                "factor": solver.factor,
                "format": solver.format,
            }
            for key, solver in service._cache.items()
        }
    blob = zlib.compress(pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL))
    payload = MAGIC + hashlib.sha256(blob).digest() + blob
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)
    return len(entries)


def load_cache(service: "SolverService", path: Union[str, Path]) -> int:
    """Install factorizations saved by :func:`save_cache` into ``service``.

    Entries are installed oldest-first (the service's normal LRU order) and
    re-validated against their keys exactly like any served cache entry, so
    a snapshot whose contents do not match its keys fails loudly.  Loading
    counts neither hits nor misses; capacity is enforced, so a snapshot
    larger than ``max_cached`` keeps only the newest entries.  Returns the
    number of entries installed.  Raises ``ValueError`` on a corrupt,
    truncated or foreign file and ``FileNotFoundError`` when missing.
    """
    from repro.api import StructuredSolver

    path = Path(path)
    raw = path.read_bytes()
    if not raw.startswith(MAGIC):
        raise ValueError(
            f"{path} is not a solver-cache snapshot (bad magic); refusing to load"
        )
    digest = raw[len(MAGIC) : len(MAGIC) + _SHA256_LEN]
    blob = raw[len(MAGIC) + _SHA256_LEN :]
    if hashlib.sha256(blob).digest() != digest:
        raise ValueError(f"{path} failed its checksum (truncated or corrupt)")
    try:
        entries = pickle.loads(zlib.decompress(blob))
    except Exception as exc:
        raise ValueError(f"{path} could not be decoded: {exc}") from exc
    if not isinstance(entries, dict):
        raise ValueError(f"{path} decoded to {type(entries).__name__}, expected dict")
    loaded = 0
    with service._lock:
        for key, entry in entries.items():
            solver = StructuredSolver(
                entry["kernel_matrix"],
                matrix=entry["matrix"],
                format=entry["format"],
                factor=entry["factor"],
            )
            # Same loud corruption check every served entry gets.
            service._revalidate(key, solver)
            service._cache[key] = solver
            service._cache.move_to_end(key)
            service._stamps[key] = time.monotonic()
            loaded += 1
        service._evict_over_capacity()
    return loaded
