"""Per-tenant API keys and token-bucket rate limiting for the HTTP server.

Stdlib-only and deliberately small: the server needs to answer two questions
per request -- *who is this* (API key -> :class:`Tenant`) and *may they solve
right now* (per-tenant :class:`TokenBucket`).  Failures map onto the HTTP
status codes the server returns: :class:`AuthError` -> 401,
:class:`RateLimited` -> 429 with ``Retry-After``.

Tenant config is a JSON document (file or dict)::

    {"tenants": [
        {"name": "alice", "api_key": "alice-key", "rate": 50, "burst": 10},
        {"name": "bob",   "api_key": "bob-key"}
    ]}

``rate`` is sustained requests/second refill, ``burst`` the bucket capacity
(instantaneous spike allowance); both optional (``None`` disables limiting
for that tenant).  An :class:`Authenticator` built with *no* tenants runs in
open mode: every request maps to the ``"anonymous"`` tenant, optionally rate
limited by ``default_rate``/``default_burst`` -- so a dev server needs zero
config while a shared one can still cap an anonymous free-for-all.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = [
    "AuthError",
    "RateLimited",
    "TokenBucket",
    "Tenant",
    "Authenticator",
]


class AuthError(Exception):
    """Unknown or missing API key (HTTP 401)."""


class RateLimited(Exception):
    """Tenant exceeded its token bucket (HTTP 429).

    ``retry_after`` is the seconds until the next token accrues, served in
    the ``Retry-After`` response header.
    """

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} rate limited; retry in {retry_after:.2f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second refill, ``burst`` capacity.

    Thread-safe; time is injectable (``now=``) so tests never sleep.  The
    bucket starts full, so a fresh tenant can burst immediately.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_lock")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = self.burst
        self._stamp: Optional[float] = None
        self._lock = threading.Lock()

    def try_acquire(self, now: Optional[float] = None) -> float:
        """Take one token if available.

        Returns ``0.0`` when admitted, else the seconds until a token
        accrues (the caller's ``Retry-After``).
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            if self._stamp is not None and now > self._stamp:
                self._tokens = min(
                    self.burst, self._tokens + (now - self._stamp) * self.rate
                )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate


@dataclass
class Tenant:
    """One API-key principal, with its optional rate limit."""

    name: str
    api_key: Optional[str] = None
    rate: Optional[float] = None
    burst: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate is not None:
            burst = self.burst if self.burst is not None else max(1.0, self.rate)
            self.bucket: Optional[TokenBucket] = TokenBucket(self.rate, burst)
        else:
            self.bucket = None


class Authenticator:
    """Maps API keys to tenants and enforces their rate limits."""

    def __init__(
        self,
        tenants: Optional[Dict[str, Tenant]] = None,
        *,
        default_rate: Optional[float] = None,
        default_burst: Optional[float] = None,
    ) -> None:
        #: api_key -> Tenant; empty means open (anonymous) mode.
        self._by_key: Dict[str, Tenant] = dict(tenants or {})
        self._anonymous = Tenant(
            "anonymous", api_key=None, rate=default_rate, burst=default_burst
        )

    @property
    def open(self) -> bool:
        """True when no tenants are configured (anonymous mode)."""
        return not self._by_key

    @property
    def tenants(self) -> Dict[str, Tenant]:
        """name -> Tenant (includes ``anonymous`` in open mode)."""
        named = {t.name: t for t in self._by_key.values()}
        if self.open:
            named["anonymous"] = self._anonymous
        return named

    @classmethod
    def from_dict(
        cls,
        config: Dict[str, Any],
        *,
        default_rate: Optional[float] = None,
        default_burst: Optional[float] = None,
    ) -> "Authenticator":
        tenants: Dict[str, Tenant] = {}
        for spec in config.get("tenants", []):
            name, key = spec.get("name"), spec.get("api_key")
            if not name or not key:
                raise ValueError(f"tenant spec needs name and api_key: {spec!r}")
            if key in tenants:
                raise ValueError(f"duplicate api_key for tenant {name!r}")
            tenants[key] = Tenant(
                name=str(name),
                api_key=str(key),
                rate=spec.get("rate"),
                burst=spec.get("burst"),
            )
        return cls(tenants, default_rate=default_rate, default_burst=default_burst)

    @classmethod
    def from_file(
        cls,
        path: Union[str, Path],
        *,
        default_rate: Optional[float] = None,
        default_burst: Optional[float] = None,
    ) -> "Authenticator":
        with open(path, "r", encoding="utf-8") as fh:
            config = json.load(fh)
        return cls.from_dict(
            config, default_rate=default_rate, default_burst=default_burst
        )

    def authenticate(self, api_key: Optional[str]) -> Tenant:
        """Resolve an API key to its tenant; raises :class:`AuthError`.

        Open mode accepts any (or no) key as ``anonymous``.
        """
        if self.open:
            return self._anonymous
        if api_key is None:
            raise AuthError("missing API key (x-api-key or Authorization: Bearer)")
        tenant = self._by_key.get(api_key)
        if tenant is None:
            raise AuthError("unknown API key")
        return tenant

    def admit(self, tenant: Tenant, now: Optional[float] = None) -> None:
        """Charge one request against the tenant's bucket.

        Raises :class:`RateLimited` when the bucket is empty; no-op for
        unlimited tenants.
        """
        if tenant.bucket is None:
            return
        wait = tenant.bucket.try_acquire(now=now)
        if wait > 0.0:
            raise RateLimited(tenant.name, wait)
