"""Task-graph matrix construction: compression through the DTD runtime.

The last serial phase of the pipeline to fall to the runtime: low-rank
compression (per-block ACA/ID/SVD tasks, shared-basis tasks, nested-basis
translation ops, sibling couplings) expressed as ``insert_task`` graphs on
the pipeline layer's :class:`~repro.pipeline.builder.GraphBuilder` scaffold,
so HSS, BLR2 and HODLR matrices can be *constructed* -- not just factorized
and solved -- on every execution backend (immediate / deferred /
thread-parallel / distributed), bit-identical to the sequential
``repro.formats.build_*`` references.

Modules
-------
:mod:`~repro.compress.builder`
    :class:`CompressGraphBuilder`, the shared scaffold (kernel matrix,
    cluster tree, compression parameters, static handle byte-size model).
:mod:`~repro.compress.hss` / :mod:`~repro.compress.blr2` /
:mod:`~repro.compress.hodlr`
    The per-format builders and their ``build_*_dtd`` drivers.
:mod:`~repro.compress.verify`
    Structural bit-identity checks shared by the randomized cross-backend
    test harness and the compression-scaling experiment.

Entry points: ``FormatSpec.compress_graph`` in the format registry,
``StructuredSolver.from_kernel(..., compress_runtime=...)``,
``SolverService(compress_runtime=...)`` and
``python -m repro solve --compress-runtime ...``.
"""

from repro.compress.builder import CompressGraphBuilder, compress_through_builder
from repro.compress.blr2 import BLR2CompressBuilder, build_blr2_dtd
from repro.compress.hodlr import HODLRCompressBuilder, build_hodlr_dtd
from repro.compress.hss import HSSCompressBuilder, build_hss_dtd
from repro.compress.verify import (
    assert_compressed_identical,
    compressed_identical,
    compressed_mismatches,
)

__all__ = [
    "CompressGraphBuilder",
    "compress_through_builder",
    "HSSCompressBuilder",
    "build_hss_dtd",
    "BLR2CompressBuilder",
    "build_blr2_dtd",
    "HODLRCompressBuilder",
    "build_hodlr_dtd",
    "compressed_mismatches",
    "compressed_identical",
    "assert_compressed_identical",
]
