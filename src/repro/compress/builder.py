"""The shared compression graph builder scaffold.

Compression is the last phase of the compress -> factorize -> solve pipeline
to be expressed as a task graph: the per-block low-rank approximations
(ACA / interpolative decomposition / SVD row bases), the parent-level basis
translations of the nested formats and the skeleton couplings all become
``insert_task`` calls against the DTD runtime, exactly as the paper demands
for *every* phase of the solver (Sec. 4.2).

:class:`CompressGraphBuilder` extends the pipeline layer's
:class:`~repro.pipeline.builder.GraphBuilder` with what every format's
construction graph shares:

* the lazily assembled :class:`~repro.kernels.assembly.KernelMatrix` being
  compressed (inherited by forked workers, so distributed compression tasks
  evaluate kernel blocks locally and never ship the dense matrix),
* the cluster tree and the compression parameters (``leaf_size`` /
  ``max_rank`` / ``tol`` / ``method`` / ``seed``),
* a static byte-size model for basis/coupling handles (used by the
  distribution strategies and the communication plan).

Concrete builders (:class:`~repro.compress.hss.HSSCompressBuilder`,
:class:`~repro.compress.blr2.BLR2CompressBuilder`,
:class:`~repro.compress.hodlr.HODLRCompressBuilder`) record tasks that
perform *exactly* the operations of the sequential ``formats.build_*``
references, in the same order, with any RNG draws (proxy-column sampling)
precomputed at record time in the sequential order -- so every backend
(immediate / deferred / parallel / distributed) produces a compressed matrix
bit-identical to the sequential reference.
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.cluster_tree import ClusterTree, build_cluster_tree
from repro.kernels.assembly import KernelMatrix
from repro.pipeline.builder import GraphBuilder
from repro.pipeline.policy import ExecutionPolicy
from repro.runtime.dtd import DTDRuntime

__all__ = ["CompressGraphBuilder", "compress_through_builder"]


class CompressGraphBuilder(GraphBuilder):
    """Base scaffold for recording one compression task graph.

    Parameters
    ----------
    kernel_matrix:
        The lazily assembled SPD kernel matrix to compress.
    leaf_size:
        Leaf cluster size of the block partition.
    max_rank:
        Cap on every block/skeleton rank (the paper's "max rank").
    tol:
        Optional relative tolerance for adaptive ranks.
    method:
        Format-specific compression scheme; ``None`` selects the format's
        default (:attr:`default_method`), matching the sequential builder.
    seed:
        RNG seed (stored as :attr:`rng_seed`; ``GraphBuilder.seed()`` is the
        state-seeding template hook).  All random draws (proxy sampling,
        randomized SVD) are either precomputed at record time in the
        sequential order or seeded per task, so the recorded graph is
        backend-independent.
    tree:
        Reuse an existing cluster tree instead of building one.
    policy / runtime:
        As for :class:`~repro.pipeline.builder.GraphBuilder`.
    """

    #: Compression scheme used when ``method`` is None -- must match the
    #: default of the corresponding sequential ``formats.build_*`` function.
    default_method: str = ""

    def __init__(
        self,
        kernel_matrix: KernelMatrix,
        *,
        leaf_size: int = 256,
        max_rank: Optional[int] = 100,
        tol: Optional[float] = None,
        method: Optional[str] = None,
        seed: int = 0,
        tree: Optional[ClusterTree] = None,
        policy: Optional[ExecutionPolicy] = None,
        runtime: Optional[DTDRuntime] = None,
    ) -> None:
        super().__init__(policy=policy, runtime=runtime)
        self.kernel_matrix = kernel_matrix
        self.leaf_size = int(leaf_size)
        self.max_rank = max_rank
        self.tol = tol
        self.method = method if method is not None else self.default_method
        self.rng_seed = int(seed)
        self.tree = (
            tree
            if tree is not None
            else build_cluster_tree(kernel_matrix.points, leaf_size=leaf_size)
        )

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.kernel_matrix.n

    def rank_cap(self, m: int) -> int:
        """Static rank bound of a size-``m`` block (for handle byte sizes).

        Actual ranks are only known after the compression tasks run, but the
        handle sizes feed the *static* communication plan, so they must be
        fixed at record time.  The plan and the measured ledger both charge
        ``handle.nbytes``, so any consistent static model keeps them equal.
        """
        r = m if self.max_rank is None else min(int(self.max_rank), m)
        return max(r, 1)

    def basis_nbytes(self, m: int) -> int:
        """Byte-size model of a basis (or basis-info) handle for an ``m``-row cluster."""
        return 8 * m * self.rank_cap(m)

    def coupling_nbytes(self, mi: int, mj: int) -> int:
        """Byte-size model of a skeleton coupling handle."""
        return 8 * self.rank_cap(mi) * self.rank_cap(mj)


def compress_through_builder(builder_cls, kernel_matrix, *, policy=None, **kwargs):
    """Drive one compression builder end-to-end.

    Records the graph under ``policy`` (default: ``immediate``), executes it
    on the policy's backend and returns ``(matrix, runtime)`` -- the same
    contract as the ``factorize_dtd`` / ``solve_dtd`` drivers, so the format
    registry can expose all four entry points uniformly.
    """
    policy = policy if policy is not None else ExecutionPolicy(backend="immediate")
    builder = builder_cls(kernel_matrix, policy=policy, **kwargs)
    builder.execute()
    return builder.result(), builder.runtime
