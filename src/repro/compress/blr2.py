"""BLR2 construction as a task graph (shared row bases, paper Eq. 1-5).

The sequential :func:`repro.formats.blr2.build_blr2` does one pass computing
the dense diagonal blocks and the shared row bases (Eq. 2), then one pass
projecting every off-diagonal block onto the two row bases.
:class:`BLR2CompressBuilder` records the same operations as DTD tasks:

``ASSEMBLE_DIAG[i]`` / ``COMPRESS_BASIS[i]``
    Per block row: the dense diagonal block and the shared skeleton basis
    ``U_i^S`` from the full admissible block row.  Independent across rows --
    the embarrassingly parallel bulk of the construction.
``COUPLING[i,j]``
    Skeleton coupling ``S_{i,j} = (U_i^S)^T A_{i,j} U_j^S`` for ``j < i``;
    depends on both rows' basis tasks, which is where the distributed
    backend's basis transfers come from.

The flat block rows are mapped onto the same virtual tree level as the
leaf-ULV factorize/solve graphs (:func:`repro.pipeline.factorize.leaf_virtual_level`),
so all three phases of one BLR2 problem distribute identically.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.compress.builder import CompressGraphBuilder, compress_through_builder
from repro.formats.blr2 import BLR2Matrix
from repro.lowrank.qr import row_basis
from repro.pipeline.factorize import leaf_virtual_level
from repro.runtime.task import AccessMode

__all__ = ["BLR2CompressBuilder", "build_blr2_dtd"]


class BLR2CompressBuilder(CompressGraphBuilder):
    """Record (and execute) the BLR2 construction task graph."""

    default_method = "svd"

    def __init__(self, kernel_matrix, **kwargs) -> None:
        super().__init__(kernel_matrix, **kwargs)
        if self.method not in ("svd", "qr"):
            raise ValueError(f"unknown basis method {self.method!r}; use 'svd' or 'qr'")
        self.nblocks = len(self.tree.leaves)
        self.max_level = leaf_virtual_level(self.nblocks)
        #: Result stores, filled by the task bodies (local-computation markers
        #: for the distributed fragment collection).
        self.diag: Dict[int, np.ndarray] = {}
        self.bases: Dict[int, np.ndarray] = {}
        self.couplings: Dict[Tuple[int, int], np.ndarray] = {}
        # Handle-bound transport store: the shared bases read by the coupling
        # tasks (the only cross-task -- and cross-process -- data).
        self._bx: Dict[int, np.ndarray] = {}
        # Data handles.
        self._d: Dict[int, object] = {}
        self._b: Dict[int, object] = {}
        self._s: Dict[Tuple[int, int], object] = {}

    def declare_handles(self) -> None:
        level = self.max_level
        for i, leaf in enumerate(self.tree.leaves):
            m = leaf.stop - leaf.start
            self._d[i] = self.handle(f"D[{i}]", 8 * m * m, level=level, row=i)
            self._b[i] = self.handle(
                f"B[{i}]", self.basis_nbytes(m), level=level, row=i
            ).bind_item(self._bx, i)
        for i, li in enumerate(self.tree.leaves):
            for j in range(i):
                lj = self.tree.leaves[j]
                self._s[(i, j)] = self.handle(
                    f"S[{i},{j}]",
                    self.coupling_nbytes(li.stop - li.start, lj.stop - lj.start),
                    level=level,
                    row=i,
                    col=j,
                )

    def record_tasks(self) -> None:
        kmat, n = self.kernel_matrix, self.n
        diag, bases, bx, couplings = self.diag, self.bases, self._bx, self.couplings
        max_rank, tol, method = self.max_rank, self.tol, self.method
        leaves = self.tree.leaves

        self.set_phase(0)
        for i, leaf in enumerate(leaves):
            m = leaf.stop - leaf.start

            def assemble_diag(i=i, leaf=leaf) -> None:
                rows = slice(leaf.start, leaf.stop)
                diag[i] = kmat.block(rows, rows)

            self.insert(
                assemble_diag,
                [(self._d[i], AccessMode.WRITE)],
                name=f"ASSEMBLE_DIAG[{i}]",
                kind="ASSEMBLE_DIAG",
                flops=float(m * m),
            )

            def compress_row(i=i, leaf=leaf) -> None:
                far_cols = np.concatenate(
                    [np.arange(0, leaf.start), np.arange(leaf.stop, n)]
                )
                block_row = kmat.block(slice(leaf.start, leaf.stop), far_cols)
                u = row_basis(block_row, rank=max_rank, tol=tol, method=method)
                bases[i] = u
                bx[i] = u

            self.insert(
                compress_row,
                [(self._b[i], AccessMode.WRITE)],
                name=f"COMPRESS_BASIS[{i}]",
                kind="COMPRESS_BASIS",
                flops=float(2 * m * (n - m) * self.rank_cap(m)),
            )

        self.set_phase(1)
        for i, li in enumerate(leaves):
            for j in range(i):
                lj = leaves[j]

                def coupling(i=i, j=j, li=li, lj=lj) -> None:
                    block = kmat.block(
                        slice(li.start, li.stop), slice(lj.start, lj.stop)
                    )
                    couplings[(i, j)] = bx[i].T @ block @ bx[j]

                mi, mj = li.stop - li.start, lj.stop - lj.start
                self.insert(
                    coupling,
                    [
                        (self._b[i], AccessMode.READ),
                        (self._b[j], AccessMode.READ),
                        (self._s[(i, j)], AccessMode.WRITE),
                    ],
                    name=f"COUPLING[{i},{j}]",
                    kind="COUPLING",
                    flops=float(2 * mi * mj * self.rank_cap(mi)),
                )

    # -- distributed fragments ------------------------------------------------
    def collect_local(self):
        return {
            "diag": dict(self.diag),
            "bases": dict(self.bases),
            "couplings": dict(self.couplings),
        }

    def merge_fragment(self, fragment) -> None:
        self.diag.update(fragment["diag"])
        self.bases.update(fragment["bases"])
        self.couplings.update(fragment["couplings"])

    def result(self) -> BLR2Matrix:
        return BLR2Matrix(
            tree=self.tree, diag=self.diag, bases=self.bases, couplings=self.couplings
        )


def build_blr2_dtd(
    kernel_matrix,
    *,
    leaf_size: int = 256,
    max_rank: Optional[int] = 100,
    tol: Optional[float] = None,
    method: Optional[str] = None,
    seed: int = 0,
    tree=None,
    policy=None,
):
    """Task-graph BLR2 construction; returns ``(BLR2Matrix, DTDRuntime)``.

    Bit-identical to :func:`repro.formats.blr2.build_blr2` (``method`` maps
    onto its ``basis_method``) on every execution backend of the ``policy``.
    """
    return compress_through_builder(
        BLR2CompressBuilder,
        kernel_matrix,
        policy=policy,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tol=tol,
        method=method,
        seed=seed,
        tree=tree,
    )
