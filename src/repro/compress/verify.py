"""Structural bit-identity checks for compressed matrices.

The compression subsystem's contract is *bit*-identity with the sequential
``formats.build_*`` references -- not closeness in norm.  These helpers
compare two compressed matrices of the same format field by field
(``np.array_equal``, no tolerance) and report every mismatch, so the
randomized cross-backend harness and the scaling experiment share one
definition of "identical".
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

__all__ = ["compressed_mismatches", "compressed_identical", "assert_compressed_identical"]


def _cmp_array(label: str, a: Optional[np.ndarray], b: Optional[np.ndarray], out: List[str]) -> None:
    if a is None and b is None:
        return
    if (a is None) != (b is None):
        out.append(f"{label}: one side is None")
    elif not np.array_equal(np.asarray(a), np.asarray(b)):
        out.append(f"{label}: arrays differ")


def _hss_mismatches(a, b) -> List[str]:
    out: List[str] = []
    if set(a.nodes) != set(b.nodes):
        return [f"node keys differ: {sorted(set(a.nodes) ^ set(b.nodes))}"]
    for key in sorted(a.nodes):
        na, nb = a.nodes[key], b.nodes[key]
        if (na.start, na.stop, na.rank) != (nb.start, nb.stop, nb.rank):
            out.append(f"node {key}: range/rank differ")
        _cmp_array(f"node {key}.U", na.U, nb.U, out)
        _cmp_array(f"node {key}.D", na.D, nb.D, out)
        _cmp_array(f"node {key}.skeleton", na.skeleton, nb.skeleton, out)
    if set(a.couplings) != set(b.couplings):
        out.append(f"coupling keys differ: {sorted(set(a.couplings) ^ set(b.couplings))}")
    else:
        for key in sorted(a.couplings):
            _cmp_array(f"coupling {key}", a.couplings[key], b.couplings[key], out)
    return out


def _blr2_mismatches(a, b) -> List[str]:
    out: List[str] = []
    for name in ("diag", "bases", "couplings"):
        da, db = getattr(a, name), getattr(b, name)
        if set(da) != set(db):
            out.append(f"{name} keys differ: {sorted(set(da) ^ set(db))}")
            continue
        for key in sorted(da):
            _cmp_array(f"{name}[{key}]", da[key], db[key], out)
    return out


def _hodlr_mismatches(a, b) -> List[str]:
    out: List[str] = []

    def visit(na, nb, path: str) -> None:
        if na.is_leaf != nb.is_leaf:
            out.append(f"{path}: leaf/internal mismatch")
            return
        if (na.start, na.stop) != (nb.start, nb.stop):
            out.append(f"{path}: index range differs")
        if na.is_leaf:
            _cmp_array(f"{path}.dense", na.dense, nb.dense, out)
            return
        for part in ("upper", "lower"):
            blk_a, blk_b = getattr(na, part), getattr(nb, part)
            _cmp_array(f"{path}.{part}.U", blk_a.U, blk_b.U, out)
            _cmp_array(f"{path}.{part}.V", blk_a.V, blk_b.V, out)
        visit(na.left, nb.left, path + ".left")
        visit(na.right, nb.right, path + ".right")

    visit(a.root, b.root, "root")
    return out


_CHECKERS = {"hss": _hss_mismatches, "blr2": _blr2_mismatches, "hodlr": _hodlr_mismatches}


def compressed_mismatches(format_name: str, a: Any, b: Any) -> List[str]:
    """Every structural difference between two compressed matrices (empty = identical)."""
    try:
        checker = _CHECKERS[str(format_name).lower()]
    except KeyError:
        raise ValueError(
            f"no bit-identity checker for format {format_name!r}; "
            f"known formats: {sorted(_CHECKERS)}"
        ) from None
    return checker(a, b)


def compressed_identical(format_name: str, a: Any, b: Any) -> bool:
    """True when the two compressed matrices are bit-identical."""
    return not compressed_mismatches(format_name, a, b)


def assert_compressed_identical(format_name: str, a: Any, b: Any) -> None:
    """Raise :class:`AssertionError` listing every mismatching field."""
    mismatches = compressed_mismatches(format_name, a, b)
    if mismatches:
        preview = "\n  ".join(mismatches[:10])
        raise AssertionError(
            f"{format_name} matrices are not bit-identical "
            f"({len(mismatches)} mismatching fields):\n  {preview}"
        )
