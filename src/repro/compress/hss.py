"""HSS construction as a task graph (nested bases, paper Sec. 2 + 4.2).

The sequential :func:`repro.formats.hss.build_hss` walks the cluster tree in
three sweeps -- leaf bases, bottom-up transfer (translation) matrices,
sibling couplings.  :class:`HSSCompressBuilder` records the same operations
as DTD tasks:

``ASSEMBLE_DIAG[L;i]``
    Evaluate the dense leaf diagonal block ``D_i`` (kernel assembly only).
``COMPRESS_BASIS[L;i]``
    Leaf skeleton basis: interpolative row selection against the sampled
    far-field proxy (or the exact dense block row), producing ``U_i``, the
    skeleton points and the row-weight factor ``G_i``.
``TRANSLATE[l;i]``
    Parent transfer matrix from the two children's skeletons/weights -- the
    nested-basis translation op (Eq. 6).  Depends on both children's basis
    tasks, which is what gives the graph its tree-shaped critical path.
``COUPLING[l;i,j]``
    Sibling skeleton coupling ``S_{l;i,j}`` from kernel evaluations on the
    two skeleton point sets; depends on both siblings' basis info.

Proxy-column sampling consumes the RNG at *record* time, in exactly the
order the sequential builder draws (leaves ascending, then internal levels
bottom-up), so the per-task inputs -- and therefore the compressed matrix --
are bit-identical to ``build_hss`` on every backend.

Cross-task data (skeleton indices + row weights per cluster) moves through
handle-bound stores, so the distributed backend ships exactly that basis
info between worker processes; the dense diagonal blocks and couplings are
terminal task outputs gathered through the fragment collect/merge hooks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.compress.builder import CompressGraphBuilder, compress_through_builder
from repro.formats.hss import HSSMatrix, HSSNode, _proxy_indices
from repro.lowrank.interpolative import interpolative_rows
from repro.lowrank.qr import row_basis
from repro.runtime.task import AccessMode

__all__ = ["HSSCompressBuilder", "build_hss_dtd"]


class HSSCompressBuilder(CompressGraphBuilder):
    """Record (and execute) the HSS construction task graph."""

    default_method = "interpolative"

    def __init__(
        self,
        kernel_matrix,
        *,
        leaf_size: int = 256,
        max_rank: Optional[int] = 100,
        tol: Optional[float] = None,
        method: Optional[str] = None,
        n_proxy: Optional[int] = None,
        seed: int = 0,
        tree=None,
        policy=None,
        runtime=None,
    ) -> None:
        super().__init__(
            kernel_matrix,
            leaf_size=leaf_size,
            max_rank=max_rank,
            tol=tol,
            method=method,
            seed=seed,
            tree=tree,
            policy=policy,
            runtime=runtime,
        )
        if self.tree.max_level < 1:
            raise ValueError(
                "HSS requires at least one level of partitioning; "
                "decrease leaf_size or increase N"
            )
        if self.method not in ("interpolative", "dense_rows"):
            raise ValueError(f"unknown construction method {self.method!r}")
        self.max_level = self.tree.max_level
        self.n_proxy = (
            n_proxy if n_proxy is not None else max(2 * (self.max_rank or 64), 128)
        )
        #: Result stores: node shells filled by the task bodies (fields set
        #: only in the process that ran the task -- the distributed locality
        #: marker), plus the sibling couplings.
        self.nodes: Dict[Tuple[int, int], HSSNode] = {}
        self.couplings: Dict[Tuple[int, int, int], np.ndarray] = {}
        # Handle-bound transport store of per-cluster basis info: for the
        # interpolative construction a ``(skeleton, G)`` pair, for dense_rows
        # the expanded cluster basis.  This is the only data that crosses
        # tasks (and, distributed, process boundaries).
        self._basis: Dict[Tuple[int, int], object] = {}
        # Data handles.
        self._b: Dict[Tuple[int, int], object] = {}
        self._d: Dict[int, object] = {}
        self._s: Dict[Tuple[int, int, int], object] = {}
        # Proxy columns per cluster, sampled at record time in the exact
        # sequential RNG order (leaves ascending, then levels bottom-up).
        self._proxy: Dict[Tuple[int, int], np.ndarray] = {}
        if self.method == "interpolative":
            rng = np.random.default_rng(self.rng_seed)
            for i, leaf in enumerate(self.tree.leaves):
                self._proxy[(self.max_level, i)] = _proxy_indices(
                    leaf.start, leaf.stop, self.n, self.n_proxy, rng
                )
            for level in range(self.max_level - 1, 0, -1):
                for index, cnode in enumerate(self.tree.level_nodes(level)):
                    self._proxy[(level, index)] = _proxy_indices(
                        cnode.start, cnode.stop, self.n, self.n_proxy, rng
                    )

    # -- scaffold hooks -------------------------------------------------------
    def declare_handles(self) -> None:
        ml = self.max_level
        for level in range(ml + 1):
            for index, cnode in enumerate(self.tree.level_nodes(level)):
                self.nodes[(level, index)] = HSSNode(
                    level=level, index=index, start=cnode.start, stop=cnode.stop
                )
                if level == ml:
                    m = cnode.stop - cnode.start
                    self._d[index] = self.handle(
                        f"D[{ml};{index}]", 8 * m * m, level=ml, row=index
                    )
                if level > 0:
                    m = cnode.stop - cnode.start
                    self._b[(level, index)] = self.handle(
                        f"B[{level};{index}]",
                        self.basis_nbytes(m),
                        level=level,
                        row=index,
                    ).bind_item(self._basis, (level, index))
        for level in range(1, ml + 1):
            for k in range(2 ** (level - 1)):
                j, i = 2 * k, 2 * k + 1
                ni, nj = self.nodes[(level, i)], self.nodes[(level, j)]
                self._s[(level, i, j)] = self.handle(
                    f"S[{level};{i},{j}]",
                    self.coupling_nbytes(ni.size, nj.size),
                    level=level,
                    row=i,
                    col=j,
                )

    def record_tasks(self) -> None:
        kmat, ml, n = self.kernel_matrix, self.max_level, self.n
        nodes, basis, couplings = self.nodes, self._basis, self.couplings
        max_rank, tol = self.max_rank, self.tol

        # ---- leaf level: diagonal blocks + skeleton bases -------------------
        self.set_phase(0)
        for i, leaf in enumerate(self.tree.leaves):
            m = leaf.stop - leaf.start

            def assemble_diag(i=i, leaf=leaf) -> None:
                rows = slice(leaf.start, leaf.stop)
                nodes[(ml, i)].D = kmat.block(rows, rows)

            self.insert(
                assemble_diag,
                [(self._d[i], AccessMode.WRITE)],
                name=f"ASSEMBLE_DIAG[{ml};{i}]",
                kind="ASSEMBLE_DIAG",
                flops=float(m * m),
            )

            if self.method == "dense_rows":

                def leaf_basis(i=i, leaf=leaf) -> None:
                    comp = np.concatenate(
                        [np.arange(0, leaf.start), np.arange(leaf.stop, n)]
                    )
                    block_row = kmat.block(slice(leaf.start, leaf.stop), comp)
                    u = row_basis(block_row, rank=max_rank, tol=tol)
                    node = nodes[(ml, i)]
                    node.U = u
                    node.rank = u.shape[1]
                    basis[(ml, i)] = u

            else:

                def leaf_basis(i=i, leaf=leaf, proxy=self._proxy[(ml, i)]) -> None:
                    block_row = kmat.block(slice(leaf.start, leaf.stop), proxy)
                    sel, p = interpolative_rows(block_row, rank=max_rank, tol=tol)
                    q, r = np.linalg.qr(p)
                    node = nodes[(ml, i)]
                    node.U = q
                    node.rank = q.shape[1]
                    node.skeleton = np.arange(leaf.start, leaf.stop)[sel]
                    basis[(ml, i)] = (node.skeleton, r)

            self.insert(
                leaf_basis,
                [(self._b[(ml, i)], AccessMode.WRITE)],
                name=f"COMPRESS_BASIS[{ml};{i}]",
                kind="COMPRESS_BASIS",
                flops=float(2 * m * self.n_proxy * self.rank_cap(m)),
            )

        # ---- internal levels: bottom-up transfer (translation) matrices -----
        for level in range(ml - 1, 0, -1):
            self.set_phase(ml - level)
            for index, cnode in enumerate(self.tree.level_nodes(level)):
                key, k1, k2 = (level, index), (level + 1, 2 * index), (level + 1, 2 * index + 1)

                if self.method == "dense_rows":

                    def translate(key=key, k1=k1, k2=k2, cnode=cnode) -> None:
                        e1, e2 = basis[k1], basis[k2]
                        c1, c2 = nodes[k1], nodes[k2]
                        comp = np.concatenate(
                            [np.arange(0, cnode.start), np.arange(cnode.stop, n)]
                        )
                        w1 = e1.T @ kmat.block(slice(c1.start, c1.stop), comp)
                        w2 = e2.T @ kmat.block(slice(c2.start, c2.stop), comp)
                        w = np.vstack([w1, w2])
                        u = row_basis(w, rank=max_rank, tol=tol)
                        node = nodes[key]
                        node.U = u
                        node.rank = u.shape[1]
                        r1 = e1.shape[1]
                        basis[key] = np.vstack([e1 @ u[:r1], e2 @ u[r1:]])

                else:

                    def translate(key=key, k1=k1, k2=k2, proxy=self._proxy[key]) -> None:
                        skel1, g1 = basis[k1]
                        skel2, g2 = basis[k2]
                        union_skel = np.concatenate([skel1, skel2])
                        b = kmat.block(union_skel, proxy)
                        sel, p = interpolative_rows(b, rank=max_rank, tol=tol)
                        r1, r2 = g1.shape[0], g2.shape[0]
                        g_children = np.zeros((r1 + r2, r1 + r2))
                        g_children[:r1, :r1] = g1
                        g_children[r1:, r1:] = g2
                        t = g_children @ p
                        q, r = np.linalg.qr(t)
                        node = nodes[key]
                        node.U = q
                        node.rank = q.shape[1]
                        node.skeleton = union_skel[sel]
                        basis[key] = (node.skeleton, r)

                m = cnode.stop - cnode.start
                self.insert(
                    translate,
                    [
                        (self._b[k1], AccessMode.READ),
                        (self._b[k2], AccessMode.READ),
                        (self._b[key], AccessMode.WRITE),
                    ],
                    name=f"TRANSLATE[{level};{index}]",
                    kind="TRANSLATE",
                    flops=float(2 * m * self.n_proxy * self.rank_cap(m)),
                )

        # ---- sibling couplings ----------------------------------------------
        self.set_phase(ml)
        for level in range(1, ml + 1):
            for k in range(2 ** (level - 1)):
                j, i = 2 * k, 2 * k + 1
                ki, kj = (level, i), (level, j)

                if self.method == "dense_rows":

                    def coupling(level=level, i=i, j=j, ki=ki, kj=kj) -> None:
                        ni, nj = nodes[ki], nodes[kj]
                        block = kmat.block(
                            slice(ni.start, ni.stop), slice(nj.start, nj.stop)
                        )
                        couplings[(level, i, j)] = basis[ki].T @ block @ basis[kj]

                else:

                    def coupling(level=level, i=i, j=j, ki=ki, kj=kj) -> None:
                        skel_i, g_i = basis[ki]
                        skel_j, g_j = basis[kj]
                        kss = kmat.block(skel_i, skel_j)
                        couplings[(level, i, j)] = g_i @ kss @ g_j.T

                ni, nj = self.nodes[ki], self.nodes[kj]
                self.insert(
                    coupling,
                    [
                        (self._b[ki], AccessMode.READ),
                        (self._b[kj], AccessMode.READ),
                        (self._s[(level, i, j)], AccessMode.WRITE),
                    ],
                    name=f"COUPLING[{level};{i},{j}]",
                    kind="COUPLING",
                    flops=float(2 * self.rank_cap(ni.size) * self.rank_cap(nj.size)),
                )

    # -- distributed fragments ------------------------------------------------
    # Runs inside each worker: ship back the node fields and couplings its
    # local tasks produced.  Received basis messages only land in the
    # transport store, never on the HSSNode shells, so a non-None field is an
    # exact local-computation marker.
    def collect_local(self):
        frag_nodes: Dict[Tuple[int, int], dict] = {}
        for key, node in self.nodes.items():
            fields = {}
            if node.U is not None:
                fields.update(U=node.U, rank=node.rank, skeleton=node.skeleton)
            if node.D is not None:
                fields["D"] = node.D
            if fields:
                frag_nodes[key] = fields
        return {"nodes": frag_nodes, "couplings": dict(self.couplings)}

    def merge_fragment(self, fragment) -> None:
        for key, fields in fragment["nodes"].items():
            node = self.nodes[key]
            if "U" in fields:
                node.U = fields["U"]
                node.rank = fields["rank"]
                node.skeleton = fields["skeleton"]
            if "D" in fields:
                node.D = fields["D"]
        self.couplings.update(fragment["couplings"])

    def result(self) -> HSSMatrix:
        return HSSMatrix(tree=self.tree, nodes=self.nodes, couplings=self.couplings)


def build_hss_dtd(
    kernel_matrix,
    *,
    leaf_size: int = 256,
    max_rank: Optional[int] = 100,
    tol: Optional[float] = None,
    method: Optional[str] = None,
    n_proxy: Optional[int] = None,
    seed: int = 0,
    tree=None,
    policy=None,
):
    """Task-graph HSS construction; returns ``(HSSMatrix, DTDRuntime)``.

    Bit-identical to :func:`repro.formats.hss.build_hss` with the same
    arguments, on every execution backend of the ``policy``.
    """
    return compress_through_builder(
        HSSCompressBuilder,
        kernel_matrix,
        policy=policy,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tol=tol,
        method=method,
        n_proxy=n_proxy,
        seed=seed,
        tree=tree,
    )
