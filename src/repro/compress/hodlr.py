"""HODLR construction as a task graph (independent off-diagonal blocks).

HODLR shares no bases between blocks or levels, so its construction graph is
the degenerate -- and maximally parallel -- case: one ``ASSEMBLE_DIAG`` task
per leaf and one ``COMPRESS_LOWRANK`` task per internal node of the
recursive 2x2 partition, with no dependency edges at all.  Each compression
task evaluates its kernel block and factors it with the method of the
sequential :func:`repro.formats.hodlr.build_hodlr` (truncated SVD,
randomized SVD or ACA); randomized methods are seeded per call exactly as
the sequential builder seeds them, so the output is bit-identical on every
backend regardless of execution order.

The symmetric lower blocks are derived from the upper factors during result
assembly (``A_21 = A_12^T``), mirroring the sequential construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.compress.builder import CompressGraphBuilder, compress_through_builder
from repro.formats.hodlr import HODLRMatrix, HODLRNode
from repro.lowrank.aca import compress_aca
from repro.lowrank.block import LowRankBlock
from repro.lowrank.rsvd import compress_rsvd
from repro.lowrank.svd import compress_svd
from repro.runtime.task import AccessMode

__all__ = ["HODLRCompressBuilder", "build_hodlr_dtd"]


class HODLRCompressBuilder(CompressGraphBuilder):
    """Record (and execute) the HODLR construction task graph."""

    default_method = "svd"

    def __init__(self, kernel_matrix, **kwargs) -> None:
        super().__init__(kernel_matrix, **kwargs)
        if self.method not in ("svd", "rsvd", "aca"):
            raise ValueError(f"unknown compression method {self.method!r}")
        self.max_level = self.tree.max_level
        #: Result stores keyed by cluster-tree position, filled by the tasks.
        self._dense: Dict[Tuple[int, int], np.ndarray] = {}
        self._upper: Dict[Tuple[int, int], LowRankBlock] = {}
        # Data handles (placement only: no task reads another's output).
        self._h: Dict[Tuple[int, int], object] = {}

    def declare_handles(self) -> None:
        def visit(cnode) -> None:
            key = (cnode.level, cnode.index)
            m = cnode.stop - cnode.start
            if cnode.is_leaf:
                self._h[key] = self.handle(
                    f"D[{cnode.level};{cnode.index}]",
                    8 * m * m,
                    level=cnode.level,
                    row=cnode.index,
                )
            else:
                half = m // 2
                self._h[key] = self.handle(
                    f"LR[{cnode.level};{cnode.index}]",
                    2 * self.basis_nbytes(half),
                    level=cnode.level,
                    row=cnode.index,
                )
                visit(cnode.children[0])
                visit(cnode.children[1])

        visit(self.tree.root)

    def _compress(self, block: np.ndarray) -> LowRankBlock:
        """Factor one off-diagonal block exactly as the sequential builder."""
        if self.method == "svd":
            return compress_svd(block, rank=self.max_rank, tol=self.tol)
        if self.method == "aca":
            aca_tol = self.tol if self.tol is not None else 1e-10
            return compress_aca(
                block, tol=aca_tol, max_rank=self.max_rank, seed=self.rng_seed
            )
        return compress_rsvd(
            block, self.max_rank or min(block.shape), tol=self.tol, seed=self.rng_seed
        )

    def record_tasks(self) -> None:
        kmat = self.kernel_matrix
        dense, upper = self._dense, self._upper

        def visit(cnode) -> None:
            key = (cnode.level, cnode.index)
            self.set_phase(cnode.level)
            if cnode.is_leaf:

                def assemble_diag(cnode=cnode, key=key) -> None:
                    rows = slice(cnode.start, cnode.stop)
                    dense[key] = kmat.block(rows, rows)

                m = cnode.stop - cnode.start
                self.insert(
                    assemble_diag,
                    [(self._h[key], AccessMode.WRITE)],
                    name=f"ASSEMBLE_DIAG[{cnode.level};{cnode.index}]",
                    kind="ASSEMBLE_DIAG",
                    flops=float(m * m),
                )
                return

            left, right = cnode.children

            def compress_block(left=left, right=right, key=key) -> None:
                block = kmat.block(
                    slice(left.start, left.stop), slice(right.start, right.stop)
                )
                upper[key] = self._compress(block)

            mi = left.stop - left.start
            mj = right.stop - right.start
            self.insert(
                compress_block,
                [(self._h[key], AccessMode.WRITE)],
                name=f"COMPRESS_LOWRANK[{cnode.level};{cnode.index}]",
                kind="COMPRESS_LOWRANK",
                flops=float(2 * mi * mj * self.rank_cap(min(mi, mj))),
            )
            visit(left)
            visit(right)

        visit(self.tree.root)

    # -- distributed fragments ------------------------------------------------
    def collect_local(self):
        return {"dense": dict(self._dense), "upper": dict(self._upper)}

    def merge_fragment(self, fragment) -> None:
        self._dense.update(fragment["dense"])
        self._upper.update(fragment["upper"])

    def _assemble(self, cnode) -> HODLRNode:
        key = (cnode.level, cnode.index)
        if cnode.is_leaf:
            return HODLRNode(
                start=cnode.start, stop=cnode.stop, dense=self._dense[key]
            )
        up = self._upper[key]
        return HODLRNode(
            start=cnode.start,
            stop=cnode.stop,
            upper=up,
            lower=LowRankBlock(up.V.copy(), up.U.copy()),  # symmetry: A_21 = A_12^T
            left=self._assemble(cnode.children[0]),
            right=self._assemble(cnode.children[1]),
        )

    def result(self) -> HODLRMatrix:
        return HODLRMatrix(self._assemble(self.tree.root), self.tree)


def build_hodlr_dtd(
    kernel_matrix,
    *,
    leaf_size: int = 256,
    max_rank: Optional[int] = 100,
    tol: Optional[float] = None,
    method: Optional[str] = None,
    seed: int = 0,
    tree=None,
    policy=None,
):
    """Task-graph HODLR construction; returns ``(HODLRMatrix, DTDRuntime)``.

    Bit-identical to :func:`repro.formats.hodlr.build_hodlr` with the same
    arguments, on every execution backend of the ``policy``.
    """
    return compress_through_builder(
        HODLRCompressBuilder,
        kernel_matrix,
        policy=policy,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tol=tol,
        method=method,
        seed=seed,
        tree=tree,
    )
