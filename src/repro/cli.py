"""Command-line interface for regenerating the paper's tables and figures.

Usage::

    python -m repro table1
    python -m repro table2 --n 4096
    python -m repro fig9  --kernel yukawa --max-nodes 128
    python -m repro fig10
    python -m repro fig11 --nodes 64
    python -m repro fig12 --n 65536
    python -m repro solve --n 2048 --runtime parallel --workers 4
    python -m repro solve --n 2048 --nrhs 16 --runtime parallel --refine
    python -m repro solve --n 2048 --runtime distributed --nodes 4 --distribution row
    python -m repro solve --format hodlr --runtime parallel --workers 4
    python -m repro solve --n 2048 --runtime parallel --compress-runtime parallel
    python -m repro speedup --backend process --workers 4
    python -m repro weakscale --base-n 512 --max-nodes 4
    python -m repro servebench --n 1024 --requests 32 --batch 1 --batch 8
    python -m repro compresscale --n 2048 --workers 4 --nodes 2
    python -m repro trace --phase factorize --runtime parallel --chrome-json trace.json
    python -m repro metrics --phase factorize --runtime process
    python -m repro metrics --phase solve --runtime distributed --nodes 2 --json
    python -m repro benchreport --html report.html
    python -m repro serve --port 8080 --backend parallel --workers 4
    python -m repro serve --auth-file tenants.json --cache-file factors.bin --ttl 600

Each experiment sub-command runs the corresponding driver
(:mod:`repro.experiments`) and prints the same rows/series the paper reports.
The defaults are reduced sizes; ``--full`` switches to paper-scale settings
where feasible.

``solve`` runs one end-to-end compress/factorize/solve through the
:class:`~repro.api.StructuredSolver` facade; ``--format`` selects the
compressed representation from the pipeline's format registry (HSS, BLR2,
HODLR, ...), and ``--runtime`` selects the execution path of both the
factorization and the solve (``off``: sequential reference, ``immediate``:
DTD tasks executed at insertion time, ``deferred``: recorded graph run
sequentially, ``parallel``: recorded task graph executed out-of-order on a
``--workers``-thread pool, ``distributed``: recorded task graph executed
across ``--nodes`` worker processes under the ``--distribution`` placement)
and the reported errors demonstrate that all modes agree.  ``--nrhs`` solves
a blocked multi-RHS system; ``--refine`` adds one iterative-refinement step.
``--compress-runtime`` additionally runs the *construction* phase through the
task-graph compression subsystem (:mod:`repro.compress`) on the chosen
backend -- bit-identical to the sequential build, completing the
compress/factorize/solve pipeline on the runtime.

``compresscale`` measures the compression phase directly: task-graph
construction vs the sequential build for every registered format, with
speedups, task counts and (distributed) communication volume.

The argparse choices for ``--format``, ``--runtime`` and ``--distribution``
are derived from the format registry, :data:`repro.pipeline.policy.BACKENDS`
and the distribution-strategy registry -- registering a new format or
strategy updates every sub-command at once.

``servebench`` measures the serving throughput of the caching/batching
:class:`~repro.service.SolverService`: solves/sec vs batch size vs backend,
from one cached factorization per backend.

``weakscale`` runs the distributed weak-scaling experiment: the same recorded
task graph is executed on the real multi-process backend and replayed through
the machine simulator, reporting measured vs modelled makespan and per-strategy
communication volume.

``trace`` runs one phase (compress, factorize or solve) on one runtime
backend with measured task-level tracing enabled and prints the per-worker
compute/overhead/communication/idle breakdown plus per-kind and per-phase
aggregate tables; ``--chrome-json`` additionally writes the timeline as
Chrome trace-event JSON loadable in ``chrome://tracing`` or Perfetto.

``metrics`` runs one phase the same way with a
:class:`~repro.obs.metrics.MetricsRegistry` attached and emits the
accumulated task/comm/memory metrics in Prometheus text exposition format
(``--json``: the registry snapshot as JSON instead); every runtime backend
reports the same metric vocabulary (see README "Observability").

``benchreport`` renders the benchmark artifact ``BENCH_runtime.json`` into a
markdown report (``--html``: additionally a self-contained HTML file) with
per-row timing sparklines and regression deltas against a baseline artifact.

``serve`` runs the always-on HTTP front end
(:class:`~repro.service.http_server.SolverHTTPServer`): ``POST /v1/solve``
(blocking, batched), ``POST /v1/submit`` + ``GET /v1/tickets/<id>`` (async),
``GET /metrics`` (Prometheus), ``GET /healthz`` and ``GET /v1/stats`` -- with
per-tenant API keys and token-bucket rate limits (``--auth-file`` /
``--rate-limit``), queue-depth backpressure (``--max-pending``) and a
disk-persisted factorization cache (``--cache-file``) so restarts serve
cache hits instead of refactorizing (see README "Serving").
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional, Sequence

from repro.distribution.strategies import available_distributions
from repro.pipeline.policy import BACKENDS
from repro.pipeline.registry import available_formats
from repro.experiments import (
    format_compress_scaling,
    format_distributed_weak_scaling,
    format_fig9,
    format_fig10,
    format_fig11,
    format_fig12,
    format_parallel_speedup,
    format_table1,
    format_table2,
    format_solve_throughput,
    run_compress_scaling,
    run_distributed_weak_scaling,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_parallel_speedup,
    run_solve_throughput,
    run_table1,
    run_table2,
)

__all__ = ["build_parser", "main"]

#: The backend argparse choices (fixed by the ExecutionPolicy contract).
RUNTIME_CHOICES = BACKENDS


def _positive_int(value: str) -> int:
    ivalue = int(value)
    if ivalue <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return ivalue


#: Maps the ``--fusion`` tri-state onto the ``ExecutionPolicy.fusion`` field.
_FUSION_MODES = {"auto": None, "on": True, "off": False}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` experiment CLI.

    The ``--format`` and ``--distribution`` choices are read from the format
    and distribution registries *at parser-build time*, so formats or
    strategies registered before :func:`main` runs appear in every
    sub-command automatically.
    """
    format_choices = available_formats()
    distribution_choices = available_distributions()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the HATRIX-DTD paper (ICPP 2023).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="measured compute/communication complexity survey")
    p.add_argument("--full", action="store_true", help="use larger problem sizes")

    p = sub.add_parser("table2", help="rank / leaf size vs construction and solve error")
    p.add_argument("--n", type=int, default=2048, help="problem size (paper: 65536)")
    p.add_argument("--kernel", action="append", dest="kernels", help="kernel name (repeatable)")

    p = sub.add_parser("fig9", help="weak scaling of factorization time")
    p.add_argument("--kernel", action="append", dest="kernels", help="kernel name (repeatable)")
    p.add_argument("--max-nodes", type=int, default=128)
    p.add_argument("--full", action="store_true", help="extend LORAPO to 512 nodes")

    p = sub.add_parser("fig10", help="per-worker compute vs overhead/MPI breakdown")
    p.add_argument("--max-nodes", type=int, default=128)
    p.add_argument("--full", action="store_true")

    p = sub.add_parser("fig11", help="problem-size sweep at constant node count")
    p.add_argument("--nodes", type=int, default=64)
    p.add_argument("--full", action="store_true", help="include N=262144")

    p = sub.add_parser("fig12", help="leaf-size sweep at constant problem size")
    p.add_argument("--n", type=int, default=65536)
    p.add_argument("--nodes", type=int, default=128)

    p = sub.add_parser(
        "solve", help="end-to-end kernel solve through the StructuredSolver facade"
    )
    p.add_argument("--n", type=int, default=2048, help="problem size")
    p.add_argument("--kernel", default="yukawa", help="kernel name")
    p.add_argument(
        "--format",
        choices=format_choices,
        default="hss",
        help="structured matrix format (from the pipeline format registry)",
    )
    p.add_argument("--leaf-size", type=int, default=256, help="leaf cluster size")
    p.add_argument("--max-rank", type=int, default=60, help="skeleton rank cap")
    p.add_argument(
        "--runtime",
        choices=RUNTIME_CHOICES,
        default="off",
        help="execution path: off = sequential reference, immediate = DTD tasks "
        "run at insertion time, deferred = recorded graph run sequentially, "
        "parallel = task graph executed out-of-order on a thread pool, "
        "process = fused task graph executed on a pool of forked worker "
        "processes (GIL-free), "
        "distributed = task graph executed across --nodes worker processes "
        "with owner-computes placement",
    )
    p.add_argument(
        "--compress-runtime",
        choices=RUNTIME_CHOICES,
        default="off",
        help="execution path of the construction phase: off = sequential "
        "formats.build_* reference, any runtime backend compresses through "
        "the task-graph construction subsystem (bit-identical output)",
    )
    p.add_argument(
        "--fusion",
        choices=("auto", "on", "off"),
        default="auto",
        help="record-time task fusion/batching: auto = fused exactly where "
        "required (the process backend), on/off = force for any task-graph "
        "runtime (never changes results, only the task census)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=4,
        help="thread count for --runtime parallel, process count for --runtime process",
    )
    p.add_argument(
        "--nodes",
        type=int,
        default=1,
        help="processes for the data distribution (worker processes for --runtime distributed)",
    )
    p.add_argument(
        "--distribution",
        choices=distribution_choices,
        default="row",
        help="data-distribution strategy for the runtime paths",
    )
    p.add_argument(
        "--data-plane",
        choices=("shm", "pickle"),
        default=None,
        help="wire representation of cross-process edges for --runtime "
        "distributed: shm = zero-copy shared-memory segments (default), "
        "pickle = full pickled payloads (bit-identical, more bytes moved)",
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed for the right-hand side")
    p.add_argument(
        "--nrhs",
        type=_positive_int,
        default=1,
        help="number of right-hand sides solved as one block",
    )
    p.add_argument(
        "--refine",
        action="store_true",
        help="add one iterative-refinement step against the exact kernel operator",
    )

    p = sub.add_parser(
        "speedup", help="sequential vs parallel execution of the recorded ULV task graphs"
    )
    p.add_argument("--n", type=int, default=2048, help="problem size")
    p.add_argument("--kernel", default="yukawa", help="kernel name")
    p.add_argument("--leaf-size", type=int, default=256, help="leaf cluster size")
    p.add_argument("--max-rank", type=int, default=60, help="skeleton rank cap")
    p.add_argument("--workers", type=int, default=4, help="thread/process count for the parallel run")
    p.add_argument(
        "--backend",
        choices=("thread", "process", "distributed"),
        default="thread",
        help="parallel substrate: thread = shared-memory thread pool, "
        "process = fused task graphs on a forked process pool (GIL-free), "
        "distributed = owner-computes multi-process backend",
    )
    p.add_argument(
        "--fusion",
        choices=("auto", "on", "off"),
        default="auto",
        help="record-time task fusion/batching of the timed graphs",
    )
    p.add_argument(
        "--repeats",
        type=_positive_int,
        default=3,
        help="best-of-N warmed timing repeats per side",
    )

    p = sub.add_parser(
        "weakscale",
        help="distributed weak scaling: measured (multi-process) vs simulated makespan and comm volume",
    )
    p.add_argument("--base-n", type=int, default=512, help="problem size per node")
    p.add_argument("--max-nodes", type=int, default=4, help="largest node count (doubling from 1)")
    p.add_argument("--kernel", default="yukawa", help="kernel name")
    p.add_argument("--leaf-size", type=int, default=64, help="leaf cluster size")
    p.add_argument("--max-rank", type=int, default=24, help="skeleton rank cap")
    p.add_argument(
        "--distribution",
        action="append",
        dest="distributions",
        choices=distribution_choices,
        help="distribution strategy (repeatable; default: row and block)",
    )
    p.add_argument(
        "--data-plane",
        action="append",
        dest="data_planes",
        choices=("shm", "pickle"),
        help="data plane to measure (repeatable; default: shm and pickle, "
        "so the report shows the zero-copy byte savings)",
    )

    p = sub.add_parser(
        "servebench",
        help="SolverService throughput: solves/sec vs batch size vs backend",
    )
    p.add_argument("--n", type=int, default=1024, help="problem size")
    p.add_argument("--kernel", default="yukawa", help="kernel name")
    p.add_argument(
        "--format",
        choices=format_choices,
        default="hss",
        help="structured matrix format served by the service",
    )
    p.add_argument("--leaf-size", type=int, default=128, help="leaf cluster size")
    p.add_argument("--max-rank", type=int, default=30, help="skeleton rank cap")
    p.add_argument(
        "--requests",
        type=_positive_int,
        default=32,
        help="right-hand sides streamed per sweep",
    )
    p.add_argument(
        "--batch",
        action="append",
        dest="batch_sizes",
        type=_positive_int,
        help="batch size (repeatable; default: 1, 4, 16)",
    )
    p.add_argument(
        "--backend",
        action="append",
        dest="backends",
        choices=("reference", "immediate", "sequential", "parallel", "process", "distributed"),
        help="service backend (repeatable; default: reference, sequential, parallel)",
    )
    p.add_argument("--workers", type=int, default=4, help="thread count for the parallel backend")
    p.add_argument(
        "--nodes", type=int, default=2, help="worker processes for the distributed backend"
    )
    p.add_argument(
        "--panel-size",
        type=_positive_int,
        default=None,
        help="RHS-panel width of the task-graph backends (default: one panel)",
    )
    p.add_argument(
        "--distribution",
        choices=distribution_choices,
        default=None,
        help="placement strategy for the task-graph backends",
    )
    p.add_argument(
        "--compress-runtime",
        choices=RUNTIME_CHOICES,
        default="off",
        help="execution path of the construction phase on factorization-cache "
        "misses (off = sequential build)",
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed for the right-hand sides")

    p = sub.add_parser(
        "compresscale",
        help="compression-phase scaling: task-graph construction vs the sequential build per format",
    )
    p.add_argument("--n", type=int, default=2048, help="problem size")
    p.add_argument("--kernel", default="yukawa", help="kernel name")
    p.add_argument("--leaf-size", type=int, default=128, help="leaf cluster size")
    p.add_argument("--max-rank", type=int, default=30, help="skeleton rank cap")
    p.add_argument(
        "--format",
        action="append",
        dest="formats",
        choices=format_choices,
        help="structured format (repeatable; default: every registered format)",
    )
    p.add_argument(
        "--backend",
        action="append",
        dest="backends",
        choices=tuple(b for b in RUNTIME_CHOICES if b != "off"),
        help="runtime backend (repeatable; default: deferred, parallel, distributed)",
    )
    p.add_argument("--workers", type=int, default=4, help="thread count for the parallel backend")
    p.add_argument(
        "--nodes", type=int, default=2, help="worker processes for the distributed backend"
    )
    p.add_argument(
        "--fusion",
        choices=("auto", "on", "off"),
        default="auto",
        help="record-time task fusion/batching of the construction graphs",
    )
    p.add_argument(
        "--repeats",
        type=_positive_int,
        default=3,
        help="best-of-N warmed timing repeats per cell",
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed for the construction")

    p = sub.add_parser(
        "trace",
        help="measured task-level trace of one phase on one runtime backend",
    )
    p.add_argument("--n", type=int, default=512, help="problem size")
    p.add_argument("--kernel", default="yukawa", help="kernel name")
    p.add_argument(
        "--format",
        choices=format_choices,
        default="hss",
        help="structured matrix format",
    )
    p.add_argument("--leaf-size", type=int, default=128, help="leaf cluster size")
    p.add_argument("--max-rank", type=int, default=30, help="skeleton rank cap")
    p.add_argument(
        "--phase",
        choices=("compress", "factorize", "solve"),
        default="factorize",
        help="pipeline phase to trace",
    )
    p.add_argument(
        "--runtime",
        choices=tuple(b for b in RUNTIME_CHOICES if b != "off"),
        default="parallel",
        help="execution backend of the traced phase",
    )
    p.add_argument("--workers", type=int, default=4, help="thread/process count")
    p.add_argument(
        "--nodes", type=int, default=2, help="worker processes for the distributed backend"
    )
    p.add_argument(
        "--distribution",
        choices=distribution_choices,
        default="row",
        help="placement strategy for the distributed backend",
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed for the right-hand side")
    p.add_argument(
        "--chrome-json",
        default=None,
        metavar="PATH",
        help="write the timeline as Chrome trace-event JSON to PATH",
    )

    p = sub.add_parser(
        "metrics",
        help="runtime metrics of one phase on one backend, in Prometheus text format",
    )
    p.add_argument("--n", type=int, default=512, help="problem size")
    p.add_argument("--kernel", default="yukawa", help="kernel name")
    p.add_argument(
        "--format",
        choices=format_choices,
        default="hss",
        help="structured matrix format",
    )
    p.add_argument("--leaf-size", type=int, default=128, help="leaf cluster size")
    p.add_argument("--max-rank", type=int, default=30, help="skeleton rank cap")
    p.add_argument(
        "--phase",
        choices=("compress", "factorize", "solve"),
        default="factorize",
        help="pipeline phase to meter",
    )
    p.add_argument(
        "--runtime",
        choices=tuple(b for b in RUNTIME_CHOICES if b != "off"),
        default="parallel",
        help="execution backend of the metered phase",
    )
    p.add_argument("--workers", type=int, default=4, help="thread/process count")
    p.add_argument(
        "--nodes", type=int, default=2, help="worker processes for the distributed backend"
    )
    p.add_argument(
        "--distribution",
        choices=distribution_choices,
        default="row",
        help="placement strategy for the distributed backend",
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed for the right-hand side")
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the registry snapshot as JSON instead of Prometheus text",
    )
    p.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the exposition to PATH instead of stdout",
    )

    p = sub.add_parser(
        "serve",
        help="run the always-on HTTP solver server (see README 'Serving')",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8080, help="bind port (0: pick a free one)")
    p.add_argument(
        "--backend",
        choices=("reference", "immediate", "sequential", "parallel", "process", "distributed"),
        default="parallel",
        help="SolverService execution backend for the batched solves",
    )
    p.add_argument("--workers", type=int, default=4, help="thread/process count")
    p.add_argument(
        "--nodes", type=int, default=1, help="worker processes for the distributed backend"
    )
    p.add_argument(
        "--distribution",
        choices=distribution_choices,
        default=None,
        help="placement strategy for the task-graph backends",
    )
    p.add_argument(
        "--panel-size",
        type=_positive_int,
        default=None,
        help="RHS-panel width of the batched solves (1: per-request solves, "
        "bit-identical to single-RHS reference solves)",
    )
    p.add_argument(
        "--max-cached",
        type=_positive_int,
        default=8,
        help="factorizations kept in the LRU cache",
    )
    p.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="factorization time-to-live (idle entries expire; default: never)",
    )
    p.add_argument(
        "--flush-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="batching window of the background flush loop",
    )
    p.add_argument(
        "--max-pending",
        type=_positive_int,
        default=256,
        help="queued tickets before solve/submit get 503 backpressure",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="blocking /v1/solve wait before 504 (the ticket still resolves)",
    )
    p.add_argument(
        "--ticket-ttl",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="seconds a resolved ticket stays claimable via /v1/tickets/<id>",
    )
    p.add_argument(
        "--cache-file",
        default=None,
        metavar="PATH",
        help="factorization-cache snapshot: loaded on start if present, "
        "written on shutdown (restart = cache hits, zero refactorization)",
    )
    p.add_argument(
        "--auth-file",
        default=None,
        metavar="PATH",
        help="JSON tenant config ({\"tenants\": [{name, api_key, rate, burst}]}); "
        "omitted: open anonymous mode",
    )
    p.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="PER_SEC",
        help="default sustained requests/second per tenant (anonymous included)",
    )
    p.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="N",
        help="token-bucket burst capacity (default: max(1, rate))",
    )

    p = sub.add_parser(
        "benchreport",
        help="render BENCH_runtime.json into a markdown/HTML trajectory report",
    )
    p.add_argument(
        "artifact",
        nargs="?",
        default=None,
        metavar="PATH",
        help="benchmark artifact to render (default: the committed one)",
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline artifact for regression deltas (default: the committed "
        "artifact when rendering another one)",
    )
    p.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the markdown to PATH instead of stdout",
    )
    p.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="additionally write a self-contained HTML report to PATH",
    )

    return parser


def _run_solve(args: argparse.Namespace) -> str:
    """Run one compress/factorize/solve cycle and format a small report."""
    import numpy as np

    from repro.api import StructuredSolver

    distribution = args.distribution if args.runtime == "distributed" else None
    compress_distribution = (
        args.distribution if args.compress_runtime == "distributed" else None
    )
    # --fusion applies wherever a graph is recorded; runtimes that execute
    # bodies at insertion time (off/immediate) have no graph to coarsen, so
    # the flag falls back to auto for them instead of being rejected.
    fusion = _FUSION_MODES[args.fusion]
    exec_fusion = fusion if args.runtime not in ("off", "immediate") else None
    compress_fusion = (
        fusion if args.compress_runtime not in ("off", "immediate") else None
    )
    t0 = time.perf_counter()
    solver = StructuredSolver.from_kernel(
        args.kernel, n=args.n, format=args.format,
        leaf_size=args.leaf_size, max_rank=args.max_rank,
        compress_runtime=args.compress_runtime,
        compress_nodes=args.nodes,
        compress_workers=args.workers,
        compress_distribution=compress_distribution,
        compress_fusion=compress_fusion,
    )
    t_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    solver.factorize(
        use_runtime=args.runtime,
        nodes=args.nodes,
        n_workers=args.workers,
        distribution=distribution,
        fusion=exec_fusion,
        data_plane=args.data_plane,
    )
    t_factor = time.perf_counter() - t0

    rng = np.random.default_rng(args.seed)
    b = rng.standard_normal(args.n if args.nrhs == 1 else (args.n, args.nrhs))
    t0 = time.perf_counter()
    x = solver.solve(
        b,
        use_runtime=args.runtime,
        refine=args.refine,
        nodes=args.nodes,
        n_workers=args.workers,
        distribution=distribution,
        fusion=exec_fusion,
        data_plane=args.data_plane,
    )
    t_solve = time.perf_counter() - t0
    residual = np.linalg.norm(solver.matvec(x) - b) / np.linalg.norm(b)
    exact_residual = None
    if args.refine:
        # Refinement corrects toward the exact kernel operator, so the
        # meaningful residual is against it (the compressed-operator residual
        # grows back to the construction error by design).
        from repro.analysis.errors import relative_residual

        exact_residual = relative_residual(solver.kernel_matrix, x, b)

    runtime_detail = ""
    if args.runtime in ("parallel", "process"):
        runtime_detail = f" workers={args.workers}"
    elif args.runtime == "distributed":
        runtime_detail = f" nodes={args.nodes} distribution={args.distribution}"
        if args.data_plane:
            runtime_detail += f" data_plane={args.data_plane}"
    if args.fusion != "auto":
        runtime_detail += f" fusion={args.fusion}"
    if args.refine:
        runtime_detail += " refine=1"
    compress_detail = ""
    if args.compress_runtime != "off":
        compress_detail = (
            f"  (compress-runtime={args.compress_runtime}, "
            f"{solver.compress_runtime.num_tasks} tasks)"
        )
    lines = [
        f"StructuredSolver solve: format={args.format} kernel={args.kernel} "
        f"n={args.n} nrhs={args.nrhs} "
        f"leaf_size={args.leaf_size} max_rank={args.max_rank}",
        f"runtime={args.runtime}" + runtime_detail,
        f"construct {t_build:8.3f} s" + compress_detail,
        f"factorize {t_factor:8.3f} s",
        f"solve     {t_solve:8.3f} s  ({args.nrhs / max(t_solve, 1e-12):.1f} solves/s)",
        f"construction error {solver.construction_error():.3e}",
        f"solve error        {solver.solve_error(nrhs=args.nrhs):.3e}",
        f"residual           {residual:.3e}",
    ]
    if exact_residual is not None:
        lines.append(f"exact residual     {exact_residual:.3e}")
    return "\n".join(lines)


def _run_trace(args: argparse.Namespace) -> str:
    """Trace one pipeline phase on one runtime backend and format the report."""
    import numpy as np

    from repro.api import StructuredSolver

    distribution = args.distribution if args.runtime == "distributed" else None
    compress = args.phase == "compress"
    solver = StructuredSolver.from_kernel(
        args.kernel,
        n=args.n,
        format=args.format,
        leaf_size=args.leaf_size,
        max_rank=args.max_rank,
        compress_runtime=args.runtime if compress else "off",
        compress_nodes=args.nodes,
        compress_workers=args.workers,
        compress_distribution=distribution if compress else None,
        compress_trace=compress,
    )
    if args.phase == "factorize":
        solver.factorize(
            use_runtime=args.runtime,
            nodes=args.nodes,
            n_workers=args.workers,
            distribution=distribution,
            trace=True,
        )
    elif args.phase == "solve":
        # The factorization is the sequential cached reference; only the
        # solve runs (traced) through the requested backend.
        solver.factorize()
        b = np.random.default_rng(args.seed).standard_normal(args.n)
        solver.solve(
            b,
            use_runtime=args.runtime,
            nodes=args.nodes,
            n_workers=args.workers,
            distribution=distribution,
            trace=True,
        )
    trace = solver.last_traces().get(args.phase)
    if trace is None:
        raise SystemExit(
            f"phase {args.phase!r} produced no trace on runtime {args.runtime!r}"
        )
    lines = [
        f"Measured trace: phase={args.phase} runtime={args.runtime} "
        f"format={args.format} kernel={args.kernel} n={args.n}",
        repr(trace),
        "",
        trace.format_breakdown(),
        "",
        trace.format_aggregates(),
    ]
    if args.chrome_json:
        lines.append("")
        lines.append(f"chrome trace written to {trace.to_chrome_json(args.chrome_json)}")
    return "\n".join(lines)


def _run_metrics(args: argparse.Namespace) -> str:
    """Meter one pipeline phase on one runtime backend; emit the registry."""
    import json

    import numpy as np

    from repro.api import StructuredSolver
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    distribution = args.distribution if args.runtime == "distributed" else None
    compress = args.phase == "compress"
    solver = StructuredSolver.from_kernel(
        args.kernel,
        n=args.n,
        format=args.format,
        leaf_size=args.leaf_size,
        max_rank=args.max_rank,
        compress_runtime=args.runtime if compress else "off",
        compress_nodes=args.nodes,
        compress_workers=args.workers,
        compress_distribution=distribution if compress else None,
        compress_metrics=registry if compress else None,
    )
    if args.phase == "factorize":
        solver.factorize(
            use_runtime=args.runtime,
            nodes=args.nodes,
            n_workers=args.workers,
            distribution=distribution,
            metrics=registry,
        )
    elif args.phase == "solve":
        # The factorization is the sequential cached reference; only the
        # solve runs (metered) through the requested backend.
        solver.factorize()
        b = np.random.default_rng(args.seed).standard_normal(args.n)
        solver.solve(
            b,
            use_runtime=args.runtime,
            nodes=args.nodes,
            n_workers=args.workers,
            distribution=distribution,
            metrics=registry,
        )
    if args.json:
        out = json.dumps(registry.as_dict(), indent=2, sort_keys=True)
    else:
        out = registry.render_prometheus().rstrip("\n")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(out + "\n")
        return (
            f"metrics: phase={args.phase} runtime={args.runtime} "
            f"format={args.format} n={args.n} -> {args.output} "
            f"({len(registry.families())} families)"
        )
    return out


def _run_serve(args: argparse.Namespace) -> str:
    """Boot the HTTP solver server and block until interrupted."""
    from repro.service import Authenticator, SolverHTTPServer, SolverService

    service = SolverService(
        backend=args.backend,
        n_workers=args.workers,
        nodes=args.nodes,
        distribution=args.distribution,
        panel_size=args.panel_size,
        max_cached=args.max_cached,
        ttl_seconds=args.ttl,
    )
    if args.auth_file:
        auth = Authenticator.from_file(
            args.auth_file, default_rate=args.rate_limit, default_burst=args.burst
        )
    else:
        auth = Authenticator(default_rate=args.rate_limit, default_burst=args.burst)
    server = SolverHTTPServer(
        service,
        host=args.host,
        port=args.port,
        flush_interval=args.flush_interval,
        max_pending=args.max_pending,
        request_timeout=args.request_timeout,
        ticket_ttl=args.ticket_ttl,
        auth=auth,
        cache_path=args.cache_file,
    )
    host, port = server.start_in_thread()
    mode = "open" if auth.open else f"{len(auth.tenants)} tenant(s)"
    print(
        f"repro-solver listening on http://{host}:{port} "
        f"(backend={args.backend}, auth={mode})",
        flush=True,
    )
    try:
        server.join()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
        server.shutdown()
        server.join(10)
    return f"repro-solver stopped ({service.stats.solves} solves served)"


def _run_benchreport(args: argparse.Namespace) -> str:
    """Render the benchmark artifact into markdown (and optionally HTML)."""
    from pathlib import Path

    from repro.obs import benchreport

    artifact = Path(args.artifact) if args.artifact else benchreport._default_artifact()
    current = benchreport.load_artifact(artifact)
    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is None and artifact.resolve() != benchreport._default_artifact():
        baseline_path = benchreport._default_artifact()
    baseline = (
        benchreport.load_artifact(baseline_path)
        if baseline_path is not None and baseline_path.exists()
        else None
    )
    markdown = benchreport.render_markdown(current, baseline)
    if args.html:
        Path(args.html).write_text(
            benchreport.render_html(current, baseline), encoding="utf-8"
        )
    if args.output:
        Path(args.output).write_text(markdown, encoding="utf-8")
        return f"benchreport: {artifact} -> {args.output}"
    return markdown.rstrip("\n")


def main(argv: Optional[Sequence[str]] = None) -> str:
    """Run one experiment and return (and print) its formatted table."""
    args = build_parser().parse_args(argv)

    if args.command == "table1":
        sizes = (4096, 8192, 16384, 32768) if args.full else (2048, 4096, 8192)
        out = format_table1(run_table1(sizes=sizes))
    elif args.command == "table2":
        kernels = tuple(args.kernels) if args.kernels else ("laplace2d", "yukawa", "matern")
        out = format_table2(run_table2(n=args.n, kernels=kernels))
    elif args.command == "fig9":
        kernels = tuple(args.kernels) if args.kernels else ("laplace2d", "yukawa", "matern")
        out = format_fig9(
            run_fig9(
                kernels=kernels,
                max_nodes=args.max_nodes,
                lorapo_max_nodes=512 if args.full else min(args.max_nodes, 128),
            )
        )
    elif args.command == "fig10":
        out = format_fig10(
            run_fig10(max_nodes=args.max_nodes, lorapo_max_nodes=512 if args.full else 128)
        )
    elif args.command == "fig11":
        sizes: List[int] = [8192, 16384, 32768, 65536, 131072]
        if args.full:
            sizes.append(262144)
        out = format_fig11(run_fig11(nodes=args.nodes, sizes=sizes))
    elif args.command == "fig12":
        out = format_fig12(run_fig12(n=args.n, nodes=args.nodes))
    elif args.command == "solve":
        out = _run_solve(args)
    elif args.command == "speedup":
        out = format_parallel_speedup(
            run_parallel_speedup(
                n=args.n,
                kernel=args.kernel,
                leaf_size=args.leaf_size,
                max_rank=args.max_rank,
                n_workers=args.workers,
                backend=args.backend,
                fusion=_FUSION_MODES[args.fusion],
                repeats=args.repeats,
            )
        )
    elif args.command == "weakscale":
        node_counts = []
        nodes = 1
        while nodes <= args.max_nodes:
            node_counts.append(nodes)
            nodes *= 2
        out = format_distributed_weak_scaling(
            run_distributed_weak_scaling(
                base_n=args.base_n,
                node_counts=node_counts,
                kernel=args.kernel,
                leaf_size=args.leaf_size,
                max_rank=args.max_rank,
                distributions=tuple(args.distributions) if args.distributions else ("row", "block"),
                data_planes=tuple(args.data_planes) if args.data_planes else ("shm", "pickle"),
            )
        )
    elif args.command == "servebench":
        out = format_solve_throughput(
            run_solve_throughput(
                n=args.n,
                kernel=args.kernel,
                leaf_size=args.leaf_size,
                max_rank=args.max_rank,
                requests=args.requests,
                batch_sizes=tuple(args.batch_sizes) if args.batch_sizes else (1, 4, 16),
                backends=tuple(args.backends)
                if args.backends
                else ("reference", "sequential", "parallel"),
                n_workers=args.workers,
                nodes=args.nodes,
                distribution=args.distribution,
                panel_size=args.panel_size,
                format_name=args.format,
                compress_runtime=args.compress_runtime,
                seed=args.seed,
            )
        )
    elif args.command == "compresscale":
        out = format_compress_scaling(
            run_compress_scaling(
                n=args.n,
                kernel=args.kernel,
                leaf_size=args.leaf_size,
                max_rank=args.max_rank,
                formats=tuple(args.formats) if args.formats else None,
                backends=tuple(args.backends)
                if args.backends
                else ("deferred", "parallel", "distributed"),
                n_workers=args.workers,
                nodes=args.nodes,
                fusion=_FUSION_MODES[args.fusion],
                repeats=args.repeats,
                seed=args.seed,
            )
        )
    elif args.command == "trace":
        out = _run_trace(args)
    elif args.command == "metrics":
        out = _run_metrics(args)
    elif args.command == "serve":
        out = _run_serve(args)
    elif args.command == "benchreport":
        out = _run_benchreport(args)
    else:  # pragma: no cover - argparse enforces the choices
        raise ValueError(f"unknown command {args.command!r}")

    print(out)
    return out
