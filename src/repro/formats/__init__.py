"""Structured dense-matrix formats: block dense, BLR, BLR2 and HSS."""

from repro.formats.block_dense import BlockDenseMatrix
from repro.formats.blr import BLRMatrix, build_blr
from repro.formats.blr2 import BLR2Matrix, build_blr2
from repro.formats.hss import HSSMatrix, HSSNode, HSSStructure, build_hss
from repro.formats.hodlr import HODLRMatrix, HODLRNode, build_hodlr

__all__ = [
    "HSSStructure",
    "HODLRMatrix",
    "HODLRNode",
    "build_hodlr",
    "BlockDenseMatrix",
    "BLRMatrix",
    "build_blr",
    "BLR2Matrix",
    "build_blr2",
    "HSSMatrix",
    "HSSNode",
    "build_hss",
]
