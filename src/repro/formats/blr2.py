"""BLR2 matrices: single-level block low rank with *shared* row bases (Fig. 1).

Every off-diagonal block of row ``i`` shares the same skeleton basis ``U_i^S``
(Eq. 1-5): ``A_{i,j} ~= U_i^S @ S_{i,j} @ (U_j^S)^T``.  The shared basis is what
enables the ULV factorization to nullify every off-diagonal block of a row at
once (Sec. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.geometry.cluster_tree import ClusterTree, build_cluster_tree
from repro.kernels.assembly import KernelMatrix
from repro.lowrank.qr import row_basis

__all__ = ["BLR2Matrix", "build_blr2"]


@dataclass
class BLR2Matrix:
    """A weak-admissibility BLR2 matrix with shared row bases.

    Attributes
    ----------
    tree:
        Cluster tree whose leaf level defines the block partition.
    diag:
        Dense diagonal blocks ``A_{i,i}`` keyed by block index.
    bases:
        Skeleton bases ``U_i^S`` (orthonormal columns, ``n_i x r_i``).
    couplings:
        Skeleton coupling blocks ``S_{i,j}`` (``r_i x r_j``) for ``i != j``.
    """

    tree: ClusterTree
    diag: Dict[int, np.ndarray]
    bases: Dict[int, np.ndarray]
    couplings: Dict[Tuple[int, int], np.ndarray]

    @property
    def n(self) -> int:
        return self.tree.n

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    @property
    def nblocks(self) -> int:
        return len(self.tree.leaves)

    def rank(self, i: int) -> int:
        """Skeleton rank of block row ``i``."""
        return self.bases[i].shape[1]

    def block_range(self, i: int) -> slice:
        leaf = self.tree.leaves[i]
        return slice(leaf.start, leaf.stop)

    def coupling(self, i: int, j: int) -> np.ndarray:
        """Coupling ``S_{i,j}``; uses symmetry ``S_{j,i} = S_{i,j}^T`` when needed."""
        if (i, j) in self.couplings:
            return self.couplings[(i, j)]
        if (j, i) in self.couplings:
            return self.couplings[(j, i)].T
        raise KeyError(f"no coupling stored for ({i}, {j})")

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Matrix-vector product through the shared-basis representation."""
        x = np.asarray(x, dtype=np.float64)
        y = np.zeros(self.n)
        nb = self.nblocks
        xhat = [self.bases[i].T @ x[self.block_range(i)] for i in range(nb)]
        yhat = [np.zeros(self.rank(i)) for i in range(nb)]
        for i in range(nb):
            ri = self.block_range(i)
            y[ri] += self.diag[i] @ x[ri]
            for j in range(nb):
                if i == j:
                    continue
                yhat[i] += self.coupling(i, j) @ xhat[j]
        for i in range(nb):
            y[self.block_range(i)] += self.bases[i] @ yhat[i]
        return y

    def to_dense(self) -> np.ndarray:
        """Reconstruct the (approximated) dense matrix."""
        out = np.zeros((self.n, self.n))
        nb = self.nblocks
        for i in range(nb):
            ri = self.block_range(i)
            out[ri, ri] = self.diag[i]
            for j in range(nb):
                if i == j:
                    continue
                cj = self.block_range(j)
                out[ri, cj] = self.bases[i] @ self.coupling(i, j) @ self.bases[j].T
        return out

    def memory_bytes(self) -> int:
        total = sum(d.nbytes for d in self.diag.values())
        total += sum(u.nbytes for u in self.bases.values())
        total += sum(s.nbytes for s in self.couplings.values())
        return total

    def __repr__(self) -> str:
        ranks = [self.rank(i) for i in range(self.nblocks)]
        return (
            f"BLR2Matrix(n={self.n}, nblocks={self.nblocks}, "
            f"ranks=[{min(ranks)}..{max(ranks)}], mem={self.memory_bytes() / 1e6:.1f} MB)"
        )


def build_blr2(
    kernel_matrix: KernelMatrix,
    *,
    leaf_size: int = 256,
    max_rank: Optional[int] = 100,
    tol: Optional[float] = None,
    tree: Optional[ClusterTree] = None,
    basis_method: str = "svd",
) -> BLR2Matrix:
    """Construct a weak-admissibility BLR2 matrix with shared row bases (Eq. 2).

    The basis of row ``i`` is computed from the concatenation of all admissible
    (off-diagonal) blocks of that row, exactly as in Eq. 2 of the paper.

    Parameters
    ----------
    kernel_matrix:
        Lazily assembled SPD kernel matrix.
    leaf_size:
        Block size.
    max_rank:
        Cap on the shared-basis rank (the paper's "max rank").
    tol:
        Optional relative tolerance for adaptive ranks.
    tree:
        Reuse an existing cluster tree.
    basis_method:
        ``"svd"`` or ``"qr"`` (pivoted QR, Eq. 2).
    """
    if tree is None:
        tree = build_cluster_tree(kernel_matrix.points, leaf_size=leaf_size)
    leaves = tree.leaves
    nb = len(leaves)
    n = kernel_matrix.n

    diag: Dict[int, np.ndarray] = {}
    bases: Dict[int, np.ndarray] = {}
    couplings: Dict[Tuple[int, int], np.ndarray] = {}

    for i, li in enumerate(leaves):
        rows = slice(li.start, li.stop)
        diag[i] = kernel_matrix.block(rows, rows)
        far_cols = np.concatenate(
            [np.arange(0, li.start), np.arange(li.stop, n)]
        )
        block_row = kernel_matrix.block(rows, far_cols)
        bases[i] = row_basis(block_row, rank=max_rank, tol=tol, method=basis_method)

    for i, li in enumerate(leaves):
        for j in range(i):
            lj = leaves[j]
            block = kernel_matrix.block(slice(li.start, li.stop), slice(lj.start, lj.stop))
            couplings[(i, j)] = bases[i].T @ block @ bases[j]

    return BLR2Matrix(tree=tree, diag=diag, bases=bases, couplings=couplings)
