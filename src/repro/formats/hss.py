"""HSS (Hierarchically Semi-Separable) matrices with nested bases (paper Sec. 2).

An HSS matrix is a multi-level weak-admissibility format where the shared row
bases of successive levels are *nested*: the basis of a parent cluster is
expressed in the coordinates of its children's bases through a small transfer
matrix (Eq. 6).  This nesting is what drops the ULV factorization cost from
the BLR2's ~O(N^2) to O(N) (Sec. 3.2).

Two constructions are provided:

``dense_rows``
    Textbook construction: the leaf basis is computed from the full
    off-diagonal block row (Eq. 2), parent bases from the compressed children
    rows.  Exact but O(N^2) work -- used for validation and moderate N.

``interpolative``
    Fast skeleton-point construction (the approach used by HATRIX and, in
    randomized form, STRUMPACK): each cluster selects *skeleton points* by a
    row interpolative decomposition against a sampled proxy of its far field;
    couplings then only require kernel evaluations on skeleton points, giving
    near-linear construction cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geometry.cluster_tree import ClusterTree, build_cluster_tree
from repro.kernels.assembly import KernelMatrix
from repro.lowrank.interpolative import interpolative_rows
from repro.lowrank.qr import row_basis

__all__ = ["HSSNode", "HSSMatrix", "build_hss", "HSSStructure"]


@dataclass
class HSSNode:
    """Per-cluster data of an HSS matrix.

    Attributes
    ----------
    level, index:
        Position in the cluster tree (root level 0, leaves at ``max_level``).
    start, stop:
        Global index range of the cluster.
    rank:
        Skeleton rank ``r`` of this cluster (0 for the root).
    U:
        Skeleton basis.  For a leaf: ``(size, r)`` with orthonormal columns.
        For an internal non-root node: the *transfer* matrix
        ``(r_child1 + r_child2, r)``.  ``None`` for the root.
    D:
        Dense diagonal block (leaves only).
    skeleton:
        Global indices of the skeleton points (interpolative construction
        only; ``None`` otherwise).
    """

    level: int
    index: int
    start: int
    stop: int
    rank: int = 0
    U: Optional[np.ndarray] = None
    D: Optional[np.ndarray] = None
    skeleton: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return self.stop - self.start


class HSSMatrix:
    """A symmetric HSS matrix.

    Parameters
    ----------
    tree:
        The complete binary cluster tree.
    nodes:
        Mapping ``(level, index) -> HSSNode``.
    couplings:
        Sibling coupling blocks ``S_{level; i, j}`` (``r_i x r_j``), stored for
        ``i > j`` (``i = 2k+1``, ``j = 2k``); symmetry provides the transpose.
    """

    def __init__(
        self,
        tree: ClusterTree,
        nodes: Dict[Tuple[int, int], HSSNode],
        couplings: Dict[Tuple[int, int, int], np.ndarray],
    ) -> None:
        self.tree = tree
        self.nodes = nodes
        self.couplings = couplings

    # -- structure accessors ----------------------------------------------
    @property
    def n(self) -> int:
        return self.tree.n

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    @property
    def max_level(self) -> int:
        return self.tree.max_level

    @property
    def leaf_size(self) -> int:
        return self.tree.leaf_size

    def node(self, level: int, index: int) -> HSSNode:
        return self.nodes[(level, index)]

    def level_ranks(self, level: int) -> List[int]:
        """Skeleton ranks of all nodes at ``level``."""
        return [self.nodes[(level, i)].rank for i in range(2**level)]

    def max_rank(self) -> int:
        """Largest skeleton rank over all non-root nodes."""
        return max(
            (node.rank for key, node in self.nodes.items() if key[0] > 0), default=0
        )

    def coupling(self, level: int, i: int, j: int) -> np.ndarray:
        """Sibling coupling ``S_{level; i, j}`` (transposed on demand for symmetry)."""
        if (level, i, j) in self.couplings:
            return self.couplings[(level, i, j)]
        if (level, j, i) in self.couplings:
            return self.couplings[(level, j, i)].T
        raise KeyError(f"no coupling stored for level {level}, ({i}, {j})")

    def block_size(self, level: int, index: int) -> int:
        """Row dimension of the ULV working block of node ``(level, index)``.

        At the leaf level this is the leaf cluster size; at internal levels it
        is the sum of the children's skeleton ranks (the merged block of
        Alg. 2).
        """
        if level == self.max_level:
            return self.nodes[(level, index)].size
        c1 = self.nodes[(level + 1, 2 * index)]
        c2 = self.nodes[(level + 1, 2 * index + 1)]
        return c1.rank + c2.rank

    # -- expanded bases and dense reconstruction ---------------------------
    def expanded_basis(self, level: int, index: int) -> np.ndarray:
        """Explicit (cluster-size x rank) basis obtained by expanding transfers.

        Only used for validation / dense reconstruction; the factorization
        never needs expanded bases.
        """
        node = self.nodes[(level, index)]
        if node.U is None:
            raise ValueError("the root has no basis")
        if level == self.max_level:
            return node.U
        e1 = self.expanded_basis(level + 1, 2 * index)
        e2 = self.expanded_basis(level + 1, 2 * index + 1)
        top = e1 @ node.U[: e1.shape[1], :]
        bot = e2 @ node.U[e1.shape[1] :, :]
        return np.vstack([top, bot])

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense matrix represented by the HSS approximation."""
        out = np.zeros((self.n, self.n))
        for i in range(2**self.max_level):
            node = self.nodes[(self.max_level, i)]
            out[node.start : node.stop, node.start : node.stop] = node.D
        for level in range(1, self.max_level + 1):
            for k in range(2 ** (level - 1)):
                j, i = 2 * k, 2 * k + 1
                ni = self.nodes[(level, i)]
                nj = self.nodes[(level, j)]
                ei = self.expanded_basis(level, i)
                ej = self.expanded_basis(level, j)
                s = self.coupling(level, i, j)
                block = ei @ s @ ej.T
                out[ni.start : ni.stop, nj.start : nj.stop] = block
                out[nj.start : nj.stop, ni.start : ni.stop] = block.T
        return out

    # -- matvec -------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Matrix-vector product in O(N r) using the telescoping representation."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        xm = x.reshape(self.n, -1)
        y = np.zeros_like(xm)
        max_level = self.max_level

        # Upward pass: compress x into each cluster's skeleton coordinates.
        xhat: Dict[Tuple[int, int], np.ndarray] = {}
        for i in range(2**max_level):
            node = self.nodes[(max_level, i)]
            xhat[(max_level, i)] = node.U.T @ xm[node.start : node.stop]
            y[node.start : node.stop] += node.D @ xm[node.start : node.stop]
        for level in range(max_level - 1, 0, -1):
            for i in range(2**level):
                node = self.nodes[(level, i)]
                stacked = np.vstack([xhat[(level + 1, 2 * i)], xhat[(level + 1, 2 * i + 1)]])
                xhat[(level, i)] = node.U.T @ stacked

        # Coupling application per level.
        yhat: Dict[Tuple[int, int], np.ndarray] = {
            key: np.zeros_like(val) for key, val in xhat.items()
        }
        for level in range(1, max_level + 1):
            for k in range(2 ** (level - 1)):
                j, i = 2 * k, 2 * k + 1
                s = self.coupling(level, i, j)
                yhat[(level, i)] += s @ xhat[(level, j)]
                yhat[(level, j)] += s.T @ xhat[(level, i)]

        # Downward pass: push parent contributions into children skeleton coords.
        for level in range(1, max_level):
            for i in range(2**level):
                node = self.nodes[(level, i)]
                expanded = node.U @ yhat[(level, i)]
                r1 = self.nodes[(level + 1, 2 * i)].rank
                yhat[(level + 1, 2 * i)] += expanded[:r1]
                yhat[(level + 1, 2 * i + 1)] += expanded[r1:]

        # Leaves: expand back to point coordinates.
        for i in range(2**max_level):
            node = self.nodes[(max_level, i)]
            y[node.start : node.stop] += node.U @ yhat[(max_level, i)]

        return y[:, 0] if single else y

    # -- accounting ---------------------------------------------------------
    def memory_bytes(self) -> int:
        """Total storage (diagonal blocks, bases/transfers, couplings)."""
        total = 0
        for node in self.nodes.values():
            if node.D is not None:
                total += node.D.nbytes
            if node.U is not None:
                total += node.U.nbytes
        total += sum(s.nbytes for s in self.couplings.values())
        return total

    def __repr__(self) -> str:
        return (
            f"HSSMatrix(n={self.n}, levels={self.max_level}, leaf_size={self.leaf_size}, "
            f"max_rank={self.max_rank()}, mem={self.memory_bytes() / 1e6:.1f} MB)"
        )


def _proxy_indices(
    start: int, stop: int, n: int, n_proxy: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample far-field column indices for a cluster ``[start, stop)``.

    Half of the sample is taken from the complement indices nearest to the
    cluster (where radial kernels vary the fastest) and the rest uniformly at
    random from the remaining complement.
    """
    complement = np.concatenate([np.arange(0, start), np.arange(stop, n)])
    if complement.size <= n_proxy:
        return complement
    n_near = min(n_proxy // 2, complement.size)
    near_left = np.arange(max(0, start - n_near // 2), start)
    near_right = np.arange(stop, min(n, stop + (n_near - near_left.size)))
    near = np.concatenate([near_left, near_right])[:n_near]
    remaining = np.setdiff1d(complement, near, assume_unique=False)
    n_far = n_proxy - near.size
    if remaining.size > n_far:
        far = rng.choice(remaining, size=n_far, replace=False)
    else:
        far = remaining
    return np.sort(np.concatenate([near, far]))


def build_hss(
    kernel_matrix: KernelMatrix,
    *,
    leaf_size: int = 256,
    max_rank: Optional[int] = 100,
    tol: Optional[float] = None,
    method: str = "interpolative",
    n_proxy: Optional[int] = None,
    tree: Optional[ClusterTree] = None,
    seed: int = 0,
) -> HSSMatrix:
    """Construct a symmetric HSS matrix from a lazily assembled kernel matrix.

    Parameters
    ----------
    kernel_matrix:
        The SPD kernel matrix.
    leaf_size:
        Leaf cluster size (paper values 256/512).
    max_rank:
        Cap on the skeleton rank of every cluster (paper "max rank").
    tol:
        Optional relative tolerance for adaptive ranks (applied in addition to
        the cap).
    method:
        ``"interpolative"`` (fast, default) or ``"dense_rows"`` (exact block
        rows, O(N^2) work).
    n_proxy:
        Number of sampled far-field columns per cluster for the interpolative
        construction (default ``max(2 * max_rank, 128)``).
    tree:
        Reuse an existing cluster tree.
    seed:
        RNG seed for proxy sampling.

    Returns
    -------
    HSSMatrix
    """
    if tree is None:
        tree = build_cluster_tree(kernel_matrix.points, leaf_size=leaf_size)
    if tree.max_level < 1:
        raise ValueError(
            "HSS requires at least one level of partitioning; "
            "decrease leaf_size or increase N"
        )
    n = kernel_matrix.n
    max_level = tree.max_level
    rng = np.random.default_rng(seed)
    if n_proxy is None:
        n_proxy = max(2 * (max_rank or 64), 128)

    nodes: Dict[Tuple[int, int], HSSNode] = {}
    couplings: Dict[Tuple[int, int, int], np.ndarray] = {}
    # Row-weight matrices of the interpolative construction (G in the design
    # notes): E_i^T A[I_i, J] ~= G_i A[skeleton_i, J].
    gmat: Dict[Tuple[int, int], np.ndarray] = {}
    # Expanded bases kept only for the dense_rows construction.
    expanded: Dict[Tuple[int, int], np.ndarray] = {}

    for level in range(max_level + 1):
        for index, cnode in enumerate(tree.level_nodes(level)):
            nodes[(level, index)] = HSSNode(
                level=level, index=index, start=cnode.start, stop=cnode.stop
            )

    if method not in ("interpolative", "dense_rows"):
        raise ValueError(f"unknown construction method {method!r}")

    # ---- leaf level -------------------------------------------------------
    for i, leaf in enumerate(tree.leaves):
        node = nodes[(max_level, i)]
        rows = slice(leaf.start, leaf.stop)
        node.D = kernel_matrix.block(rows, rows)
        if method == "dense_rows":
            comp = np.concatenate([np.arange(0, leaf.start), np.arange(leaf.stop, n)])
            block_row = kernel_matrix.block(rows, comp)
            u = row_basis(block_row, rank=max_rank, tol=tol)
            node.U = u
            node.rank = u.shape[1]
            expanded[(max_level, i)] = u
        else:
            proxy = _proxy_indices(leaf.start, leaf.stop, n, n_proxy, rng)
            block_row = kernel_matrix.block(rows, proxy)
            sel, p = interpolative_rows(block_row, rank=max_rank, tol=tol)
            q, r = np.linalg.qr(p)
            node.U = q
            node.rank = q.shape[1]
            node.skeleton = np.arange(leaf.start, leaf.stop)[sel]
            gmat[(max_level, i)] = r

    # ---- internal levels (bottom-up transfers) -----------------------------
    for level in range(max_level - 1, 0, -1):
        for index, cnode in enumerate(tree.level_nodes(level)):
            node = nodes[(level, index)]
            c1 = nodes[(level + 1, 2 * index)]
            c2 = nodes[(level + 1, 2 * index + 1)]
            if method == "dense_rows":
                comp = np.concatenate(
                    [np.arange(0, cnode.start), np.arange(cnode.stop, n)]
                )
                w1 = expanded[(level + 1, 2 * index)].T @ kernel_matrix.block(
                    slice(c1.start, c1.stop), comp
                )
                w2 = expanded[(level + 1, 2 * index + 1)].T @ kernel_matrix.block(
                    slice(c2.start, c2.stop), comp
                )
                w = np.vstack([w1, w2])
                u = row_basis(w, rank=max_rank, tol=tol)
                node.U = u
                node.rank = u.shape[1]
                expanded[(level, index)] = np.vstack(
                    [
                        expanded[(level + 1, 2 * index)] @ u[: c1.rank],
                        expanded[(level + 1, 2 * index + 1)] @ u[c1.rank :],
                    ]
                )
            else:
                union_skel = np.concatenate([c1.skeleton, c2.skeleton])
                proxy = _proxy_indices(cnode.start, cnode.stop, n, n_proxy, rng)
                b = kernel_matrix.block(union_skel, proxy)
                sel, p = interpolative_rows(b, rank=max_rank, tol=tol)
                g_children = np.zeros((c1.rank + c2.rank, c1.rank + c2.rank))
                g_children[: c1.rank, : c1.rank] = gmat[(level + 1, 2 * index)]
                g_children[c1.rank :, c1.rank :] = gmat[(level + 1, 2 * index + 1)]
                t = g_children @ p
                q, r = np.linalg.qr(t)
                node.U = q
                node.rank = q.shape[1]
                node.skeleton = union_skel[sel]
                gmat[(level, index)] = r

    # ---- sibling couplings --------------------------------------------------
    for level in range(1, max_level + 1):
        for k in range(2 ** (level - 1)):
            j, i = 2 * k, 2 * k + 1
            ni = nodes[(level, i)]
            nj = nodes[(level, j)]
            if method == "dense_rows":
                block = kernel_matrix.block(slice(ni.start, ni.stop), slice(nj.start, nj.stop))
                s = expanded[(level, i)].T @ block @ expanded[(level, j)]
            else:
                kss = kernel_matrix.block(ni.skeleton, nj.skeleton)
                s = gmat[(level, i)] @ kss @ gmat[(level, j)].T
            couplings[(level, i, j)] = s

    return HSSMatrix(tree=tree, nodes=nodes, couplings=couplings)


@dataclass
class HSSStructure:
    """Structural (rank/size only) description of an HSS matrix.

    Used by the task-graph builders and the distributed-machine simulator to
    generate the HSS-ULV task DAG for paper-scale problem sizes without doing
    any numerical work.

    Attributes
    ----------
    n:
        Matrix dimension.
    leaf_size:
        Leaf cluster size.
    max_level:
        Depth of the leaf level.
    ranks:
        Mapping ``(level, index) -> skeleton rank``.
    """

    n: int
    leaf_size: int
    max_level: int
    ranks: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @classmethod
    def from_matrix(cls, hss: HSSMatrix) -> "HSSStructure":
        """Extract the structure of a constructed :class:`HSSMatrix`."""
        ranks = {
            key: node.rank for key, node in hss.nodes.items() if key[0] > 0
        }
        return cls(
            n=hss.n, leaf_size=hss.leaf_size, max_level=hss.max_level, ranks=ranks
        )

    @classmethod
    def synthetic(cls, n: int, leaf_size: int, rank: int) -> "HSSStructure":
        """Uniform-rank structure for a problem of size ``n`` (simulation input).

        The number of levels is chosen so the leaf blocks have size
        ``leaf_size`` (``n`` must be ``leaf_size * 2**L`` for some ``L >= 1``).
        """
        if n < 2 * leaf_size:
            raise ValueError("need at least two leaf blocks")
        max_level = 0
        size = n
        while size > leaf_size:
            if size % 2 != 0:
                raise ValueError("n must be leaf_size * 2**L")
            size //= 2
            max_level += 1
        if size != leaf_size:
            raise ValueError("n must be leaf_size * 2**L")
        rank = min(rank, leaf_size)
        ranks: Dict[Tuple[int, int], int] = {}
        for level in range(1, max_level + 1):
            for index in range(2**level):
                if level == max_level:
                    ranks[(level, index)] = min(rank, leaf_size)
                else:
                    ranks[(level, index)] = min(rank, 2 * rank)
        return cls(n=n, leaf_size=leaf_size, max_level=max_level, ranks=ranks)

    def rank(self, level: int, index: int) -> int:
        """Skeleton rank of node ``(level, index)``."""
        return self.ranks[(level, index)]

    def block_size(self, level: int, index: int) -> int:
        """ULV working-block size of node ``(level, index)`` (see HSSMatrix.block_size)."""
        if level == self.max_level:
            base = self.n // (2**self.max_level)
            return base
        return self.rank(level + 1, 2 * index) + self.rank(level + 1, 2 * index + 1)

    def num_blocks(self, level: int) -> int:
        return 2**level
