"""BLR (Block Low-Rank) matrices -- the format used by LORAPO.

A BLR matrix partitions the dense matrix into a single level of uniform tiles
(Fig. 1 without shared bases): diagonal tiles stay dense, every off-diagonal
admissible tile is compressed *individually* as ``U_ij @ V_ij^T``.  With
strong admissibility some near-diagonal off-diagonal tiles may stay dense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.geometry.admissibility import Admissibility, WeakAdmissibility
from repro.geometry.cluster_tree import ClusterTree, build_cluster_tree
from repro.kernels.assembly import KernelMatrix
from repro.lowrank.block import LowRankBlock
from repro.lowrank.svd import compress_svd

__all__ = ["BLRMatrix", "build_blr"]

Block = Union[np.ndarray, LowRankBlock]


@dataclass
class BLRMatrix:
    """A single-level block low-rank matrix.

    Attributes
    ----------
    tree:
        The cluster tree whose *leaf level* defines the tile partition.
    diag:
        Dense diagonal tiles keyed by block index.
    lowrank:
        Compressed off-diagonal tiles keyed by ``(i, j)``.
    dense_offdiag:
        Inadmissible off-diagonal tiles stored densely, keyed by ``(i, j)``.
    """

    tree: ClusterTree
    diag: Dict[int, np.ndarray]
    lowrank: Dict[Tuple[int, int], LowRankBlock]
    dense_offdiag: Dict[Tuple[int, int], np.ndarray]

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.tree.n

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    @property
    def nblocks(self) -> int:
        """Number of tile rows/columns."""
        return len(self.tree.leaves)

    def block_range(self, i: int) -> slice:
        """Global index range of tile row/column ``i``."""
        leaf = self.tree.leaves[i]
        return slice(leaf.start, leaf.stop)

    def block(self, i: int, j: int) -> Block:
        """Return tile ``(i, j)`` (dense array or :class:`LowRankBlock`)."""
        if i == j:
            return self.diag[i]
        if (i, j) in self.lowrank:
            return self.lowrank[(i, j)]
        if (i, j) in self.dense_offdiag:
            return self.dense_offdiag[(i, j)]
        raise KeyError(f"no block stored at ({i}, {j})")

    def is_lowrank(self, i: int, j: int) -> bool:
        return (i, j) in self.lowrank

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Matrix-vector product using the compressed representation."""
        x = np.asarray(x, dtype=np.float64)
        y = np.zeros(self.n)
        nb = self.nblocks
        for i in range(nb):
            ri = self.block_range(i)
            for j in range(nb):
                cj = self.block_range(j)
                if i == j:
                    y[ri] += self.diag[i] @ x[cj]
                elif (i, j) in self.lowrank:
                    y[ri] += self.lowrank[(i, j)].matvec(x[cj])
                else:
                    y[ri] += self.dense_offdiag[(i, j)] @ x[cj]
        return y

    def to_dense(self) -> np.ndarray:
        """Reconstruct the (approximated) dense matrix."""
        out = np.zeros((self.n, self.n))
        nb = self.nblocks
        for i in range(nb):
            ri = self.block_range(i)
            for j in range(nb):
                cj = self.block_range(j)
                if i == j:
                    out[ri, cj] = self.diag[i]
                elif (i, j) in self.lowrank:
                    out[ri, cj] = self.lowrank[(i, j)].to_dense()
                else:
                    out[ri, cj] = self.dense_offdiag[(i, j)]
        return out

    def memory_bytes(self) -> int:
        """Total storage in bytes (factors + dense tiles)."""
        total = sum(d.nbytes for d in self.diag.values())
        total += sum(lr.nbytes for lr in self.lowrank.values())
        total += sum(d.nbytes for d in self.dense_offdiag.values())
        return total

    def max_rank(self) -> int:
        """Largest tile rank in the compressed off-diagonal."""
        if not self.lowrank:
            return 0
        return max(lr.rank for lr in self.lowrank.values())

    def copy(self) -> "BLRMatrix":
        return BLRMatrix(
            tree=self.tree,
            diag={i: d.copy() for i, d in self.diag.items()},
            lowrank={k: lr.copy() for k, lr in self.lowrank.items()},
            dense_offdiag={k: d.copy() for k, d in self.dense_offdiag.items()},
        )

    def __repr__(self) -> str:
        return (
            f"BLRMatrix(n={self.n}, nblocks={self.nblocks}, "
            f"max_rank={self.max_rank()}, mem={self.memory_bytes() / 1e6:.1f} MB)"
        )


def build_blr(
    kernel_matrix: KernelMatrix,
    *,
    leaf_size: int = 256,
    max_rank: Optional[int] = None,
    tol: Optional[float] = 1e-8,
    admissibility: Optional[Admissibility] = None,
    tree: Optional[ClusterTree] = None,
) -> BLRMatrix:
    """Construct a BLR matrix from a lazily assembled kernel matrix.

    Parameters
    ----------
    kernel_matrix:
        The SPD kernel matrix to compress.
    leaf_size:
        Tile size (the paper's LORAPO runs use 2048/4096).
    max_rank:
        Hard cap on tile ranks (LORAPO's "max rank").
    tol:
        Relative compression tolerance; LORAPO compresses adaptively to 1e-8.
    admissibility:
        Which off-diagonal tiles may be compressed (default: weak -- all).
    tree:
        Reuse an existing cluster tree instead of building one.
    """
    if tree is None:
        tree = build_cluster_tree(kernel_matrix.points, leaf_size=leaf_size)
    adm = admissibility if admissibility is not None else WeakAdmissibility()
    leaves = tree.leaves
    nb = len(leaves)

    diag: Dict[int, np.ndarray] = {}
    lowrank: Dict[Tuple[int, int], LowRankBlock] = {}
    dense_offdiag: Dict[Tuple[int, int], np.ndarray] = {}

    for i, li in enumerate(leaves):
        diag[i] = kernel_matrix.block(slice(li.start, li.stop), slice(li.start, li.stop))
        for j, lj in enumerate(leaves):
            if i == j:
                continue
            block = kernel_matrix.block(slice(li.start, li.stop), slice(lj.start, lj.stop))
            if adm(li, lj):
                lowrank[(i, j)] = compress_svd(block, rank=max_rank, tol=tol)
            else:
                dense_offdiag[(i, j)] = block

    return BLRMatrix(tree=tree, diag=diag, lowrank=lowrank, dense_offdiag=dense_offdiag)
