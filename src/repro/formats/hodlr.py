"""HODLR (Hierarchically Off-Diagonal Low-Rank) matrices.

The paper's related-work survey (Table 1, Sec. 2) contrasts the HSS format
with HODLR: both are weak-admissibility hierarchical formats, but HODLR does
*not* share bases between levels -- every off-diagonal block of the recursive
2x2 partition carries its own low-rank factorisation.  The format is provided
for completeness (and for the memory/complexity comparisons in the examples);
its recursive structure makes the contrast with the HSS nested bases explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.geometry.cluster_tree import ClusterNode, ClusterTree, build_cluster_tree
from repro.kernels.assembly import KernelMatrix
from repro.lowrank.aca import compress_aca
from repro.lowrank.block import LowRankBlock
from repro.lowrank.rsvd import compress_rsvd
from repro.lowrank.svd import compress_svd

__all__ = ["HODLRNode", "HODLRMatrix", "build_hodlr"]


@dataclass
class HODLRNode:
    """One node of the recursive HODLR partition.

    Either a leaf holding a dense diagonal block, or an internal node holding
    the two low-rank off-diagonal couplings between its children plus the two
    child nodes.
    """

    start: int
    stop: int
    dense: Optional[np.ndarray] = None
    upper: Optional[LowRankBlock] = None  # block (left child rows, right child cols)
    lower: Optional[LowRankBlock] = None  # block (right child rows, left child cols)
    left: Optional["HODLRNode"] = None
    right: Optional["HODLRNode"] = None

    @property
    def size(self) -> int:
        return self.stop - self.start

    @property
    def is_leaf(self) -> bool:
        return self.dense is not None


class HODLRMatrix:
    """A symmetric HODLR matrix over a complete binary cluster tree."""

    def __init__(self, root: HODLRNode, tree: ClusterTree) -> None:
        self.root = root
        self.tree = tree

    @property
    def n(self) -> int:
        return self.root.size

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    # -- linear algebra -----------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Matrix-vector product in O(N r log N)."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        xm = x.reshape(self.n, -1)
        y = np.zeros_like(xm)

        def recurse(node: HODLRNode) -> None:
            if node.is_leaf:
                y[node.start : node.stop] += node.dense @ xm[node.start : node.stop]
                return
            left, right = node.left, node.right
            y[left.start : left.stop] += node.upper.matvec(xm[right.start : right.stop])
            y[right.start : right.stop] += node.lower.matvec(xm[left.start : left.stop])
            recurse(left)
            recurse(right)

        recurse(self.root)
        return y[:, 0] if single else y

    def to_dense(self) -> np.ndarray:
        """Reconstruct the (approximated) dense matrix."""
        out = np.zeros((self.n, self.n))

        def recurse(node: HODLRNode) -> None:
            if node.is_leaf:
                out[node.start : node.stop, node.start : node.stop] = node.dense
                return
            left, right = node.left, node.right
            out[left.start : left.stop, right.start : right.stop] = node.upper.to_dense()
            out[right.start : right.stop, left.start : left.stop] = node.lower.to_dense()
            recurse(left)
            recurse(right)

        recurse(self.root)
        return out

    # -- accounting -----------------------------------------------------------
    def memory_bytes(self) -> int:
        total = 0

        def recurse(node: HODLRNode) -> None:
            nonlocal total
            if node.is_leaf:
                total += node.dense.nbytes
                return
            total += node.upper.nbytes + node.lower.nbytes
            recurse(node.left)
            recurse(node.right)

        recurse(self.root)
        return total

    def max_rank(self) -> int:
        best = 0

        def recurse(node: HODLRNode) -> None:
            nonlocal best
            if node.is_leaf:
                return
            best = max(best, node.upper.rank, node.lower.rank)
            recurse(node.left)
            recurse(node.right)

        recurse(self.root)
        return best

    def num_levels(self) -> int:
        return self.tree.max_level

    def __repr__(self) -> str:
        return (
            f"HODLRMatrix(n={self.n}, levels={self.num_levels()}, "
            f"max_rank={self.max_rank()}, mem={self.memory_bytes() / 1e6:.1f} MB)"
        )


def build_hodlr(
    kernel_matrix: KernelMatrix,
    *,
    leaf_size: int = 256,
    max_rank: Optional[int] = 100,
    tol: Optional[float] = None,
    method: str = "svd",
    tree: Optional[ClusterTree] = None,
    seed: int = 0,
) -> HODLRMatrix:
    """Construct a symmetric HODLR matrix from a lazily assembled kernel matrix.

    Parameters
    ----------
    kernel_matrix:
        The SPD kernel matrix to compress.
    leaf_size, max_rank, tol:
        Partition and compression parameters (each off-diagonal block is
        compressed independently -- no shared bases).
    method:
        ``"svd"`` (exact truncated SVD of each block), ``"rsvd"`` (randomized
        SVD, cheaper for large off-diagonal blocks) or ``"aca"`` (adaptive
        cross approximation, touches only a few rows/columns per block).
    tree:
        Reuse an existing cluster tree.
    seed:
        RNG seed for the randomized compression.
    """
    if tree is None:
        tree = build_cluster_tree(kernel_matrix.points, leaf_size=leaf_size)
    if method not in ("svd", "rsvd", "aca"):
        raise ValueError(f"unknown compression method {method!r}")

    def compress(rows: slice, cols: slice) -> LowRankBlock:
        block = kernel_matrix.block(rows, cols)
        if method == "svd":
            return compress_svd(block, rank=max_rank, tol=tol)
        if method == "aca":
            aca_tol = tol if tol is not None else 1e-10
            return compress_aca(block, tol=aca_tol, max_rank=max_rank, seed=seed)
        return compress_rsvd(block, max_rank or min(block.shape), tol=tol, seed=seed)

    def recurse(cnode: ClusterNode) -> HODLRNode:
        if cnode.is_leaf:
            rows = slice(cnode.start, cnode.stop)
            return HODLRNode(start=cnode.start, stop=cnode.stop, dense=kernel_matrix.block(rows, rows))
        left_c, right_c = cnode.children
        upper = compress(slice(left_c.start, left_c.stop), slice(right_c.start, right_c.stop))
        lower = LowRankBlock(upper.V.copy(), upper.U.copy())  # symmetry: A_21 = A_12^T
        return HODLRNode(
            start=cnode.start,
            stop=cnode.stop,
            upper=upper,
            lower=lower,
            left=recurse(left_c),
            right=recurse(right_c),
        )

    return HODLRMatrix(recurse(tree.root), tree)
