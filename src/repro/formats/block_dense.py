"""Block (tile) view of a dense matrix.

This is the format used by the dense tile Cholesky baselines (DPLASMA /
SLATE rows of Table 1) and the starting point of the BLR construction in
Fig. 1 of the paper.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["BlockDenseMatrix"]


class BlockDenseMatrix:
    """A dense matrix partitioned into a regular grid of tiles.

    Parameters
    ----------
    a:
        The dense matrix (``n x n``).
    block_size:
        Tile size; the last tile of a row/column may be smaller when ``n`` is
        not a multiple of ``block_size``.
    """

    def __init__(self, a: np.ndarray, block_size: int) -> None:
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("BlockDenseMatrix requires a square matrix")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.n = a.shape[0]
        self.block_size = block_size
        self.offsets: List[int] = list(range(0, self.n, block_size)) + [self.n]
        self.nblocks = len(self.offsets) - 1
        self.blocks: dict[tuple[int, int], np.ndarray] = {}
        for i in range(self.nblocks):
            for j in range(self.nblocks):
                ri = slice(self.offsets[i], self.offsets[i + 1])
                cj = slice(self.offsets[j], self.offsets[j + 1])
                self.blocks[(i, j)] = a[ri, cj].copy()

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def block(self, i: int, j: int) -> np.ndarray:
        """Tile ``(i, j)``."""
        return self.blocks[(i, j)]

    def set_block(self, i: int, j: int, value: np.ndarray) -> None:
        """Replace tile ``(i, j)``."""
        if value.shape != self.blocks[(i, j)].shape:
            raise ValueError(
                f"tile ({i},{j}) has shape {self.blocks[(i, j)].shape}, got {value.shape}"
            )
        self.blocks[(i, j)] = np.asarray(value, dtype=np.float64)

    def block_shape(self, i: int, j: int) -> tuple[int, int]:
        return self.blocks[(i, j)].shape

    def to_dense(self) -> np.ndarray:
        """Reassemble the dense matrix from the tiles."""
        out = np.empty((self.n, self.n))
        for i in range(self.nblocks):
            for j in range(self.nblocks):
                ri = slice(self.offsets[i], self.offsets[i + 1])
                cj = slice(self.offsets[j], self.offsets[j + 1])
                out[ri, cj] = self.blocks[(i, j)]
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Tile-wise matrix-vector product."""
        x = np.asarray(x, dtype=np.float64)
        y = np.zeros(self.n)
        for i in range(self.nblocks):
            ri = slice(self.offsets[i], self.offsets[i + 1])
            for j in range(self.nblocks):
                cj = slice(self.offsets[j], self.offsets[j + 1])
                y[ri] += self.blocks[(i, j)] @ x[cj]
        return y

    def memory_bytes(self) -> int:
        """Total storage of all tiles in bytes."""
        return sum(b.nbytes for b in self.blocks.values())

    def __repr__(self) -> str:
        return f"BlockDenseMatrix(n={self.n}, block_size={self.block_size}, nblocks={self.nblocks})"
