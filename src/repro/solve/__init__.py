"""Task-graph ULV solve subsystem (factorize once, solve many).

Mirrors the factorization architecture of :mod:`repro.core`: the ULV
forward/root/backward solve phases for HSS, BLR2 and HODLR are recorded as
DTD ``insert_task`` graphs on the shared pipeline scaffold
(:mod:`repro.pipeline.solve`), so one recorded graph executes on all three
backends (sequential, thread-parallel, distributed multi-process)
bit-identically to the sequential reference solves.  Multi-RHS blocks are
split into independent column panels, and one optional step of iterative
refinement recovers accuracy under loose compression tolerances.

The batching/caching :class:`~repro.service.SolverService` layer sits on top
of these drivers.
"""

from repro.solve.common import apply_operator, column_panels
from repro.solve.blr2_solve_dtd import blr2_ulv_solve_dtd
from repro.solve.hodlr_solve_dtd import hodlr_ulv_solve_dtd
from repro.solve.hss_solve_dtd import hss_ulv_solve_dtd

__all__ = [
    "apply_operator",
    "column_panels",
    "blr2_ulv_solve_dtd",
    "hodlr_ulv_solve_dtd",
    "hss_ulv_solve_dtd",
]
