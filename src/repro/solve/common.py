"""Shared plumbing of the task-graph solve subsystem.

The implementations moved to :mod:`repro.pipeline.panels` when the
format-agnostic pipeline layer was introduced (the graph-builder scaffold
needs them without importing the solve drivers built on top of it); this
module re-exports them under their original import path.
"""

from __future__ import annotations

from repro.pipeline.panels import (
    apply_operator,
    column_panels,
    handle_namespace,
    refine_once,
)

__all__ = ["column_panels", "apply_operator", "handle_namespace", "refine_once"]
