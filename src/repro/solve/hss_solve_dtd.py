"""HSS-ULV solve expressed as DTD runtime tasks (factorize once, solve many).

The solve counterpart of :mod:`repro.core.hss_ulv_dtd`: the three phases of
Eq. 17 -- forward elimination down the redundant unknowns, the small dense
root solve, and back-substitution -- are recorded by
:class:`~repro.pipeline.solve.HSSULVSolveBuilder` on the shared pipeline
scaffold.  The runtime derives the dependency DAG from the declared accesses,
so the same recorded graph executes on all three backends (sequential,
thread-parallel, distributed multi-process), every one bit-identical to the
sequential reference :meth:`~repro.core.hss_ulv.HSSULVFactor.solve`.

Multi-RHS solves are blocked into column panels (``panel_size``), each panel
carrying its own independent forward/root/backward task chain; ``refine=True``
adds one step of iterative refinement through a second recorded graph on the
same backend.  Backend dispatch lives in
:meth:`repro.pipeline.policy.ExecutionPolicy.execute`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.hss_ulv import HSSULVFactor
from repro.distribution.strategies import DistributionStrategy
from repro.pipeline.solve import HSSULVSolveBuilder, solve_through_builder
from repro.runtime.dtd import DTDRuntime

__all__ = ["hss_ulv_solve_dtd"]


def hss_ulv_solve_dtd(
    factor: HSSULVFactor,
    b: np.ndarray,
    *,
    runtime: Optional[DTDRuntime] = None,
    execution: Optional[str] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    n_workers: int = 4,
    panel_size: Optional[int] = None,
    refine: bool = False,
    matvec=None,
) -> Tuple[np.ndarray, DTDRuntime]:
    """Solve ``A x = b`` with an HSS-ULV factor through the DTD runtime.

    Parameters
    ----------
    factor:
        A computed :class:`~repro.core.hss_ulv.HSSULVFactor` (any execution
        path -- all produce identical factors).
    b:
        Right-hand side: a vector of length ``n`` or a matrix of shape
        ``(n, k)``.
    runtime:
        An existing runtime to insert into; mutually exclusive with
        ``execution``.
    execution:
        ``"immediate"`` (default; bodies run at insertion), ``"deferred"``
        (record then run sequentially), ``"parallel"`` (thread pool with
        ``n_workers`` threads) or ``"distributed"`` (``nodes`` forked worker
        processes with owner-computes placement and accounted transfers).
    nodes / distribution:
        Process count and placement strategy for the runtime paths (default:
        the paper's row-cyclic distribution).
    panel_size:
        Columns per RHS panel; ``None`` keeps all ``k`` columns in one panel
        (bit-identical to the sequential reference).
    refine:
        Add one iterative-refinement step (a second recorded solve of the
        residual on the same backend).
    matvec:
        Operator used to form the refinement residual (default: the
        factorized HSS matrix itself).

    Returns
    -------
    (x, runtime):
        The solution (same shape as ``b``) and the runtime holding the
        recorded task graph of the primary solve.  After
        ``execution="distributed"``, ``runtime.last_distributed_report``
        holds the measured communication ledger.
    """
    return solve_through_builder(
        HSSULVSolveBuilder,
        factor,
        b,
        runtime=runtime,
        execution=execution,
        nodes=nodes,
        distribution=distribution,
        n_workers=n_workers,
        panel_size=panel_size,
        refine=refine,
        matvec=matvec,
        default_op=factor.hss,
    )
