"""HSS-ULV solve expressed as DTD runtime tasks (factorize once, solve many).

The solve counterpart of :mod:`repro.core.hss_ulv_dtd`: the three phases of
Eq. 17 -- forward elimination down the redundant unknowns, the small dense
root solve, and back-substitution -- are inserted as ``insert_task`` calls
that *read* the immutable factor pieces and read/write per-panel right-hand
side blocks.  The runtime derives the dependency DAG from those accesses, so
the same recorded graph executes on all three backends:

* sequentially (``immediate`` / ``deferred``),
* out-of-order on a thread pool (``parallel``),
* across forked worker processes with owner-computes placement and accounted
  data transfers (``distributed``),

and every backend produces solutions bit-identical to the sequential
reference :meth:`~repro.core.hss_ulv.HSSULVFactor.solve`.

Multi-RHS solves are blocked: a ``b`` of shape ``(n, k)`` is split into
column panels (``panel_size``), each panel carrying its own independent
forward/root/backward task chain, so one panel's back-substitution overlaps
with another panel's forward elimination.  With the default single panel the
task bodies perform exactly the BLAS calls of the reference, which is what
makes bit-identity hold for any ``k``.

``refine=True`` adds one step of iterative refinement: after the primary
solve, the residual ``r = b - A x`` (against ``matvec``, by default the
factorized HSS operator) is solved through a second recorded graph on the
same backend and the correction is added.  Refining against the *exact*
operator (e.g. ``KernelMatrix.matvec``, as the :class:`~repro.api.HSSSolver`
facade does) recovers accuracy lost to loose compression tolerances.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.linalg

from repro.core.hss_ulv import HSSULVFactor
from repro.core.rhs import check_rhs_shape
from repro.distribution.strategies import DistributionStrategy, RowCyclicDistribution
from repro.runtime.dtd import DTDRuntime, resolve_execution
from repro.runtime.flops import (
    flops_solve_backward,
    flops_solve_forward,
    flops_solve_root,
)
from repro.runtime.task import AccessMode
from repro.solve.common import column_panels, handle_namespace, refine_once

__all__ = ["hss_ulv_solve_dtd"]


def hss_ulv_solve_dtd(
    factor: HSSULVFactor,
    b: np.ndarray,
    *,
    runtime: Optional[DTDRuntime] = None,
    execution: Optional[str] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    n_workers: int = 4,
    panel_size: Optional[int] = None,
    refine: bool = False,
    matvec=None,
) -> Tuple[np.ndarray, DTDRuntime]:
    """Solve ``A x = b`` with an HSS-ULV factor through the DTD runtime.

    Parameters
    ----------
    factor:
        A computed :class:`~repro.core.hss_ulv.HSSULVFactor` (any execution
        path -- all produce identical factors).
    b:
        Right-hand side: a vector of length ``n`` or a matrix of shape
        ``(n, k)``.
    runtime:
        An existing runtime to insert into; mutually exclusive with
        ``execution``.
    execution:
        ``"immediate"`` (default; bodies run at insertion), ``"deferred"``
        (record then run sequentially), ``"parallel"`` (thread pool with
        ``n_workers`` threads) or ``"distributed"`` (``nodes`` forked worker
        processes with owner-computes placement and accounted transfers).
    nodes / distribution:
        Process count and placement strategy for the runtime paths (default:
        the paper's row-cyclic distribution).
    panel_size:
        Columns per RHS panel; ``None`` keeps all ``k`` columns in one panel
        (bit-identical to the sequential reference).
    refine:
        Add one iterative-refinement step (a second recorded solve of the
        residual on the same backend).
    matvec:
        Operator used to form the refinement residual (default: the
        factorized HSS matrix itself).

    Returns
    -------
    (x, runtime):
        The solution (same shape as ``b``) and the runtime holding the
        recorded task graph of the primary solve.  After
        ``execution="distributed"``, ``runtime.last_distributed_report``
        holds the measured communication ledger.
    """
    # Normalize without copying: the driver only reads bm (the leaf seeds are
    # slice copies), so the validate_rhs working copy would be pure overhead.
    check_rhs_shape(b, factor.hss.n)
    arr = np.asarray(b, dtype=np.float64)
    single = arr.ndim == 1
    bm = arr.reshape(factor.hss.n, -1)
    rt, mode = resolve_execution(runtime, execution)
    x = _record_and_run(
        factor, bm, rt, mode,
        nodes=nodes, distribution=distribution,
        n_workers=n_workers, panel_size=panel_size,
    )
    if refine:
        op = matvec if matvec is not None else factor.hss
        x = refine_once(
            lambda r: _record_and_run(
                factor, r, DTDRuntime(execution=rt.execution), mode,
                nodes=nodes, distribution=distribution,
                n_workers=n_workers, panel_size=panel_size,
            ),
            op, bm, x,
        )
    return (x[:, 0] if single else x), rt


def _record_and_run(
    factor: HSSULVFactor,
    bm: np.ndarray,
    rt: DTDRuntime,
    mode: str,
    *,
    nodes: int,
    distribution: Optional[DistributionStrategy],
    n_workers: int,
    panel_size: Optional[int],
) -> np.ndarray:
    """Record the forward/root/backward graph for ``bm`` and execute it."""
    hss = factor.hss
    max_level = hss.max_level
    panels = column_panels(bm.shape[1], panel_size)
    # Unique suffix so repeated solves can record into one shared runtime.
    ns = handle_namespace(rt)

    # Mutable per-panel stores the task bodies operate on.
    work: Dict[Tuple[int, int, int], np.ndarray] = {}
    zs: Dict[Tuple[int, int, int], np.ndarray] = {}
    bs: Dict[Tuple[int, int, int], np.ndarray] = {}
    sol: Dict[Tuple[int, int, int], np.ndarray] = {}

    # Immutable factor handles: read-only inputs of every solve task.  They
    # have no writer, so they never cross a process boundary (forked workers
    # inherit the factors), but declaring them keeps the recorded graph an
    # honest description of the data each task touches.
    fac_handle: Dict[Tuple[int, int], object] = {}
    for (level, i), nf in sorted(factor.node_factors.items()):
        fac_handle[(level, i)] = rt.new_handle(
            f"ULV[{level};{i}]{ns}",
            nbytes=int(nf.U.nbytes + nf.partial.L_rr.nbytes + nf.partial.L_sr.nbytes),
            level=level, row=i, max_level=max_level,
        )
    root_handle = rt.new_handle(
        f"ULV_ROOT{ns}", nbytes=int(factor.root_chol.nbytes),
        level=0, row=0, max_level=max_level,
    )

    # Per-panel RHS/solution handles, bound to the stores so the distributed
    # backend can move their values between processes.
    work_h: Dict[Tuple[int, int, int], object] = {}
    z_h: Dict[Tuple[int, int, int], object] = {}
    s_h: Dict[Tuple[int, int, int], object] = {}
    sol_h: Dict[Tuple[int, int, int], object] = {}
    for p, cols in enumerate(panels):
        pw = cols.stop - cols.start
        for level in range(max_level, -1, -1):
            for i in range(2**level):
                if level > 0:
                    nf = factor.node_factors[(level, i)]
                    m, r = nf.block_size, nf.rank
                else:
                    m = r = factor.root_chol.shape[0]
                work_h[(p, level, i)] = rt.new_handle(
                    f"B[{level};{i};p{p}]{ns}", nbytes=8 * m * pw,
                    level=level, row=i, max_level=max_level, panel=p,
                ).bind_item(work, (p, level, i))
                sol_h[(p, level, i)] = rt.new_handle(
                    f"X[{level};{i};p{p}]{ns}", nbytes=8 * m * pw,
                    level=level, row=i, max_level=max_level, panel=p,
                ).bind_item(sol, (p, level, i))
                if level > 0:
                    z_h[(p, level, i)] = rt.new_handle(
                        f"Z[{level};{i};p{p}]{ns}", nbytes=8 * (m - r) * pw,
                        level=level, row=i, max_level=max_level, panel=p,
                    ).bind_item(zs, (p, level, i))
                    s_h[(p, level, i)] = rt.new_handle(
                        f"BS[{level};{i};p{p}]{ns}", nbytes=8 * r * pw,
                        level=level, row=i, max_level=max_level, panel=p,
                    ).bind_item(bs, (p, level, i))

    strategy = (
        distribution if distribution is not None
        else RowCyclicDistribution(nodes, max_level=max_level)
    )
    strategy.assign(rt.handles)

    # Seed the leaf RHS blocks (inherited by forked workers).
    for p, cols in enumerate(panels):
        for i in range(2**max_level):
            node = hss.node(max_level, i)
            work[(p, max_level, i)] = bm[node.start : node.stop, cols].copy()

    for p, cols in enumerate(panels):
        pw = cols.stop - cols.start

        # Forward pass: rotate, eliminate redundant unknowns, merge upward.
        for level in range(max_level, 0, -1):
            phase = max_level - level
            for i in range(2**level):
                nf = factor.node_factors[(level, i)]

                def forward(p=p, level=level, i=i, nf=nf) -> None:
                    bhat = nf.U.T @ work[(p, level, i)]
                    nr = nf.redundant_size
                    br, bsi = bhat[:nr], bhat[nr:]
                    if nr > 0:
                        z = scipy.linalg.solve_triangular(nf.partial.L_rr, br, lower=True)
                        bsi = bsi - nf.partial.L_sr @ z
                    else:
                        z = br
                    zs[(p, level, i)] = z
                    bs[(p, level, i)] = bsi

                rt.insert_task(
                    forward,
                    [
                        (fac_handle[(level, i)], AccessMode.READ),
                        (work_h[(p, level, i)], AccessMode.READ),
                        (z_h[(p, level, i)], AccessMode.WRITE),
                        (s_h[(p, level, i)], AccessMode.WRITE),
                    ],
                    name=f"FWD[{level};{i};p{p}]",
                    kind="SOLVE_FWD",
                    flops=flops_solve_forward(nf.block_size, nf.rank, pw),
                    phase=phase,
                )
            for k in range(2 ** (level - 1)):

                def merge_rhs(p=p, level=level, k=k) -> None:
                    work[(p, level - 1, k)] = np.vstack(
                        [bs[(p, level, 2 * k)], bs[(p, level, 2 * k + 1)]]
                    )

                rt.insert_task(
                    merge_rhs,
                    [
                        (s_h[(p, level, 2 * k)], AccessMode.READ),
                        (s_h[(p, level, 2 * k + 1)], AccessMode.READ),
                        (work_h[(p, level - 1, k)], AccessMode.WRITE),
                    ],
                    name=f"MERGE_RHS[{level - 1};{k};p{p}]",
                    kind="MERGE_RHS",
                    flops=0.0,
                    phase=phase,
                )

        # Root dense solve.
        def root_solve(p=p) -> None:
            y0 = scipy.linalg.solve_triangular(factor.root_chol, work[(p, 0, 0)], lower=True)
            sol[(p, 0, 0)] = scipy.linalg.solve_triangular(factor.root_chol.T, y0, lower=False)

        rt.insert_task(
            root_solve,
            [
                (root_handle, AccessMode.READ),
                (work_h[(p, 0, 0)], AccessMode.READ),
                (sol_h[(p, 0, 0)], AccessMode.WRITE),
            ],
            name=f"ROOT_SOLVE[p{p}]",
            kind="SOLVE_ROOT",
            flops=flops_solve_root(factor.root_chol.shape[0], pw),
            phase=max_level,
        )

        # Backward pass: un-merge, back-substitute, rotate back.
        for level in range(1, max_level + 1):
            phase = max_level + level
            for i in range(2**level):
                nf = factor.node_factors[(level, i)]
                r_left = factor.node_factors[(level, 2 * (i // 2))].rank

                def backward(p=p, level=level, i=i, nf=nf, r_left=r_left) -> None:
                    parent = sol[(p, level - 1, i // 2)]
                    ys = parent[:r_left] if i % 2 == 0 else parent[r_left:]
                    nr = nf.redundant_size
                    if nr > 0:
                        rhs = zs[(p, level, i)] - nf.partial.L_sr.T @ ys
                        yr = scipy.linalg.solve_triangular(nf.partial.L_rr.T, rhs, lower=False)
                    else:
                        yr = zs[(p, level, i)][:0]
                    sol[(p, level, i)] = nf.U @ np.vstack([yr, ys])

                rt.insert_task(
                    backward,
                    [
                        (fac_handle[(level, i)], AccessMode.READ),
                        (sol_h[(p, level - 1, i // 2)], AccessMode.READ),
                        (z_h[(p, level, i)], AccessMode.READ),
                        (sol_h[(p, level, i)], AccessMode.WRITE),
                    ],
                    name=f"BWD[{level};{i};p{p}]",
                    kind="SOLVE_BWD",
                    flops=flops_solve_backward(nf.block_size, nf.rank, pw),
                    phase=phase,
                )

    if mode == "distributed":
        leaf_keys = [
            (p, max_level, i) for p in range(len(panels)) for i in range(2**max_level)
        ]

        def _collect():
            # Runs inside each worker: ship back the leaf solution blocks its
            # local BWD tasks produced (leaf SOL handles have no consumers, so
            # an entry present in the store was computed locally).
            return {key: sol[key] for key in leaf_keys if key in sol}

        if rt.num_tasks:
            report = rt.run_distributed(nodes=nodes, strategy=strategy, collect=_collect)
            for frag in report.fragments:
                sol.update(frag)
    elif mode == "parallel":
        rt.run_parallel(n_workers=n_workers)
    else:
        rt.run()

    x = np.empty_like(bm)
    for p, cols in enumerate(panels):
        for i in range(2**max_level):
            node = hss.node(max_level, i)
            x[node.start : node.stop, cols] = sol[(p, max_level, i)]
    return x
