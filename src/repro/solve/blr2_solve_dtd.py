"""BLR2-ULV solve expressed as DTD runtime tasks.

The single-level counterpart of :mod:`repro.solve.hss_solve_dtd` (Eq. 15):
per block row, one forward-elimination task rotates the RHS block and solves
the redundant triangle; one root task solves the permuted skeleton system
against the merged Cholesky factor; and per block row, one back-substitution
task recovers and rotates back the local solution.  Dependencies are derived
from the declared accesses, so the same recorded graph executes sequentially,
on the thread-pool executor, or on the distributed multi-process backend --
all bit-identical to the sequential reference
:meth:`~repro.core.blr2_ulv.BLR2ULVFactor.solve`.

Multi-RHS blocking, iterative refinement and the backend selection mirror the
HSS driver; see :func:`repro.solve.hss_solve_dtd.hss_ulv_solve_dtd`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.linalg

from repro.core.blr2_ulv import BLR2ULVFactor
from repro.core.rhs import check_rhs_shape
from repro.distribution.strategies import DistributionStrategy, RowCyclicDistribution
from repro.runtime.dtd import DTDRuntime, resolve_execution
from repro.runtime.flops import (
    flops_solve_backward,
    flops_solve_forward,
    flops_solve_root,
)
from repro.runtime.task import AccessMode
from repro.solve.common import column_panels, handle_namespace, refine_once

__all__ = ["blr2_ulv_solve_dtd"]


def blr2_ulv_solve_dtd(
    factor: BLR2ULVFactor,
    b: np.ndarray,
    *,
    runtime: Optional[DTDRuntime] = None,
    execution: Optional[str] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    n_workers: int = 4,
    panel_size: Optional[int] = None,
    refine: bool = False,
    matvec=None,
) -> Tuple[np.ndarray, DTDRuntime]:
    """Solve ``A x = b`` with a BLR2-ULV factor through the DTD runtime.

    Parameters mirror :func:`repro.solve.hss_solve_dtd.hss_ulv_solve_dtd`.
    Returns ``(x, runtime)`` with ``x`` shaped like ``b``.
    """
    # Normalize without copying: the driver only reads bm (the per-row seeds
    # are slice copies), so the validate_rhs working copy would be overhead.
    check_rhs_shape(b, factor.blr2.n)
    arr = np.asarray(b, dtype=np.float64)
    single = arr.ndim == 1
    bm = arr.reshape(factor.blr2.n, -1)
    rt, mode = resolve_execution(runtime, execution)
    x = _record_and_run(
        factor, bm, rt, mode,
        nodes=nodes, distribution=distribution,
        n_workers=n_workers, panel_size=panel_size,
    )
    if refine:
        op = matvec if matvec is not None else factor.blr2
        x = refine_once(
            lambda r: _record_and_run(
                factor, r, DTDRuntime(execution=rt.execution), mode,
                nodes=nodes, distribution=distribution,
                n_workers=n_workers, panel_size=panel_size,
            ),
            op, bm, x,
        )
    return (x[:, 0] if single else x), rt


def _record_and_run(
    factor: BLR2ULVFactor,
    bm: np.ndarray,
    rt: DTDRuntime,
    mode: str,
    *,
    nodes: int,
    distribution: Optional[DistributionStrategy],
    n_workers: int,
    panel_size: Optional[int],
) -> np.ndarray:
    """Record the forward/root/backward graph for ``bm`` and execute it."""
    blr2 = factor.blr2
    nb = blr2.nblocks
    offsets = factor._skeleton_offsets()
    panels = column_panels(bm.shape[1], panel_size)
    # Same virtual tree level as the factorization graph, so the row-cyclic
    # strategy spreads the flat block rows identically.
    level = max(1, math.ceil(math.log2(max(nb, 2))))
    # Unique suffix so repeated solves can record into one shared runtime.
    ns = handle_namespace(rt)

    # Mutable per-panel stores the task bodies operate on.
    bin_store: Dict[Tuple[int, int], np.ndarray] = {}
    zs: Dict[Tuple[int, int], np.ndarray] = {}
    bs: Dict[Tuple[int, int], np.ndarray] = {}
    ys: Dict[int, np.ndarray] = {}
    sol: Dict[Tuple[int, int], np.ndarray] = {}

    # Immutable factor handles (no writers: inherited by forked workers).
    fac_handle: Dict[int, object] = {}
    for i in range(nb):
        part = factor.partials[i]
        fac_handle[i] = rt.new_handle(
            f"ULV[{i}]{ns}",
            nbytes=int(factor.bases[i].nbytes + part.L_rr.nbytes + part.L_sr.nbytes),
            level=level, row=i, max_level=level,
        )
    root_handle = rt.new_handle(
        f"ULV_ROOT{ns}", nbytes=int(factor.merged_chol.nbytes),
        level=0, row=0, max_level=level,
    )

    bin_h: Dict[Tuple[int, int], object] = {}
    z_h: Dict[Tuple[int, int], object] = {}
    s_h: Dict[Tuple[int, int], object] = {}
    y_h: Dict[int, object] = {}
    sol_h: Dict[Tuple[int, int], object] = {}
    for p, cols in enumerate(panels):
        pw = cols.stop - cols.start
        for i in range(nb):
            m = blr2.diag[i].shape[0]
            r = blr2.rank(i)
            bin_h[(p, i)] = rt.new_handle(
                f"B[{i};p{p}]{ns}", nbytes=8 * m * pw,
                level=level, row=i, max_level=level, panel=p,
            ).bind_item(bin_store, (p, i))
            z_h[(p, i)] = rt.new_handle(
                f"Z[{i};p{p}]{ns}", nbytes=8 * (m - r) * pw,
                level=level, row=i, max_level=level, panel=p,
            ).bind_item(zs, (p, i))
            s_h[(p, i)] = rt.new_handle(
                f"BS[{i};p{p}]{ns}", nbytes=8 * r * pw,
                level=level, row=i, max_level=level, panel=p,
            ).bind_item(bs, (p, i))
            sol_h[(p, i)] = rt.new_handle(
                f"X[{i};p{p}]{ns}", nbytes=8 * m * pw,
                level=level, row=i, max_level=level, panel=p,
            ).bind_item(sol, (p, i))
        y_h[p] = rt.new_handle(
            f"Y[p{p}]{ns}", nbytes=8 * offsets[-1] * pw,
            level=0, row=0, max_level=level, panel=p,
        ).bind_item(ys, p)

    strategy = (
        distribution if distribution is not None
        else RowCyclicDistribution(nodes, max_level=level)
    )
    strategy.assign(rt.handles)

    # Seed the per-row RHS blocks (inherited by forked workers).
    for p, cols in enumerate(panels):
        for i in range(nb):
            bin_store[(p, i)] = bm[blr2.block_range(i), cols].copy()

    for p, cols in enumerate(panels):
        pw = cols.stop - cols.start

        for i in range(nb):

            def forward(p=p, i=i) -> None:
                bhat = factor.bases[i].T @ bin_store[(p, i)]
                nr = factor.partials[i].redundant_size
                br, bsi = bhat[:nr], bhat[nr:]
                if nr > 0:
                    z = scipy.linalg.solve_triangular(factor.partials[i].L_rr, br, lower=True)
                    bsi = bsi - factor.partials[i].L_sr @ z
                else:
                    z = br
                zs[(p, i)] = z
                bs[(p, i)] = bsi

            m = blr2.diag[i].shape[0]
            rt.insert_task(
                forward,
                [
                    (fac_handle[i], AccessMode.READ),
                    (bin_h[(p, i)], AccessMode.READ),
                    (z_h[(p, i)], AccessMode.WRITE),
                    (s_h[(p, i)], AccessMode.WRITE),
                ],
                name=f"FWD[{i};p{p}]",
                kind="SOLVE_FWD",
                flops=flops_solve_forward(m, blr2.rank(i), pw),
                phase=0,
            )

        def root_solve(p=p) -> None:
            # Stacking the skeleton blocks in row order yields exactly the
            # merged_rhs array of the sequential reference.
            merged_rhs = np.vstack([bs[(p, i)] for i in range(nb)])
            y = scipy.linalg.solve_triangular(factor.merged_chol, merged_rhs, lower=True)
            ys[p] = scipy.linalg.solve_triangular(factor.merged_chol.T, y, lower=False)

        rt.insert_task(
            root_solve,
            [(s_h[(p, i)], AccessMode.READ) for i in range(nb)]
            + [(root_handle, AccessMode.READ), (y_h[p], AccessMode.WRITE)],
            name=f"ROOT_SOLVE[p{p}]",
            kind="SOLVE_ROOT",
            flops=flops_solve_root(offsets[-1], pw),
            phase=1,
        )

        for i in range(nb):

            def backward(p=p, i=i) -> None:
                ysi = ys[p][offsets[i] : offsets[i + 1]]
                nr = factor.partials[i].redundant_size
                if nr > 0:
                    rhs = zs[(p, i)] - factor.partials[i].L_sr.T @ ysi
                    yr = scipy.linalg.solve_triangular(factor.partials[i].L_rr.T, rhs, lower=False)
                else:
                    yr = zs[(p, i)][:0]
                sol[(p, i)] = factor.bases[i] @ np.vstack([yr, ysi])

            m = blr2.diag[i].shape[0]
            rt.insert_task(
                backward,
                [
                    (fac_handle[i], AccessMode.READ),
                    (y_h[p], AccessMode.READ),
                    (z_h[(p, i)], AccessMode.READ),
                    (sol_h[(p, i)], AccessMode.WRITE),
                ],
                name=f"BWD[{i};p{p}]",
                kind="SOLVE_BWD",
                flops=flops_solve_backward(m, blr2.rank(i), pw),
                phase=2,
            )

    if mode == "distributed":
        sol_keys = [(p, i) for p in range(len(panels)) for i in range(nb)]

        def _collect():
            # Leaf SOL handles have no consumers, so any entry present in the
            # store was computed by a local BWD task.
            return {key: sol[key] for key in sol_keys if key in sol}

        if rt.num_tasks:
            report = rt.run_distributed(nodes=nodes, strategy=strategy, collect=_collect)
            for frag in report.fragments:
                sol.update(frag)
    elif mode == "parallel":
        rt.run_parallel(n_workers=n_workers)
    else:
        rt.run()

    x = np.empty_like(bm)
    for p, cols in enumerate(panels):
        for i in range(nb):
            x[blr2.block_range(i), cols] = sol[(p, i)]
    return x
