"""HODLR-ULV solve expressed as DTD runtime tasks.

The HODLR counterpart of :mod:`repro.solve.blr2_solve_dtd`: a
:class:`~repro.core.hodlr_ulv.HODLRULVFactor` solves through exactly the same
leaf-ULV solve graph (:class:`~repro.pipeline.solve.LeafULVSolveBuilder`) as
a BLR2 factor -- the leaf view is just another leaf system.  Every backend is
bit-identical to the sequential reference
:meth:`~repro.core.hodlr_ulv.HODLRULVFactor.solve`.

Multi-RHS blocking, iterative refinement and the backend selection mirror the
HSS driver; see :func:`repro.solve.hss_solve_dtd.hss_ulv_solve_dtd`.  The
default refinement operator is the HODLR matrix itself.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.hodlr_ulv import HODLRULVFactor
from repro.distribution.strategies import DistributionStrategy
from repro.pipeline.solve import LeafULVSolveBuilder, solve_through_builder
from repro.runtime.dtd import DTDRuntime

__all__ = ["hodlr_ulv_solve_dtd"]


def hodlr_ulv_solve_dtd(
    factor: HODLRULVFactor,
    b: np.ndarray,
    *,
    runtime: Optional[DTDRuntime] = None,
    execution: Optional[str] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    n_workers: int = 4,
    panel_size: Optional[int] = None,
    refine: bool = False,
    matvec=None,
) -> Tuple[np.ndarray, DTDRuntime]:
    """Solve ``A x = b`` with a HODLR-ULV factor through the DTD runtime.

    Parameters mirror :func:`repro.solve.hss_solve_dtd.hss_ulv_solve_dtd`.
    Returns ``(x, runtime)`` with ``x`` shaped like ``b``.
    """
    return solve_through_builder(
        LeafULVSolveBuilder,
        factor,
        b,
        runtime=runtime,
        execution=execution,
        nodes=nodes,
        distribution=distribution,
        n_workers=n_workers,
        panel_size=panel_size,
        refine=refine,
        matvec=matvec,
        default_op=factor.hodlr,
    )
