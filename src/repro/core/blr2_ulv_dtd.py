"""BLR2-ULV factorization expressed as DTD runtime tasks (paper Alg. 1 + Sec. 4.2).

The single-level counterpart of :func:`repro.core.hss_ulv_dtd.hss_ulv_factorize_dtd`:
the diagonal-product and partial-factorization of every block row are
independent tasks (the embarrassingly parallel part of Alg. 1), each block row
of the permuted skeleton system is assembled by its own MERGE task, and one
final POTRF factorizes the merged skeleton block.  The graph is recorded by
the format-agnostic leaf-ULV builder
(:class:`~repro.pipeline.factorize.LeafULVFactorizeBuilder` -- a BLR2 matrix
*is* a leaf system), and backend dispatch lives in
:meth:`repro.pipeline.policy.ExecutionPolicy.execute`; every backend produces
bit-identical factors to the sequential reference
(:func:`repro.core.blr2_ulv.blr2_ulv_factorize`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.blr2_ulv import BLR2ULVFactor
from repro.distribution.strategies import DistributionStrategy
from repro.formats.blr2 import BLR2Matrix
from repro.pipeline.factorize import LeafULVFactorizeBuilder
from repro.pipeline.policy import resolve_policy
from repro.runtime.dtd import DTDRuntime

__all__ = ["blr2_ulv_factorize_dtd"]


def blr2_ulv_factorize_dtd(
    blr2: BLR2Matrix,
    *,
    runtime: Optional[DTDRuntime] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    execute: bool = True,
    execution: Optional[str] = None,
    n_workers: int = 4,
    data_plane: Optional[str] = None,
) -> Tuple[BLR2ULVFactor, DTDRuntime]:
    """Factorize an SPD BLR2 matrix through the DTD runtime.

    Parameters mirror :func:`repro.core.hss_ulv_dtd.hss_ulv_factorize_dtd`:
    ``execution`` selects ``"immediate"`` (default), ``"deferred"``,
    ``"parallel"`` (thread-pool, ``n_workers`` threads) or ``"distributed"``
    (``nodes`` forked worker processes with owner-computes placement)
    execution of the task bodies; alternatively pass an existing ``runtime``
    and ``execute=False`` to take over execution yourself.

    Returns
    -------
    (factor, runtime):
        The ULV factor object and the runtime holding the recorded task graph.
        The factor is only populated once the graph has been executed.  After
        ``execution="distributed"``, ``runtime.last_distributed_report`` holds
        the measured communication ledger.
    """
    policy, runtime = resolve_policy(
        runtime, execution, nodes=nodes, distribution=distribution,
        n_workers=n_workers, data_plane=data_plane,
    )
    builder = LeafULVFactorizeBuilder(
        blr2, BLR2ULVFactor(blr2=blr2), policy=policy, runtime=runtime
    )
    if execute:
        builder.execute()
    else:
        builder.record()
    return builder.result(), builder.runtime
