"""BLR2-ULV factorization expressed as DTD runtime tasks (paper Alg. 1 + Sec. 4.2).

The single-level counterpart of :func:`repro.core.hss_ulv_dtd.hss_ulv_factorize_dtd`:
the diagonal-product and partial-factorization of every block row are
independent tasks (the embarrassingly parallel part of Alg. 1), each block row
of the permuted skeleton system is assembled by its own MERGE task, and one
final POTRF factorizes the merged skeleton block.  Dependencies are inferred
by the runtime from the declared data accesses, so the graph can be executed
immediately, deferred-sequentially or out-of-order on a thread pool -- all
producing bit-identical factors to the sequential reference
(:func:`repro.core.blr2_ulv.blr2_ulv_factorize`).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.blr2_ulv import BLR2ULVFactor
from repro.core.partial_cholesky import partial_cholesky
from repro.distribution.strategies import DistributionStrategy, RowCyclicDistribution
from repro.formats.blr2 import BLR2Matrix
from repro.lowrank.qr import full_orthogonal_basis
from repro.runtime.dtd import DTDRuntime, resolve_execution
from repro.runtime.flops import (
    flops_diag_product,
    flops_partial_factor,
    flops_potrf,
)
from repro.runtime.task import AccessMode

__all__ = ["blr2_ulv_factorize_dtd"]


def blr2_ulv_factorize_dtd(
    blr2: BLR2Matrix,
    *,
    runtime: Optional[DTDRuntime] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    execute: bool = True,
    execution: Optional[str] = None,
    n_workers: int = 4,
) -> Tuple[BLR2ULVFactor, DTDRuntime]:
    """Factorize an SPD BLR2 matrix through the DTD runtime.

    Parameters mirror :func:`repro.core.hss_ulv_dtd.hss_ulv_factorize_dtd`:
    ``execution`` selects ``"immediate"`` (default), ``"deferred"``,
    ``"parallel"`` (thread-pool, ``n_workers`` threads) or ``"distributed"``
    (``nodes`` forked worker processes with owner-computes placement)
    execution of the task bodies; alternatively pass an existing ``runtime``
    and ``execute=False`` to take over execution yourself.

    Returns
    -------
    (factor, runtime):
        The ULV factor object and the runtime holding the recorded task graph.
        The factor is only populated once the graph has been executed.  After
        ``execution="distributed"``, ``runtime.last_distributed_report`` holds
        the measured communication ledger.
    """
    rt, mode = resolve_execution(runtime, execution)

    nb = blr2.nblocks
    factor = BLR2ULVFactor(blr2=blr2)

    # Skeleton ranks (and hence the merged-system layout) are known up front.
    offsets = factor._skeleton_offsets()
    merged = np.zeros((offsets[-1], offsets[-1]))

    # Mutable stores the task bodies operate on.
    diag: Dict[int, np.ndarray] = {i: blr2.diag[i].copy() for i in range(nb)}
    schur: Dict[int, np.ndarray] = {}

    # Data handles.  The flat block rows are mapped onto a virtual tree level
    # deep enough to hold them so the row-cyclic strategy spreads all rows.
    level = max(1, math.ceil(math.log2(max(nb, 2))))
    d_handle: Dict[int, object] = {}
    u_handle: Dict[int, object] = {}
    schur_handle: Dict[int, object] = {}
    row_handle: Dict[int, object] = {}
    for i in range(nb):
        m = blr2.diag[i].shape[0]
        r = blr2.rank(i)
        # Mutable handles are bound to their stores so the distributed
        # backend can move their values between worker processes.
        d_handle[i] = rt.new_handle(
            f"D[{i}]", nbytes=8 * m * m, level=level, row=i, max_level=level
        ).bind_item(diag, i)
        u_handle[i] = rt.new_handle(
            f"U[{i}]", nbytes=8 * m * r, level=level, row=i, max_level=level
        )
        schur_handle[i] = rt.new_handle(
            f"SCHUR[{i}]", nbytes=8 * r * r, level=level, row=i, max_level=level
        ).bind_item(schur, i)
        row_handle[i] = rt.new_handle(
            f"MERGED_ROW[{i}]",
            nbytes=8 * r * offsets[-1],
            level=level,
            row=i,
            max_level=level,
        ).bind(
            # The merged-row strip lives inside the shared `merged` array, so
            # the accessors copy the block-row slice in and out.
            lambda i=i: merged[offsets[i] : offsets[i + 1], :].copy(),
            lambda value, i=i: merged.__setitem__(
                (slice(offsets[i], offsets[i + 1]), slice(None)), value
            ),
        )
    s_handle: Dict[Tuple[int, int], object] = {}
    for i in range(nb):
        for j in range(i):
            s_handle[(i, j)] = rt.new_handle(
                f"S[{i},{j}]",
                nbytes=8 * blr2.rank(i) * blr2.rank(j),
                level=level,
                row=i,
                col=j,
                max_level=level,
            )
    chol_handle = rt.new_handle(
        "CHOL", nbytes=8 * offsets[-1] * offsets[-1], level=0, row=0, max_level=level
    )

    strategy = distribution if distribution is not None else RowCyclicDistribution(nodes, max_level=level)
    strategy.assign(rt.handles)

    for i in range(nb):

        def diag_product(i=i) -> None:
            u_full, _, _ = full_orthogonal_basis(blr2.bases[i])
            factor.bases[i] = u_full
            diag[i] = u_full.T @ diag[i] @ u_full

        m = blr2.diag[i].shape[0]
        rt.insert_task(
            diag_product,
            [
                (u_handle[i], AccessMode.READ),
                (d_handle[i], AccessMode.RW),
            ],
            name=f"DIAG_PRODUCT[{i}]",
            kind="DIAG_PRODUCT",
            flops=flops_diag_product(m),
            phase=0,
        )

        def partial_factor(i=i) -> None:
            part = partial_cholesky(diag[i], blr2.rank(i))
            factor.partials[i] = part
            schur[i] = part.schur_ss

        rt.insert_task(
            partial_factor,
            [
                (d_handle[i], AccessMode.RW),
                (schur_handle[i], AccessMode.WRITE),
            ],
            name=f"PARTIAL_FACTOR[{i}]",
            kind="PARTIAL_FACTOR",
            flops=flops_partial_factor(m, blr2.rank(i)),
            phase=0,
        )

    # Assemble the permuted skeleton system (Fig. 4) one block row at a time;
    # the rows write disjoint slices of `merged`, so they run concurrently.
    for i in range(nb):

        def merge_row(i=i) -> None:
            merged[offsets[i] : offsets[i + 1], offsets[i] : offsets[i + 1]] = schur[i]
            for j in range(nb):
                if i == j:
                    continue
                merged[offsets[i] : offsets[i + 1], offsets[j] : offsets[j + 1]] = blr2.coupling(i, j)

        accesses = [(schur_handle[i], AccessMode.READ)]
        accesses += [
            (s_handle[(max(i, j), min(i, j))], AccessMode.READ) for j in range(nb) if j != i
        ]
        accesses += [(row_handle[i], AccessMode.WRITE)]
        rt.insert_task(
            merge_row,
            accesses,
            name=f"MERGE[{i}]",
            kind="MERGE",
            flops=0.0,
            phase=1,
        )

    def root_factor() -> None:
        factor.merged_chol = np.linalg.cholesky(merged)

    rt.insert_task(
        root_factor,
        [(row_handle[i], AccessMode.READ) for i in range(nb)]
        + [(chol_handle, AccessMode.WRITE)],
        name="ROOT_POTRF",
        kind="POTRF",
        flops=flops_potrf(offsets[-1]),
        phase=2,
    )

    if execute:
        if mode == "distributed":

            def _collect():
                # Runs inside each worker: ship back the per-row factor pieces
                # produced locally plus the root Cholesky if this worker ran it.
                return {
                    "bases": dict(factor.bases),
                    "partials": dict(factor.partials),
                    "merged_chol": factor.merged_chol if factor.merged_chol.size else None,
                }

            report = rt.run_distributed(nodes=nodes, strategy=strategy, collect=_collect)
            for frag in report.fragments:
                factor.bases.update(frag["bases"])
                factor.partials.update(frag["partials"])
                if frag["merged_chol"] is not None:
                    factor.merged_chol = frag["merged_chol"]
        elif mode == "parallel":
            rt.run_parallel(n_workers=n_workers)
        else:
            rt.run()
    return factor, rt
