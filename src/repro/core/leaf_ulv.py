"""Shared sequential core of the leaf-level (single-level) ULV factorization.

Paper Alg. 1 never looks inside the matrix format: it only needs, per block
row ``i``, a dense diagonal block, a shared skeleton basis, and the coupling
blocks ``S_{i,j}`` against every other row.  Any format that can present
itself through that *leaf system* interface factorizes and solves through the
single implementation below -- :class:`~repro.formats.blr2.BLR2Matrix` does
so directly, and a HODLR matrix does so through the exact leaf view of
:class:`repro.core.hodlr_ulv.HODLRLeafSystem`.

A leaf system provides::

    n                  # matrix dimension
    nblocks            # number of leaf block rows
    block_range(i)     # slice of rows/cols covered by block i
    rank(i)            # skeleton rank of block row i
    diag               # {i: dense diagonal block}
    bases              # {i: skeleton basis U_i^S with orthonormal columns}
    coupling(i, j)     # skeleton coupling S_{i,j} (rank(i) x rank(j))
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import scipy.linalg

from repro.core.partial_cholesky import partial_cholesky
from repro.core.rhs import validate_rhs
from repro.lowrank.qr import full_orthogonal_basis

__all__ = ["LeafULVSolveMixin", "leaf_ulv_factorize_into"]


class LeafULVSolveMixin:
    """Solve/logdet shared by every leaf-level ULV factor object.

    Concrete factor classes provide a ``system`` attribute (the leaf system
    that was factorized) plus the factor stores ``bases`` (square orthogonal
    ``[U^R U^S]`` per block row), ``partials`` (partial Cholesky factors per
    block row) and ``merged_chol`` (Cholesky factor of the permuted skeleton
    system).
    """

    def _skeleton_offsets(self) -> List[int]:
        offsets = [0]
        for i in range(self.system.nblocks):
            offsets.append(offsets[-1] + self.system.rank(i))
        return offsets

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` through the ULV factors (Eq. 15).

        ``b`` may be a vector of length ``n`` or a matrix of shape ``(n, k)``.
        """
        bm, single = validate_rhs(b, self.system.n)
        nb = self.system.nblocks
        offsets = self._skeleton_offsets()

        z_store: Dict[int, np.ndarray] = {}
        merged_rhs = np.zeros((offsets[-1], bm.shape[1]))
        for i in range(nb):
            rng = self.system.block_range(i)
            bhat = self.bases[i].T @ bm[rng]
            nr = self.partials[i].redundant_size
            br, bs = bhat[:nr], bhat[nr:]
            if nr > 0:
                z = scipy.linalg.solve_triangular(self.partials[i].L_rr, br, lower=True)
                bs = bs - self.partials[i].L_sr @ z
            else:
                z = br
            z_store[i] = z
            merged_rhs[offsets[i] : offsets[i + 1]] = bs

        y = scipy.linalg.solve_triangular(self.merged_chol, merged_rhs, lower=True)
        y = scipy.linalg.solve_triangular(self.merged_chol.T, y, lower=False)

        x = np.empty_like(bm)
        for i in range(nb):
            rng = self.system.block_range(i)
            ys = y[offsets[i] : offsets[i + 1]]
            nr = self.partials[i].redundant_size
            if nr > 0:
                rhs = z_store[i] - self.partials[i].L_sr.T @ ys
                yr = scipy.linalg.solve_triangular(self.partials[i].L_rr.T, rhs, lower=False)
            else:
                yr = z_store[i][:0]
            x[rng] = self.bases[i] @ np.vstack([yr, ys])
        return x[:, 0] if single else x

    def logdet(self) -> float:
        """``log(det(A))`` of the factorized approximation."""
        total = 2.0 * float(np.sum(np.log(np.diag(self.merged_chol))))
        for part in self.partials.values():
            if part.redundant_size > 0:
                total += 2.0 * float(np.sum(np.log(np.diag(part.L_rr))))
        return total


def leaf_ulv_factorize_into(factor, system):
    """Run the sequential leaf-level ULV (Alg. 1) and populate ``factor``.

    ``factor`` is a fresh :class:`LeafULVSolveMixin` object whose ``bases`` /
    ``partials`` dicts and ``merged_chol`` are filled in-place; it is also
    returned.  This is the reference implementation every task-graph backend
    is validated against, bit for bit.
    """
    nb = system.nblocks

    schur: Dict[int, np.ndarray] = {}
    for i in range(nb):
        u_full, _, _ = full_orthogonal_basis(system.bases[i])
        a_hat = u_full.T @ system.diag[i] @ u_full
        part = partial_cholesky(a_hat, system.rank(i))
        factor.bases[i] = u_full
        factor.partials[i] = part
        schur[i] = part.schur_ss

    offsets = factor._skeleton_offsets()
    merged = np.zeros((offsets[-1], offsets[-1]))
    for i in range(nb):
        merged[offsets[i] : offsets[i + 1], offsets[i] : offsets[i + 1]] = schur[i]
        for j in range(nb):
            if i == j:
                continue
            merged[offsets[i] : offsets[i + 1], offsets[j] : offsets[j + 1]] = system.coupling(i, j)

    factor.merged_chol = np.linalg.cholesky(merged)
    return factor
