"""ULV factorization of a weak-admissibility BLR2 matrix (paper Alg. 1).

The single-level variant of the ULV: after the diagonal product and partial
factorization of every block row, the surviving skeleton-skeleton blocks of
*all* rows (plus all couplings ``S_{i,j}``) are permuted to the lower-right
corner (Fig. 4) and factorized with one dense Cholesky.  Because that final
dense block has size ``nblocks x rank``, the overall complexity approaches
O(N^2) for fixed leaf size -- the motivation for the multi-level HSS-ULV.

The algorithm itself is format-agnostic (it only reads the leaf-system
interface of :mod:`repro.core.leaf_ulv`); this module binds it to
:class:`~repro.formats.blr2.BLR2Matrix`, which presents that interface
natively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.core.leaf_ulv import LeafULVSolveMixin, leaf_ulv_factorize_into
from repro.core.partial_cholesky import PartialCholeskyResult
from repro.formats.blr2 import BLR2Matrix

__all__ = ["BLR2ULVFactor", "blr2_ulv_factorize"]


@dataclass
class BLR2ULVFactor(LeafULVSolveMixin):
    """Factors of the BLR2-ULV factorization (Alg. 1).

    Attributes
    ----------
    blr2:
        The factorized BLR2 matrix.
    bases:
        Square orthogonal ``[U^R U^S]`` per block row.
    partials:
        Partial Cholesky factors per block row.
    merged_chol:
        Lower-triangular Cholesky factor of the permuted skeleton system
        (line 3 of Alg. 1).
    """

    blr2: BLR2Matrix
    bases: Dict[int, np.ndarray] = field(default_factory=dict)
    partials: Dict[int, PartialCholeskyResult] = field(default_factory=dict)
    merged_chol: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))

    @property
    def system(self) -> BLR2Matrix:
        """The leaf system this factor was computed from (the BLR2 matrix itself)."""
        return self.blr2


def blr2_ulv_factorize(blr2: BLR2Matrix) -> BLR2ULVFactor:
    """Factorize an SPD BLR2 matrix with the single-level ULV algorithm (Alg. 1)."""
    return leaf_ulv_factorize_into(BLR2ULVFactor(blr2=blr2), blr2)
