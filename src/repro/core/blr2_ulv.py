"""ULV factorization of a weak-admissibility BLR2 matrix (paper Alg. 1).

The single-level variant of the ULV: after the diagonal product and partial
factorization of every block row, the surviving skeleton-skeleton blocks of
*all* rows (plus all couplings ``S_{i,j}``) are permuted to the lower-right
corner (Fig. 4) and factorized with one dense Cholesky.  Because that final
dense block has size ``nblocks x rank``, the overall complexity approaches
O(N^2) for fixed leaf size -- the motivation for the multi-level HSS-ULV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np
import scipy.linalg

from repro.core.partial_cholesky import PartialCholeskyResult, partial_cholesky
from repro.core.rhs import validate_rhs
from repro.formats.blr2 import BLR2Matrix
from repro.lowrank.qr import full_orthogonal_basis

__all__ = ["BLR2ULVFactor", "blr2_ulv_factorize"]


@dataclass
class BLR2ULVFactor:
    """Factors of the BLR2-ULV factorization (Alg. 1).

    Attributes
    ----------
    blr2:
        The factorized BLR2 matrix.
    bases:
        Square orthogonal ``[U^R U^S]`` per block row.
    partials:
        Partial Cholesky factors per block row.
    merged_chol:
        Lower-triangular Cholesky factor of the permuted skeleton system
        (line 3 of Alg. 1).
    """

    blr2: BLR2Matrix
    bases: Dict[int, np.ndarray] = field(default_factory=dict)
    partials: Dict[int, PartialCholeskyResult] = field(default_factory=dict)
    merged_chol: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))

    def _skeleton_offsets(self) -> list[int]:
        offsets = [0]
        for i in range(self.blr2.nblocks):
            offsets.append(offsets[-1] + self.blr2.rank(i))
        return offsets

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` through the ULV factors (Eq. 15).

        ``b`` may be a vector of length ``n`` or a matrix of shape ``(n, k)``.
        """
        bm, single = validate_rhs(b, self.blr2.n)
        nb = self.blr2.nblocks
        offsets = self._skeleton_offsets()

        z_store: Dict[int, np.ndarray] = {}
        merged_rhs = np.zeros((offsets[-1], bm.shape[1]))
        for i in range(nb):
            rng = self.blr2.block_range(i)
            bhat = self.bases[i].T @ bm[rng]
            nr = self.partials[i].redundant_size
            br, bs = bhat[:nr], bhat[nr:]
            if nr > 0:
                z = scipy.linalg.solve_triangular(self.partials[i].L_rr, br, lower=True)
                bs = bs - self.partials[i].L_sr @ z
            else:
                z = br
            z_store[i] = z
            merged_rhs[offsets[i] : offsets[i + 1]] = bs

        y = scipy.linalg.solve_triangular(self.merged_chol, merged_rhs, lower=True)
        y = scipy.linalg.solve_triangular(self.merged_chol.T, y, lower=False)

        x = np.empty_like(bm)
        for i in range(nb):
            rng = self.blr2.block_range(i)
            ys = y[offsets[i] : offsets[i + 1]]
            nr = self.partials[i].redundant_size
            if nr > 0:
                rhs = z_store[i] - self.partials[i].L_sr.T @ ys
                yr = scipy.linalg.solve_triangular(self.partials[i].L_rr.T, rhs, lower=False)
            else:
                yr = z_store[i][:0]
            x[rng] = self.bases[i] @ np.vstack([yr, ys])
        return x[:, 0] if single else x

    def logdet(self) -> float:
        """``log(det(A))`` of the factorized BLR2 approximation."""
        total = 2.0 * float(np.sum(np.log(np.diag(self.merged_chol))))
        for part in self.partials.values():
            if part.redundant_size > 0:
                total += 2.0 * float(np.sum(np.log(np.diag(part.L_rr))))
        return total


def blr2_ulv_factorize(blr2: BLR2Matrix) -> BLR2ULVFactor:
    """Factorize an SPD BLR2 matrix with the single-level ULV algorithm (Alg. 1)."""
    factor = BLR2ULVFactor(blr2=blr2)
    nb = blr2.nblocks

    schur: Dict[int, np.ndarray] = {}
    for i in range(nb):
        u_full, _, _ = full_orthogonal_basis(blr2.bases[i])
        a_hat = u_full.T @ blr2.diag[i] @ u_full
        part = partial_cholesky(a_hat, blr2.rank(i))
        factor.bases[i] = u_full
        factor.partials[i] = part
        schur[i] = part.schur_ss

    offsets = factor._skeleton_offsets()
    merged = np.zeros((offsets[-1], offsets[-1]))
    for i in range(nb):
        merged[offsets[i] : offsets[i + 1], offsets[i] : offsets[i + 1]] = schur[i]
        for j in range(nb):
            if i == j:
                continue
            merged[offsets[i] : offsets[i + 1], offsets[j] : offsets[j + 1]] = blr2.coupling(i, j)

    factor.merged_chol = np.linalg.cholesky(merged)
    return factor
