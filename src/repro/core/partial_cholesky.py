"""Partial Cholesky factorization of a rotated diagonal block (paper Eq. 10-12).

After the *diagonal product* ``A_hat = U^T A U`` with the square orthogonal
basis ``U = [U^R U^S]``, the leading ``n - r`` rows/columns (the *redundant*
part) of the diagonal block can be eliminated independently of every other
block, because the rotated off-diagonal blocks are zero in those rows/columns
(Eq. 8).  The elimination produces::

    L^RR (L^RR)^T = A_hat^RR                      (Eq. 10, dense Cholesky)
    L^SR          = A_hat^SR (L^RR)^{-T}          (Eq. 11, triangular solve)
    A_hat^SS     <- A_hat^SS - L^SR (L^SR)^T      (Eq. 12, Schur complement)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

__all__ = ["PartialCholeskyResult", "partial_cholesky"]


@dataclass
class PartialCholeskyResult:
    """Factors of the partial Cholesky of one rotated diagonal block.

    Attributes
    ----------
    L_rr:
        Lower-triangular Cholesky factor of the redundant-redundant part,
        shape ``(n - r, n - r)``.
    L_sr:
        Coupling factor ``A^SR (L^RR)^{-T}``, shape ``(r, n - r)``.
    schur_ss:
        The updated skeleton-skeleton block (Schur complement), shape
        ``(r, r)``.  This is the block that survives into the next (coarser)
        level through the merge step.
    """

    L_rr: np.ndarray
    L_sr: np.ndarray
    schur_ss: np.ndarray

    @property
    def redundant_size(self) -> int:
        return self.L_rr.shape[0]

    @property
    def skeleton_size(self) -> int:
        return self.schur_ss.shape[0]


def partial_cholesky(a_hat: np.ndarray, rank: int) -> PartialCholeskyResult:
    """Eliminate the leading ``n - rank`` (redundant) rows/columns of ``a_hat``.

    Parameters
    ----------
    a_hat:
        The rotated diagonal block ``U^T A_{i,i} U`` (symmetric positive
        definite), ordered redundant-first as in Eq. 3-4.
    rank:
        The skeleton rank ``r`` of the block's cluster; the trailing ``r``
        rows/columns are left un-eliminated.

    Returns
    -------
    PartialCholeskyResult

    Raises
    ------
    numpy.linalg.LinAlgError
        If the redundant-redundant block is not positive definite.
    """
    a_hat = np.asarray(a_hat, dtype=np.float64)
    n = a_hat.shape[0]
    if a_hat.shape != (n, n):
        raise ValueError("a_hat must be square")
    if rank < 0 or rank > n:
        raise ValueError(f"rank must be in [0, {n}], got {rank}")
    nr = n - rank

    if nr == 0:
        # Fully skeleton block: nothing to eliminate at this level.
        return PartialCholeskyResult(
            L_rr=np.zeros((0, 0)),
            L_sr=np.zeros((rank, 0)),
            schur_ss=a_hat.copy(),
        )

    a_rr = a_hat[:nr, :nr]
    a_sr = a_hat[nr:, :nr]
    a_ss = a_hat[nr:, nr:]

    l_rr = np.linalg.cholesky(a_rr)
    if rank > 0:
        # L^SR = A^SR (L^RR)^{-T}  computed as a triangular solve.
        l_sr = scipy.linalg.solve_triangular(l_rr, a_sr.T, lower=True).T
        schur = a_ss - l_sr @ l_sr.T
    else:
        l_sr = np.zeros((0, nr))
        schur = np.zeros((0, 0))

    return PartialCholeskyResult(L_rr=l_rr, L_sr=l_sr, schur_ss=schur)
