"""Sequential reference implementation of the HSS-ULV factorization (Alg. 2).

Each level ``l`` of the HSS matrix is a weak-admissibility BLR2 matrix whose
off-diagonal blocks are nullified by the *diagonal product* with the square
orthogonal basis ``U_{l;i} = [U^R U^S]``.  The redundant rows are eliminated
with a partial Cholesky, and the surviving skeleton-skeleton Schur complements
of two sibling nodes are *merged* (together with their coupling block) into
the parent's diagonal block at level ``l - 1``.  The final ``A_0`` block is
factorized with a dense Cholesky (line 6 of Alg. 2).

The factor object supports forward/backward substitution (Eq. 17), determinant
evaluation and reconstruction of the factorized matrix for validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np
import scipy.linalg

from repro.core.partial_cholesky import PartialCholeskyResult, partial_cholesky
from repro.core.rhs import validate_rhs
from repro.formats.hss import HSSMatrix
from repro.lowrank.qr import full_orthogonal_basis

__all__ = ["HSSNodeFactor", "HSSULVFactor", "hss_ulv_factorize"]


@dataclass
class HSSNodeFactor:
    """Per-node factors produced by the HSS-ULV factorization.

    Attributes
    ----------
    U:
        The square orthogonal basis ``[U^R U^S]`` used for the diagonal
        product of this node (size ``m x m`` where ``m`` is the node's ULV
        working-block size).
    rank:
        Skeleton rank ``r`` of the node.
    partial:
        The partial Cholesky factors of the rotated diagonal block.
    """

    U: np.ndarray
    rank: int
    partial: PartialCholeskyResult

    @property
    def block_size(self) -> int:
        return self.U.shape[0]

    @property
    def redundant_size(self) -> int:
        return self.block_size - self.rank


@dataclass
class HSSULVFactor:
    """The complete HSS-ULV factorization of an :class:`HSSMatrix`.

    Attributes
    ----------
    hss:
        The factorized HSS matrix (kept for structure and couplings; its
        numerical content is not modified).
    node_factors:
        Mapping ``(level, index) -> HSSNodeFactor`` for levels
        ``max_level .. 1``.
    root_chol:
        Lower-triangular Cholesky factor of the final merged block ``A_0``.
    """

    hss: HSSMatrix
    node_factors: Dict[Tuple[int, int], HSSNodeFactor] = field(default_factory=dict)
    root_chol: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))

    # ------------------------------------------------------------------ solve
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` using the ULV factors (Eq. 17).

        ``b`` may be a vector of length ``n`` or a matrix of shape ``(n, k)``.
        """
        bm, single = validate_rhs(b, self.hss.n)
        max_level = self.hss.max_level

        # Forward pass: rotate, eliminate redundant unknowns, merge upward.
        work: Dict[Tuple[int, int], np.ndarray] = {}
        for i in range(2**max_level):
            node = self.hss.node(max_level, i)
            work[(max_level, i)] = bm[node.start : node.stop]

        z_store: Dict[Tuple[int, int], np.ndarray] = {}
        s_store: Dict[Tuple[int, int], np.ndarray] = {}
        for level in range(max_level, 0, -1):
            for i in range(2**level):
                fac = self.node_factors[(level, i)]
                bhat = fac.U.T @ work[(level, i)]
                nr = fac.redundant_size
                br, bs = bhat[:nr], bhat[nr:]
                if nr > 0:
                    z = scipy.linalg.solve_triangular(fac.partial.L_rr, br, lower=True)
                    bs = bs - fac.partial.L_sr @ z
                else:
                    z = br
                z_store[(level, i)] = z
                s_store[(level, i)] = bs
            for k in range(2 ** (level - 1)):
                work[(level - 1, k)] = np.vstack(
                    [s_store[(level, 2 * k)], s_store[(level, 2 * k + 1)]]
                )

        # Root dense solve.
        y0 = scipy.linalg.solve_triangular(self.root_chol, work[(0, 0)], lower=True)
        y0 = scipy.linalg.solve_triangular(self.root_chol.T, y0, lower=False)

        # Backward pass: un-merge, back-substitute, rotate back.
        sol: Dict[Tuple[int, int], np.ndarray] = {(0, 0): y0}
        for level in range(1, max_level + 1):
            for i in range(2**level):
                fac = self.node_factors[(level, i)]
                parent = sol[(level - 1, i // 2)]
                r_left = self.node_factors[(level, 2 * (i // 2))].rank
                ys = parent[:r_left] if i % 2 == 0 else parent[r_left:]
                nr = fac.redundant_size
                if nr > 0:
                    rhs = z_store[(level, i)] - fac.partial.L_sr.T @ ys
                    yr = scipy.linalg.solve_triangular(
                        fac.partial.L_rr.T, rhs, lower=False
                    )
                else:
                    yr = z_store[(level, i)][:0]
                sol[(level, i)] = fac.U @ np.vstack([yr, ys])

        x = np.empty_like(bm)
        for i in range(2**max_level):
            node = self.hss.node(max_level, i)
            x[node.start : node.stop] = sol[(max_level, i)]
        return x[:, 0] if single else x

    # -------------------------------------------------------------- logdet
    def logdet(self) -> float:
        """``log(det(A))`` of the factorized (HSS-approximated) matrix."""
        total = 2.0 * float(np.sum(np.log(np.diag(self.root_chol))))
        for fac in self.node_factors.values():
            if fac.redundant_size > 0:
                total += 2.0 * float(np.sum(np.log(np.diag(fac.partial.L_rr))))
        return total

    # --------------------------------------------------------------- stats
    def factor_flops(self) -> float:
        """Floating-point operations of the numerical factorization steps."""
        flops = 0.0
        for fac in self.node_factors.values():
            m = fac.block_size
            nr = fac.redundant_size
            r = fac.rank
            flops += 2.0 * m * m * m  # two GEMMs of the diagonal product
            flops += nr**3 / 3.0  # POTRF of the RR block
            flops += r * nr**2  # TRSM for L_SR
            flops += r * r * nr  # SYRK update of the SS block
        n0 = self.root_chol.shape[0]
        flops += n0**3 / 3.0
        return flops

    def memory_bytes(self) -> int:
        """Bytes stored by the factor objects (excluding the HSS matrix itself)."""
        total = self.root_chol.nbytes
        for fac in self.node_factors.values():
            total += fac.U.nbytes + fac.partial.L_rr.nbytes + fac.partial.L_sr.nbytes
        return total


def hss_ulv_factorize(hss: HSSMatrix) -> HSSULVFactor:
    """Factorize an SPD HSS matrix with the HSS-ULV algorithm (Alg. 2).

    Parameters
    ----------
    hss:
        A symmetric positive definite HSS matrix.

    Returns
    -------
    HSSULVFactor
        Factor object providing :meth:`HSSULVFactor.solve` and
        :meth:`HSSULVFactor.logdet`.

    Raises
    ------
    numpy.linalg.LinAlgError
        If a redundant diagonal block is not positive definite (the HSS
        approximation of an SPD matrix can lose definiteness when the
        compression error exceeds the smallest eigenvalue).
    """
    max_level = hss.max_level
    factor = HSSULVFactor(hss=hss)

    # Working diagonal blocks of the current level, keyed by node index.
    diag: Dict[Tuple[int, int], np.ndarray] = {}
    for i in range(2**max_level):
        diag[(max_level, i)] = hss.node(max_level, i).D.copy()

    for level in range(max_level, 0, -1):
        schur: Dict[int, np.ndarray] = {}
        for i in range(2**level):
            node = hss.node(level, i)
            u_full, _, _ = full_orthogonal_basis(node.U)
            a_hat = u_full.T @ diag[(level, i)] @ u_full
            part = partial_cholesky(a_hat, node.rank)
            factor.node_factors[(level, i)] = HSSNodeFactor(
                U=u_full, rank=node.rank, partial=part
            )
            schur[i] = part.schur_ss
        # Merge step (line 4 of Alg. 2): two sibling Schur complements plus
        # their coupling become the parent's diagonal block.
        for k in range(2 ** (level - 1)):
            s = hss.coupling(level, 2 * k + 1, 2 * k)  # E_{2k+1}^T A E_{2k}
            top = np.hstack([schur[2 * k], s.T])
            bot = np.hstack([s, schur[2 * k + 1]])
            diag[(level - 1, k)] = np.vstack([top, bot])

    factor.root_chol = np.linalg.cholesky(diag[(0, 0)])
    return factor
