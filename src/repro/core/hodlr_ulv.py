"""ULV factorization of a symmetric HODLR matrix through its exact leaf view.

HODLR shares weak admissibility with HSS/BLR2 but carries *independent*
low-rank factors per off-diagonal block and no nested bases, so Alg. 1/2 do
not apply verbatim.  The key observation enabling a ULV factorization anyway:
every off-diagonal entry of a leaf block row lives in the column space of the
ancestor blocks' row factors restricted to that leaf.  Concatenating those
restrictions and orthonormalizing yields an **exact** shared skeleton basis
per leaf (rank at most the sum of the ancestor ranks, ~ r log N), which turns
the HODLR matrix into a leaf-level shared-basis system -- precisely the
interface of :mod:`repro.core.leaf_ulv` -- *without any further
approximation*.  The factorization and solve are then the single-level ULV
(Alg. 1), and the task graph is the same leaf-ULV graph the BLR2 format
records, which is what gives HODLR every execution backend for free.

Requires a *symmetric* HODLR matrix (``lower == upper^T`` per node, as
:func:`repro.formats.hodlr.build_hodlr` constructs) whose approximation is
positive definite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.leaf_ulv import LeafULVSolveMixin, leaf_ulv_factorize_into
from repro.core.partial_cholesky import PartialCholeskyResult
from repro.formats.hodlr import HODLRMatrix, HODLRNode

__all__ = ["HODLRLeafSystem", "HODLRULVFactor", "hodlr_ulv_factorize"]


class HODLRLeafSystem:
    """The exact leaf-level shared-basis view of a symmetric HODLR matrix.

    Presents the leaf-system interface consumed by
    :func:`repro.core.leaf_ulv.leaf_ulv_factorize_into` and the leaf-ULV graph
    builder: ``n``, ``nblocks``, ``block_range``, ``rank``, ``diag``,
    ``bases`` and ``coupling``.  Construction is deterministic (plain QR of
    fixed column stacks), so independently built views of the same matrix are
    bit-identical -- the property the cross-backend tests rely on.
    """

    def __init__(self, hodlr: HODLRMatrix) -> None:
        self.hodlr = hodlr
        self._leaves: List[HODLRNode] = []
        # Per-leaf restricted ancestor row factors (deepest ancestor first),
        # and per ordered leaf pair (i, j) the factors (R_i, C_j) of the
        # common-ancestor block with A_{ij} = R_i @ C_j^T exactly.
        contributions: Dict[int, List[np.ndarray]] = {}
        self._pair: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}

        def walk(node: HODLRNode) -> List[int]:
            if node.is_leaf:
                idx = len(self._leaves)
                self._leaves.append(node)
                contributions[idx] = []
                return [idx]
            left_ids = walk(node.left)
            right_ids = walk(node.right)
            lo, ro = node.left.start, node.right.start
            for i in left_ids:
                leaf = self._leaves[i]
                rows = slice(leaf.start - lo, leaf.stop - lo)
                contributions[i].append(node.upper.U[rows])
                for j in right_ids:
                    other = self._leaves[j]
                    cols = slice(other.start - ro, other.stop - ro)
                    self._pair[(i, j)] = (node.upper.U[rows], node.upper.V[cols])
            for j in right_ids:
                leaf = self._leaves[j]
                rows = slice(leaf.start - ro, leaf.stop - ro)
                contributions[j].append(node.lower.U[rows])
                for i in left_ids:
                    other = self._leaves[i]
                    cols = slice(other.start - lo, other.stop - lo)
                    self._pair[(j, i)] = (node.lower.U[rows], node.lower.V[cols])
            return left_ids + right_ids

        walk(hodlr.root)

        #: Exact shared skeleton basis per leaf (orthonormal columns).
        self.bases: Dict[int, np.ndarray] = {}
        for i, leaf in enumerate(self._leaves):
            gen = contributions[i]
            if gen:
                q, _ = np.linalg.qr(np.hstack(gen))
            else:
                q = np.zeros((leaf.size, 0))
            self.bases[i] = q

        #: Dense leaf diagonal blocks (referenced, not copied).
        self.diag: Dict[int, np.ndarray] = {
            i: leaf.dense for i, leaf in enumerate(self._leaves)
        }

        # Skeleton couplings, projected through the exact bases.  Eagerly
        # computed: they are tiny (rank x rank) and the task bodies reading
        # them stay pure BLAS.
        self._couplings: Dict[Tuple[int, int], np.ndarray] = {}
        for (i, j), (r_i, c_j) in self._pair.items():
            self._couplings[(i, j)] = (self.bases[i].T @ r_i) @ (self.bases[j].T @ c_j).T

    # -- leaf-system interface ----------------------------------------------
    @property
    def n(self) -> int:
        return self.hodlr.n

    @property
    def nblocks(self) -> int:
        return len(self._leaves)

    def block_range(self, i: int) -> slice:
        leaf = self._leaves[i]
        return slice(leaf.start, leaf.stop)

    def rank(self, i: int) -> int:
        """Skeleton rank of leaf row ``i`` (sum of restricted ancestor ranks)."""
        return self.bases[i].shape[1]

    def coupling(self, i: int, j: int) -> np.ndarray:
        return self._couplings[(i, j)]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Delegates to the HODLR matrix (the represented operators are equal)."""
        return self.hodlr.matvec(x)

    def __repr__(self) -> str:
        ranks = [self.rank(i) for i in range(self.nblocks)]
        return (
            f"HODLRLeafSystem(n={self.n}, nblocks={self.nblocks}, "
            f"ranks=[{min(ranks)}..{max(ranks)}])"
        )


@dataclass
class HODLRULVFactor(LeafULVSolveMixin):
    """Factors of the HODLR-ULV factorization (leaf-level ULV over the exact view).

    Attributes
    ----------
    hodlr:
        The factorized HODLR matrix.
    system:
        The exact leaf view the factorization ran on.
    bases / partials / merged_chol:
        The leaf-ULV factor stores, as in
        :class:`~repro.core.blr2_ulv.BLR2ULVFactor`.
    """

    hodlr: HODLRMatrix
    system: HODLRLeafSystem
    bases: Dict[int, np.ndarray] = field(default_factory=dict)
    partials: Dict[int, PartialCholeskyResult] = field(default_factory=dict)
    merged_chol: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))


def hodlr_ulv_factorize(
    hodlr: HODLRMatrix, *, system: HODLRLeafSystem = None
) -> HODLRULVFactor:
    """Factorize a symmetric positive definite HODLR matrix with the ULV algorithm.

    The sequential reference every task-graph backend is validated against.
    Pass ``system`` to reuse an already-built leaf view (the DTD driver does
    this so reference and task-graph runs share one view).

    Raises
    ------
    numpy.linalg.LinAlgError
        If a redundant diagonal block or the merged skeleton system is not
        positive definite (the HODLR approximation of an SPD matrix can lose
        definiteness when the compression error exceeds the smallest
        eigenvalue).
    """
    if system is None:
        system = HODLRLeafSystem(hodlr)
    return leaf_ulv_factorize_into(HODLRULVFactor(hodlr=hodlr, system=system), system)
