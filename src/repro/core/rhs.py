"""Right-hand-side validation shared by the ULV solvers.

Every solve entry point (the sequential ``HSSULVFactor.solve`` /
``BLR2ULVFactor.solve``, the task-graph drivers in :mod:`repro.solve` and the
:class:`~repro.api.HSSSolver` facade) accepts either a vector of length ``n``
or a matrix of shape ``(n, k)`` holding ``k`` right-hand sides.  This helper
normalizes both forms to a float64 ``(n, k)`` working copy and raises a clear
error for anything else, instead of letting a mis-shaped array surface as a
cryptic reshape/broadcast failure deep inside the leaf kernels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["check_rhs_shape", "validate_rhs"]


def check_rhs_shape(b: np.ndarray, n: int, *, name: str = "b") -> None:
    """Shape-validate a right-hand side without converting or copying it.

    Raises :class:`ValueError` for anything that is not a length-``n`` vector
    or an ``(n, k)`` matrix.  Use this for cheap fail-fast checks before
    expensive work; the converting/copying normalization lives in
    :func:`validate_rhs`.
    """
    shape = np.shape(b)
    if len(shape) not in (1, 2):
        raise ValueError(
            f"{name} must be a vector of length {n} or a matrix of shape "
            f"({n}, k); got a {len(shape)}-D array of shape {shape}"
        )
    if shape[0] != n:
        raise ValueError(
            f"{name} must have {n} rows to match the matrix; got shape {shape}"
        )


def validate_rhs(b: np.ndarray, n: int, *, name: str = "b") -> Tuple[np.ndarray, bool]:
    """Validate a right-hand side against a matrix of dimension ``n``.

    Parameters
    ----------
    b:
        A vector of length ``n`` or a matrix of shape ``(n, k)``.
    n:
        Dimension of the (square) system matrix.
    name:
        Argument name used in error messages.

    Returns
    -------
    (bm, single):
        ``bm`` is a float64 working copy of shape ``(n, k)`` (``k == 1`` for a
        vector input); ``single`` is True when the caller should flatten the
        solution back to a vector.

    Raises
    ------
    ValueError
        If ``b`` is not 1-D or 2-D, or its leading dimension is not ``n``.
    """
    check_rhs_shape(b, n, name=name)
    arr = np.asarray(b, dtype=np.float64)
    single = arr.ndim == 1
    return arr.reshape(n, -1).copy(), single
