"""Right-hand-side validation shared by the ULV solvers.

Every solve entry point (the sequential ``*ULVFactor.solve`` references, the
task-graph drivers in :mod:`repro.solve` and the
:class:`~repro.api.StructuredSolver` facade) accepts either a vector of
length ``n`` or a matrix of shape ``(n, k)`` holding ``k`` right-hand sides.
These helpers normalize both forms to a float64, C-contiguous ``(n, k)``
working copy -- accepting Fortran-ordered and non-contiguous views, and
copying only when the input does not already require a conversion -- and
raise a clear error for anything else (wrong dimensionality, wrong leading
dimension, or an empty 0-column block), instead of letting a mis-shaped array
surface as a cryptic reshape/broadcast failure deep inside the leaf kernels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["check_rhs_shape", "validate_rhs"]


def check_rhs_shape(b: np.ndarray, n: int, *, name: str = "b") -> None:
    """Shape-validate a right-hand side without converting or copying it.

    Raises :class:`ValueError` for anything that is not a length-``n`` vector
    or an ``(n, k)`` matrix with ``k >= 1``.  Use this for cheap fail-fast
    checks before expensive work; the converting/copying normalization lives
    in :func:`validate_rhs`.
    """
    shape = np.shape(b)
    if len(shape) not in (1, 2):
        raise ValueError(
            f"{name} must be a vector of length {n} or a matrix of shape "
            f"({n}, k); got a {len(shape)}-D array of shape {shape}"
        )
    if shape[0] != n:
        raise ValueError(
            f"{name} must have {n} rows to match the matrix; got shape {shape}"
        )
    if len(shape) == 2 and shape[1] == 0:
        raise ValueError(
            f"{name} has 0 columns (shape {shape}); a solve needs at least "
            "one right-hand side"
        )


def validate_rhs(b: np.ndarray, n: int, *, name: str = "b") -> Tuple[np.ndarray, bool]:
    """Validate a right-hand side against a matrix of dimension ``n``.

    Fortran-ordered and non-contiguous inputs are accepted and normalized
    (``np.ascontiguousarray`` is applied only when the layout requires it, so
    a conversion never copies twice).

    Parameters
    ----------
    b:
        A vector of length ``n`` or a matrix of shape ``(n, k)`` with
        ``k >= 1``; any memory layout.
    n:
        Dimension of the (square) system matrix.
    name:
        Argument name used in error messages.

    Returns
    -------
    (bm, single):
        ``bm`` is a float64, C-contiguous working copy of shape ``(n, k)``
        (``k == 1`` for a vector input) that never aliases ``b``; ``single``
        is True when the caller should flatten the solution back to a vector.

    Raises
    ------
    ValueError
        If ``b`` is not 1-D or 2-D, its leading dimension is not ``n``, or it
        has 0 columns.
    """
    check_rhs_shape(b, n, name=name)
    arr = np.asarray(b, dtype=np.float64)
    single = arr.ndim == 1
    # ascontiguousarray copies exactly when the layout (or the dtype
    # conversion above) demands it; the explicit copy below only triggers
    # when the working block still aliases the caller's array.
    bm = np.ascontiguousarray(arr).reshape(n, -1)
    if np.shares_memory(bm, np.asarray(b)):
        bm = bm.copy()
    return bm, single
