"""The paper's primary contribution: ULV factorization of structured matrices.

* :mod:`repro.core.partial_cholesky` -- the partial (RR-block) Cholesky step
  shared by all algorithms (Eq. 10-12).
* :mod:`repro.core.leaf_ulv` -- the format-agnostic single-level ULV core
  (Alg. 1) over any *leaf system* (shared bases + couplings per block row).
* :mod:`repro.core.blr2_ulv` -- BLR2-ULV: the leaf-ULV core bound to
  :class:`~repro.formats.blr2.BLR2Matrix`.
* :mod:`repro.core.hodlr_ulv` -- HODLR-ULV: the leaf-ULV core over the exact
  leaf view of a symmetric HODLR matrix.
* :mod:`repro.core.hss_ulv` -- multi-level HSS-ULV (Alg. 2), the sequential
  reference implementation.
* :mod:`repro.core.hss_ulv_dtd` / :mod:`repro.core.blr2_ulv_dtd` /
  :mod:`repro.core.hodlr_ulv_dtd` -- the same factorizations expressed as
  tasks of the DTD runtime (HATRIX-DTD, Sec. 4.2), recorded on the shared
  pipeline scaffold (:mod:`repro.pipeline`).

Every DTD entry point accepts ``execution="immediate" | "deferred" |
"parallel" | "distributed"``; backend dispatch is the single implementation
in :meth:`repro.pipeline.policy.ExecutionPolicy.execute`, and every backend
produces bit-identical factors to the sequential references.
"""

from repro.core.partial_cholesky import partial_cholesky
from repro.core.leaf_ulv import LeafULVSolveMixin, leaf_ulv_factorize_into
from repro.core.blr2_ulv import BLR2ULVFactor, blr2_ulv_factorize
from repro.core.blr2_ulv_dtd import blr2_ulv_factorize_dtd
from repro.core.hodlr_ulv import HODLRLeafSystem, HODLRULVFactor, hodlr_ulv_factorize
from repro.core.hodlr_ulv_dtd import hodlr_ulv_factorize_dtd
from repro.core.hss_ulv import HSSULVFactor, hss_ulv_factorize
from repro.core.hss_ulv_dtd import hss_ulv_factorize_dtd, build_hss_ulv_taskgraph

__all__ = [
    "partial_cholesky",
    "LeafULVSolveMixin",
    "leaf_ulv_factorize_into",
    "BLR2ULVFactor",
    "blr2_ulv_factorize",
    "blr2_ulv_factorize_dtd",
    "HODLRLeafSystem",
    "HODLRULVFactor",
    "hodlr_ulv_factorize",
    "hodlr_ulv_factorize_dtd",
    "HSSULVFactor",
    "hss_ulv_factorize",
    "hss_ulv_factorize_dtd",
    "build_hss_ulv_taskgraph",
]
