"""The paper's primary contribution: ULV factorization of BLR2 and HSS matrices.

* :mod:`repro.core.partial_cholesky` -- the partial (RR-block) Cholesky step
  shared by both algorithms (Eq. 10-12).
* :mod:`repro.core.blr2_ulv` -- single-level BLR2-ULV (Alg. 1).
* :mod:`repro.core.hss_ulv` -- multi-level HSS-ULV (Alg. 2), the sequential
  reference implementation.
* :mod:`repro.core.hss_ulv_dtd` -- HSS-ULV expressed as tasks of the DTD
  runtime (HATRIX-DTD, Sec. 4.2).
* :mod:`repro.core.blr2_ulv_dtd` -- BLR2-ULV expressed as tasks of the DTD
  runtime (single-level counterpart of HATRIX-DTD).

Both DTD entry points accept ``execution="immediate" | "deferred" | "parallel"``;
the parallel mode executes the recorded task graph out-of-order on a thread
pool (:func:`repro.runtime.executor.execute_graph`) and produces bit-identical
factors to the sequential references.
"""

from repro.core.partial_cholesky import partial_cholesky
from repro.core.blr2_ulv import BLR2ULVFactor, blr2_ulv_factorize
from repro.core.blr2_ulv_dtd import blr2_ulv_factorize_dtd
from repro.core.hss_ulv import HSSULVFactor, hss_ulv_factorize
from repro.core.hss_ulv_dtd import hss_ulv_factorize_dtd, build_hss_ulv_taskgraph

__all__ = [
    "partial_cholesky",
    "BLR2ULVFactor",
    "blr2_ulv_factorize",
    "blr2_ulv_factorize_dtd",
    "HSSULVFactor",
    "hss_ulv_factorize",
    "hss_ulv_factorize_dtd",
    "build_hss_ulv_taskgraph",
]
