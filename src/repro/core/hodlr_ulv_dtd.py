"""HODLR-ULV factorization expressed as DTD runtime tasks.

The scenario-diversity payoff of the pipeline layer: a HODLR matrix reaches
every execution backend through exactly the same leaf-ULV task graph the BLR2
format records (:class:`~repro.pipeline.factorize.LeafULVFactorizeBuilder`),
driven over the exact leaf view of
:class:`~repro.core.hodlr_ulv.HODLRLeafSystem`.  No HODLR-specific task kinds
exist; backend dispatch lives in
:meth:`repro.pipeline.policy.ExecutionPolicy.execute`; every backend produces
factors bit-identical to the sequential reference
(:func:`repro.core.hodlr_ulv.hodlr_ulv_factorize`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.hodlr_ulv import HODLRLeafSystem, HODLRULVFactor
from repro.distribution.strategies import DistributionStrategy
from repro.formats.hodlr import HODLRMatrix
from repro.pipeline.factorize import LeafULVFactorizeBuilder
from repro.pipeline.policy import resolve_policy
from repro.runtime.dtd import DTDRuntime

__all__ = ["hodlr_ulv_factorize_dtd"]


def hodlr_ulv_factorize_dtd(
    hodlr: HODLRMatrix,
    *,
    runtime: Optional[DTDRuntime] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    execute: bool = True,
    execution: Optional[str] = None,
    n_workers: int = 4,
    data_plane: Optional[str] = None,
    system: Optional[HODLRLeafSystem] = None,
) -> Tuple[HODLRULVFactor, DTDRuntime]:
    """Factorize a symmetric SPD HODLR matrix through the DTD runtime.

    Parameters mirror :func:`repro.core.hss_ulv_dtd.hss_ulv_factorize_dtd`;
    ``system`` optionally reuses an already-built
    :class:`~repro.core.hodlr_ulv.HODLRLeafSystem` (its construction is
    deterministic, so sharing one between the sequential reference and the
    task-graph runs is a convenience, not a correctness requirement).

    Returns ``(factor, runtime)``; the factor is only populated once the
    graph has been executed.
    """
    policy, runtime = resolve_policy(
        runtime, execution, nodes=nodes, distribution=distribution,
        n_workers=n_workers, data_plane=data_plane,
    )
    if system is None:
        system = HODLRLeafSystem(hodlr)
    builder = LeafULVFactorizeBuilder(
        system, HODLRULVFactor(hodlr=hodlr, system=system), policy=policy, runtime=runtime
    )
    if execute:
        builder.execute()
    else:
        builder.record()
    return builder.result(), builder.runtime
