"""HATRIX-DTD: the HSS-ULV factorization expressed as DTD runtime tasks (Sec. 4.2).

Two entry points are provided:

:func:`hss_ulv_factorize_dtd`
    Numerically factorizes an :class:`~repro.formats.hss.HSSMatrix` by
    inserting the diagonal-product / partial-factorization / merge tasks of
    Fig. 8 into a :class:`~repro.runtime.dtd.DTDRuntime`.  The result is
    bit-for-bit the same factorization as the sequential reference
    (:func:`repro.core.hss_ulv.hss_ulv_factorize`), plus the recorded task
    graph for inspection or simulation.

:func:`build_hss_ulv_taskgraph`
    Builds the same task graph *symbolically* from an
    :class:`~repro.formats.hss.HSSStructure` (block sizes and ranks only), so
    the distributed-machine simulator can replay paper-scale problems
    (N up to 262,144) without any numerical work.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.hss_ulv import HSSNodeFactor, HSSULVFactor
from repro.core.partial_cholesky import partial_cholesky
from repro.distribution.strategies import DistributionStrategy, RowCyclicDistribution
from repro.formats.hss import HSSMatrix, HSSStructure
from repro.lowrank.qr import full_orthogonal_basis
from repro.runtime.dtd import DTDRuntime, resolve_execution
from repro.runtime.flops import (
    flops_diag_product,
    flops_partial_factor,
    flops_potrf,
)
from repro.runtime.task import AccessMode

__all__ = ["hss_ulv_factorize_dtd", "build_hss_ulv_taskgraph"]


def _phase_of_level(level: int, max_level: int) -> int:
    """Phases increase as the factorization walks from the leaves to the root."""
    return max_level - level


def hss_ulv_factorize_dtd(
    hss: HSSMatrix,
    *,
    runtime: Optional[DTDRuntime] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    execute: bool = True,
    execution: Optional[str] = None,
    n_workers: int = 4,
) -> Tuple[HSSULVFactor, DTDRuntime]:
    """Factorize ``hss`` through the DTD runtime (HATRIX-DTD).

    Parameters
    ----------
    hss:
        The SPD HSS matrix to factorize.
    runtime:
        An existing runtime to insert into (default: a fresh runtime in the
        mode selected by ``execution``).  Mutually exclusive with
        ``execution``.
    nodes:
        Number of processes used for the data distribution: simulated ranks
        for graph inspection/simulation, real worker processes for
        ``execution="distributed"``.
    distribution:
        Distribution strategy for the block handles (default: the paper's
        row-cyclic distribution, Fig. 7).
    execute:
        If True (default) the inserted tasks are executed before returning.
        Pass False with a ``deferred`` runtime to take over execution
        yourself, e.g. through :meth:`~repro.runtime.dtd.DTDRuntime.run_parallel`
        or :func:`repro.runtime.executor.execute_graph`; the returned factor
        is only populated once the graph has been executed.
    execution:
        Execution mode when no ``runtime`` is supplied: ``"immediate"``
        (default; bodies run at insertion time), ``"deferred"`` (record first,
        then run sequentially), ``"parallel"`` (record first, then execute
        the graph out-of-order on a thread pool with ``n_workers`` threads) or
        ``"distributed"`` (record first, then execute across ``nodes`` forked
        worker processes with owner-computes placement and explicit,
        accounted data transfers).  All modes produce bit-identical factors.
    n_workers:
        Thread count for ``execution="parallel"``.

    Returns
    -------
    (factor, runtime):
        The ULV factor object and the runtime holding the recorded task graph.
        After ``execution="distributed"``, ``runtime.last_distributed_report``
        holds the measured communication ledger.
    """
    rt, mode = resolve_execution(runtime, execution)
    max_level = hss.max_level
    factor = HSSULVFactor(hss=hss)

    # Mutable stores the task bodies operate on.
    diag: Dict[Tuple[int, int], np.ndarray] = {}
    schur: Dict[Tuple[int, int], np.ndarray] = {}

    # Data handles.
    d_handle: Dict[Tuple[int, int], object] = {}
    s_handle: Dict[Tuple[int, int], object] = {}
    schur_handle: Dict[Tuple[int, int], object] = {}
    u_handle: Dict[Tuple[int, int], object] = {}

    for level in range(max_level, -1, -1):
        for i in range(2**level):
            m = hss.block_size(level, i)
            # The D/SCHUR handles are bound to the mutable stores so the
            # distributed backend can move their values between processes.
            d_handle[(level, i)] = rt.new_handle(
                f"D[{level};{i}]", nbytes=8 * m * m, level=level, row=i, max_level=max_level
            ).bind_item(diag, (level, i))
            if level > 0:
                node = hss.node(level, i)
                u_handle[(level, i)] = rt.new_handle(
                    f"U[{level};{i}]", nbytes=8 * m * node.rank, level=level, row=i, max_level=max_level
                )
                schur_handle[(level, i)] = rt.new_handle(
                    f"SCHUR[{level};{i}]",
                    nbytes=8 * node.rank * node.rank,
                    level=level,
                    row=i,
                    max_level=max_level,
                ).bind_item(schur, (level, i))
    for level in range(1, max_level + 1):
        for k in range(2 ** (level - 1)):
            ri = hss.node(level, 2 * k + 1).rank
            rj = hss.node(level, 2 * k).rank
            s_handle[(level, k)] = rt.new_handle(
                f"S[{level};{2 * k + 1},{2 * k}]",
                nbytes=8 * ri * rj,
                level=level,
                row=2 * k + 1,
                col=2 * k,
                max_level=max_level,
            )

    strategy = distribution if distribution is not None else RowCyclicDistribution(nodes, max_level=max_level)
    strategy.assign(rt.handles)

    # Seed the leaf diagonal blocks.
    for i in range(2**max_level):
        diag[(max_level, i)] = hss.node(max_level, i).D.copy()

    for level in range(max_level, 0, -1):
        phase = _phase_of_level(level, max_level)
        for i in range(2**level):
            node = hss.node(level, i)
            m = hss.block_size(level, i)

            def diag_product(level=level, i=i, node=node) -> None:
                u_full, _, _ = full_orthogonal_basis(node.U)
                factor.node_factors[(level, i)] = HSSNodeFactor(
                    U=u_full, rank=node.rank, partial=None  # type: ignore[arg-type]
                )
                diag[(level, i)] = u_full.T @ diag[(level, i)] @ u_full

            rt.insert_task(
                diag_product,
                [
                    (u_handle[(level, i)], AccessMode.READ),
                    (d_handle[(level, i)], AccessMode.RW),
                ],
                name=f"DIAG_PRODUCT[{level};{i}]",
                kind="DIAG_PRODUCT",
                flops=flops_diag_product(m),
                phase=phase,
            )

            def partial_factor(level=level, i=i, node=node) -> None:
                part = partial_cholesky(diag[(level, i)], node.rank)
                factor.node_factors[(level, i)].partial = part
                schur[(level, i)] = part.schur_ss

            rt.insert_task(
                partial_factor,
                [
                    (d_handle[(level, i)], AccessMode.RW),
                    (schur_handle[(level, i)], AccessMode.WRITE),
                ],
                name=f"PARTIAL_FACTOR[{level};{i}]",
                kind="PARTIAL_FACTOR",
                flops=flops_partial_factor(m, node.rank),
                phase=phase,
            )

        for k in range(2 ** (level - 1)):

            def merge(level=level, k=k) -> None:
                s = hss.coupling(level, 2 * k + 1, 2 * k)
                top = np.hstack([schur[(level, 2 * k)], s.T])
                bot = np.hstack([s, schur[(level, 2 * k + 1)]])
                diag[(level - 1, k)] = np.vstack([top, bot])

            rt.insert_task(
                merge,
                [
                    (schur_handle[(level, 2 * k)], AccessMode.READ),
                    (schur_handle[(level, 2 * k + 1)], AccessMode.READ),
                    (s_handle[(level, k)], AccessMode.READ),
                    (d_handle[(level - 1, k)], AccessMode.WRITE),
                ],
                name=f"MERGE[{level - 1};{k}]",
                kind="MERGE",
                flops=0.0,
                phase=phase,
            )

    def root_factor() -> None:
        factor.root_chol = np.linalg.cholesky(diag[(0, 0)])

    m0 = hss.block_size(0, 0)
    rt.insert_task(
        root_factor,
        [(d_handle[(0, 0)], AccessMode.RW)],
        name="ROOT_POTRF",
        kind="POTRF",
        flops=flops_potrf(m0),
        phase=_phase_of_level(0, max_level),
    )

    if execute:
        if mode == "distributed":

            def _collect():
                # Runs inside each worker: ship back the factor pieces its
                # local tasks produced (an entry is complete once its
                # PARTIAL_FACTOR has run, which happens on the D-block owner).
                return {
                    "node_factors": {
                        k: v for k, v in factor.node_factors.items() if v.partial is not None
                    },
                    "root_chol": factor.root_chol if factor.root_chol.size else None,
                }

            report = rt.run_distributed(nodes=nodes, strategy=strategy, collect=_collect)
            for frag in report.fragments:
                factor.node_factors.update(frag["node_factors"])
                if frag["root_chol"] is not None:
                    factor.root_chol = frag["root_chol"]
        elif mode == "parallel":
            rt.run_parallel(n_workers=n_workers)
        else:
            rt.run()
    return factor, rt


def build_hss_ulv_taskgraph(
    structure: HSSStructure,
    *,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    runtime: Optional[DTDRuntime] = None,
) -> DTDRuntime:
    """Build the HSS-ULV task graph symbolically from a structural description.

    The graph has exactly the same tasks, dependencies, flop counts and
    communication volumes as :func:`hss_ulv_factorize_dtd` would record, but
    no numerical payloads -- suitable for simulating paper-scale problems.
    """
    rt = runtime if runtime is not None else DTDRuntime(execution="symbolic")
    max_level = structure.max_level

    d_handle: Dict[Tuple[int, int], object] = {}
    s_handle: Dict[Tuple[int, int], object] = {}
    schur_handle: Dict[Tuple[int, int], object] = {}
    u_handle: Dict[Tuple[int, int], object] = {}

    for level in range(max_level, -1, -1):
        for i in range(structure.num_blocks(level)):
            m = structure.block_size(level, i)
            d_handle[(level, i)] = rt.new_handle(
                f"D[{level};{i}]", nbytes=8 * m * m, level=level, row=i, max_level=max_level
            )
            if level > 0:
                r = structure.rank(level, i)
                u_handle[(level, i)] = rt.new_handle(
                    f"U[{level};{i}]", nbytes=8 * m * r, level=level, row=i, max_level=max_level
                )
                schur_handle[(level, i)] = rt.new_handle(
                    f"SCHUR[{level};{i}]", nbytes=8 * r * r, level=level, row=i, max_level=max_level
                )
    for level in range(1, max_level + 1):
        for k in range(2 ** (level - 1)):
            ri = structure.rank(level, 2 * k + 1)
            rj = structure.rank(level, 2 * k)
            s_handle[(level, k)] = rt.new_handle(
                f"S[{level};{2 * k + 1},{2 * k}]",
                nbytes=8 * ri * rj,
                level=level,
                row=2 * k + 1,
                col=2 * k,
                max_level=max_level,
            )

    strategy = distribution if distribution is not None else RowCyclicDistribution(nodes, max_level=max_level)
    strategy.assign(rt.handles)

    for level in range(max_level, 0, -1):
        phase = _phase_of_level(level, max_level)
        for i in range(structure.num_blocks(level)):
            m = structure.block_size(level, i)
            r = structure.rank(level, i)
            rt.insert_task(
                None,
                [
                    (u_handle[(level, i)], AccessMode.READ),
                    (d_handle[(level, i)], AccessMode.RW),
                ],
                name=f"DIAG_PRODUCT[{level};{i}]",
                kind="DIAG_PRODUCT",
                flops=flops_diag_product(m),
                phase=phase,
            )
            rt.insert_task(
                None,
                [
                    (d_handle[(level, i)], AccessMode.RW),
                    (schur_handle[(level, i)], AccessMode.WRITE),
                ],
                name=f"PARTIAL_FACTOR[{level};{i}]",
                kind="PARTIAL_FACTOR",
                flops=flops_partial_factor(m, r),
                phase=phase,
            )
        for k in range(2 ** (level - 1)):
            rt.insert_task(
                None,
                [
                    (schur_handle[(level, 2 * k)], AccessMode.READ),
                    (schur_handle[(level, 2 * k + 1)], AccessMode.READ),
                    (s_handle[(level, k)], AccessMode.READ),
                    (d_handle[(level - 1, k)], AccessMode.WRITE),
                ],
                name=f"MERGE[{level - 1};{k}]",
                kind="MERGE",
                flops=0.0,
                phase=phase,
            )

    m0 = structure.block_size(0, 0)
    rt.insert_task(
        None,
        [(d_handle[(0, 0)], AccessMode.RW)],
        name="ROOT_POTRF",
        kind="POTRF",
        flops=flops_potrf(m0),
        phase=_phase_of_level(0, max_level),
    )
    return rt
