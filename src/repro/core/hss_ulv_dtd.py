"""HATRIX-DTD: the HSS-ULV factorization expressed as DTD runtime tasks (Sec. 4.2).

Two entry points are provided:

:func:`hss_ulv_factorize_dtd`
    Numerically factorizes an :class:`~repro.formats.hss.HSSMatrix` by
    recording the diagonal-product / partial-factorization / merge task graph
    of Fig. 8 through the pipeline scaffold
    (:class:`~repro.pipeline.factorize.HSSULVFactorizeBuilder`) and executing
    it on the backend named by ``execution`` -- backend dispatch lives in
    :meth:`repro.pipeline.policy.ExecutionPolicy.execute`, shared with every
    other format.  The result is bit-for-bit the same factorization as the
    sequential reference (:func:`repro.core.hss_ulv.hss_ulv_factorize`), plus
    the recorded task graph for inspection or simulation.

:func:`build_hss_ulv_taskgraph`
    Builds the same task graph *symbolically* from an
    :class:`~repro.formats.hss.HSSStructure` (block sizes and ranks only), so
    the distributed-machine simulator can replay paper-scale problems
    (N up to 262,144) without any numerical work.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.hss_ulv import HSSULVFactor
from repro.distribution.strategies import DistributionStrategy, RowCyclicDistribution
from repro.formats.hss import HSSMatrix, HSSStructure
from repro.pipeline.factorize import HSSULVFactorizeBuilder
from repro.pipeline.policy import resolve_policy
from repro.runtime.dtd import DTDRuntime
from repro.runtime.flops import (
    flops_diag_product,
    flops_partial_factor,
    flops_potrf,
)
from repro.runtime.task import AccessMode

__all__ = ["hss_ulv_factorize_dtd", "build_hss_ulv_taskgraph"]


def _phase_of_level(level: int, max_level: int) -> int:
    """Phases increase as the factorization walks from the leaves to the root."""
    return max_level - level


def hss_ulv_factorize_dtd(
    hss: HSSMatrix,
    *,
    runtime: Optional[DTDRuntime] = None,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    execute: bool = True,
    execution: Optional[str] = None,
    n_workers: int = 4,
    data_plane: Optional[str] = None,
) -> Tuple[HSSULVFactor, DTDRuntime]:
    """Factorize ``hss`` through the DTD runtime (HATRIX-DTD).

    Parameters
    ----------
    hss:
        The SPD HSS matrix to factorize.
    runtime:
        An existing runtime to insert into (default: a fresh runtime in the
        mode selected by ``execution``).  Mutually exclusive with
        ``execution``.
    nodes:
        Number of processes used for the data distribution: simulated ranks
        for graph inspection/simulation, real worker processes for
        ``execution="distributed"``.
    distribution:
        Distribution strategy for the block handles (default: the paper's
        row-cyclic distribution, Fig. 7).
    execute:
        If True (default) the inserted tasks are executed before returning.
        Pass False with a ``deferred`` runtime to take over execution
        yourself, e.g. through :meth:`~repro.runtime.dtd.DTDRuntime.run_parallel`
        or :func:`repro.runtime.executor.execute_graph`; the returned factor
        is only populated once the graph has been executed.
    execution:
        Execution mode when no ``runtime`` is supplied: ``"immediate"``
        (default; bodies run at insertion time), ``"deferred"`` (record first,
        then run sequentially), ``"parallel"`` (record first, then execute
        the graph out-of-order on a thread pool with ``n_workers`` threads) or
        ``"distributed"`` (record first, then execute across ``nodes`` forked
        worker processes with owner-computes placement and explicit,
        accounted data transfers).  All modes produce bit-identical factors.
    n_workers:
        Thread count for ``execution="parallel"``.
    data_plane:
        Wire representation for ``execution="distributed"``: ``"shm"``
        (zero-copy shared-memory segments, the default) or ``"pickle"``
        (full pickled payloads).  Both planes are bit-identical.

    Returns
    -------
    (factor, runtime):
        The ULV factor object and the runtime holding the recorded task graph.
        After ``execution="distributed"``, ``runtime.last_distributed_report``
        holds the measured communication ledger.
    """
    policy, runtime = resolve_policy(
        runtime, execution, nodes=nodes, distribution=distribution,
        n_workers=n_workers, data_plane=data_plane,
    )
    builder = HSSULVFactorizeBuilder(hss, policy=policy, runtime=runtime)
    if execute:
        builder.execute()
    else:
        builder.record()
    return builder.result(), builder.runtime


def build_hss_ulv_taskgraph(
    structure: HSSStructure,
    *,
    nodes: int = 1,
    distribution: Optional[DistributionStrategy] = None,
    runtime: Optional[DTDRuntime] = None,
) -> DTDRuntime:
    """Build the HSS-ULV task graph symbolically from a structural description.

    The graph has exactly the same tasks, dependencies, flop counts and
    communication volumes as :func:`hss_ulv_factorize_dtd` would record, but
    no numerical payloads -- suitable for simulating paper-scale problems.
    """
    rt = runtime if runtime is not None else DTDRuntime(execution="symbolic")
    max_level = structure.max_level

    d_handle: Dict[Tuple[int, int], object] = {}
    s_handle: Dict[Tuple[int, int], object] = {}
    schur_handle: Dict[Tuple[int, int], object] = {}
    u_handle: Dict[Tuple[int, int], object] = {}

    for level in range(max_level, -1, -1):
        for i in range(structure.num_blocks(level)):
            m = structure.block_size(level, i)
            d_handle[(level, i)] = rt.new_handle(
                f"D[{level};{i}]", nbytes=8 * m * m, level=level, row=i, max_level=max_level
            )
            if level > 0:
                r = structure.rank(level, i)
                u_handle[(level, i)] = rt.new_handle(
                    f"U[{level};{i}]", nbytes=8 * m * r, level=level, row=i, max_level=max_level
                )
                schur_handle[(level, i)] = rt.new_handle(
                    f"SCHUR[{level};{i}]", nbytes=8 * r * r, level=level, row=i, max_level=max_level
                )
    for level in range(1, max_level + 1):
        for k in range(2 ** (level - 1)):
            ri = structure.rank(level, 2 * k + 1)
            rj = structure.rank(level, 2 * k)
            s_handle[(level, k)] = rt.new_handle(
                f"S[{level};{2 * k + 1},{2 * k}]",
                nbytes=8 * ri * rj,
                level=level,
                row=2 * k + 1,
                col=2 * k,
                max_level=max_level,
            )

    strategy = distribution if distribution is not None else RowCyclicDistribution(nodes, max_level=max_level)
    strategy.assign(rt.handles)

    for level in range(max_level, 0, -1):
        phase = _phase_of_level(level, max_level)
        for i in range(structure.num_blocks(level)):
            m = structure.block_size(level, i)
            r = structure.rank(level, i)
            rt.insert_task(
                None,
                [
                    (u_handle[(level, i)], AccessMode.READ),
                    (d_handle[(level, i)], AccessMode.RW),
                ],
                name=f"DIAG_PRODUCT[{level};{i}]",
                kind="DIAG_PRODUCT",
                flops=flops_diag_product(m),
                phase=phase,
            )
            rt.insert_task(
                None,
                [
                    (d_handle[(level, i)], AccessMode.RW),
                    (schur_handle[(level, i)], AccessMode.WRITE),
                ],
                name=f"PARTIAL_FACTOR[{level};{i}]",
                kind="PARTIAL_FACTOR",
                flops=flops_partial_factor(m, r),
                phase=phase,
            )
        for k in range(2 ** (level - 1)):
            rt.insert_task(
                None,
                [
                    (schur_handle[(level, 2 * k)], AccessMode.READ),
                    (schur_handle[(level, 2 * k + 1)], AccessMode.READ),
                    (s_handle[(level, k)], AccessMode.READ),
                    (d_handle[(level - 1, k)], AccessMode.WRITE),
                ],
                name=f"MERGE[{level - 1};{k}]",
                kind="MERGE",
                flops=0.0,
                phase=phase,
            )

    m0 = structure.block_size(0, 0)
    rt.insert_task(
        None,
        [(d_handle[(0, 0)], AccessMode.RW)],
        name="ROOT_POTRF",
        kind="POTRF",
        flops=flops_potrf(m0),
        phase=_phase_of_level(0, max_level),
    )
    return rt
