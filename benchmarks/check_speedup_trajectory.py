"""Guard the recorded speedup trajectory against regressions.

Thin CLI over :mod:`repro.obs.trajectory`: compares a freshly measured
benchmark artifact (written by the benchmark suite under
``REPRO_BENCH_JSON``) against the committed ``benchmarks/BENCH_runtime.json``
and fails when a parallel/process speedup, a concurrent-backend solve
throughput (``solve_throughput`` rows, solves/sec) or an end-to-end HTTP
serving throughput (``serve_load`` rows, solves/sec through the running
``repro serve`` server) regressed past the tolerance, when a recorded
observability overhead fraction (traced, traced+metered) exceeds
``--max-trace-overhead``, or when the zero-copy data plane's wire-byte
savings over the pickle plane (``distributed_weak_scaling`` per-plane rows)
drop below ``--min-comm-savings``.  Used by the ``speedup-smoke`` /
``trace-smoke`` / ``metrics-smoke`` / ``distributed-smoke`` /
``serve-smoke`` CI jobs::

    REPRO_BENCH_JSON=/tmp/bench-current.json PYTHONPATH=src \
        python -m pytest benchmarks/test_compress_scaling.py \
                         benchmarks/test_runtime_parallel_speedup.py -q
    python benchmarks/check_speedup_trajectory.py /tmp/bench-current.json

See the trajectory module for the matching and tolerance semantics (rows
match on section/format/backend/fusion; same-size same-core-count rows gate
at ``--tolerance``, anything cross-size or cross-machine at the lenient
``--cross-size-tolerance``; machine stamps are read backfill-tolerantly).
Failures print a readable diff of every offending row before the non-zero
exit.

The committed baseline itself is validated on every run (overhead
fractions within the limit, raw-sample spreads within
``--max-sample-spread``): a disturbed run committed as the baseline fails
every gate run loudly instead of silently lowering the floors.  Before
*replacing* ``benchmarks/BENCH_runtime.json`` with a freshly recorded
artifact, validate the refresh::

    python benchmarks/check_speedup_trajectory.py --refresh /tmp/bench-new.json

which additionally requires parity or better (``--refresh-tolerance``,
default 0.9 of every stored gated value on the same machine class) so a
slower-but-committed run can never ratchet the regression floors looser.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Runnable without PYTHONPATH=src (the CI jobs invoke it bare).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.trajectory import (  # noqa: E402
    GATED_BACKENDS,
    SECTIONS,
    check_refresh,
    check_trajectory,
)

__all__ = ["SECTIONS", "GATED_BACKENDS", "main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly measured benchmark JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_runtime.json",
        help="committed trajectory to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fraction of the stored speedup a same-size row must reach",
    )
    parser.add_argument(
        "--cross-size-tolerance",
        type=float,
        default=0.25,
        help="fraction required when the stored row measured a different n "
        "or a different core count",
    )
    parser.add_argument(
        "--max-trace-overhead",
        type=float,
        default=0.03,
        help="largest tolerated observability overhead fraction (applies to "
        "both the traced and the traced+metered measurements)",
    )
    parser.add_argument(
        "--min-comm-savings",
        type=float,
        default=10.0,
        help="floor on the zero-copy data plane's physical-byte savings "
        "factor over the pickle plane (distributed_weak_scaling rows)",
    )
    parser.add_argument(
        "--max-sample-spread",
        type=float,
        default=2.0,
        help="largest tolerated max/min spread of any raw *_samples list "
        "(hard failure for the committed baseline and --refresh candidates, "
        "warning for fresh measurements)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="validate CURRENT as a proposed replacement for the committed "
        "baseline instead of gating it: the candidate must be baseline-clean "
        "and at parity or better with the stored trajectory",
    )
    parser.add_argument(
        "--refresh-tolerance",
        type=float,
        default=0.9,
        help="with --refresh: fraction of every stored gated value a "
        "same-machine-class candidate row must reach",
    )
    args = parser.parse_args(argv)
    if args.refresh:
        result = check_refresh(
            args.current,
            args.baseline,
            refresh_tolerance=args.refresh_tolerance,
            cross_size_tolerance=args.cross_size_tolerance,
            max_trace_overhead=args.max_trace_overhead,
            min_comm_savings=args.min_comm_savings,
            max_sample_spread=args.max_sample_spread,
        )
    else:
        result = check_trajectory(
            args.current,
            args.baseline,
            tolerance=args.tolerance,
            cross_size_tolerance=args.cross_size_tolerance,
            max_trace_overhead=args.max_trace_overhead,
            min_comm_savings=args.min_comm_savings,
            max_sample_spread=args.max_sample_spread,
        )
    for line in result.lines:
        print(line)
    print()
    print(result.summary())
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
