"""Guard the recorded speedup trajectory against regressions.

Compares a freshly measured benchmark artifact (written by the benchmark
suite under ``REPRO_BENCH_JSON``) against the committed
``benchmarks/BENCH_runtime.json`` and fails when a parallel/process speedup
regressed past the tolerance.  Used by the ``speedup-smoke`` CI job::

    REPRO_BENCH_JSON=/tmp/bench-current.json PYTHONPATH=src \
        python -m pytest benchmarks/test_compress_scaling.py \
                         benchmarks/test_runtime_parallel_speedup.py -q
    python benchmarks/check_speedup_trajectory.py /tmp/bench-current.json

Rows match on ``(section, format, backend, fusion)``; only the concurrent
backends (``thread``/``parallel``/``process``) gate, since that is the
trajectory the north star tracks.  Absolute speedups are machine- and
size-dependent, so the check is deliberately lenient: a current row must
reach ``--tolerance`` (default 0.5) of the stored speedup when both runs
measured the same problem size, and a looser ``--cross-size-tolerance``
(default 0.25) when the committed trajectory was recorded at another size
(e.g. a quick CI sweep against a committed ``REPRO_FULL=1`` artifact).
Missing baselines, sections or rows are reported but never fail the check --
the guard only ever compares what both artifacts actually measured.

When the current artifact carries a ``trace_overhead`` section (written by
``benchmarks/test_trace_overhead.py``), the recorded traced-vs-untraced
overhead fraction is additionally gated against ``--max-trace-overhead``
(default 3%): measured tracing must stay cheap enough to leave the timings
it explains unperturbed.

Failures print a readable diff of every offending row (stored vs current
speedup, the floor it missed, and the shortfall) before the non-zero exit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, Tuple

#: Sections carrying speedup rows, with the per-row key fields.
SECTIONS = ("parallel_speedup", "compress_scaling")

#: Backends whose speedup trajectory gates the check.
GATED_BACKENDS = ("thread", "parallel", "process")


def _load(path: Path) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object, got {type(data).__name__}")
    return data


def _speedup_rows(section: Dict) -> Iterator[Tuple[Tuple, float, int]]:
    """Yield ``(key, speedup, n)`` per gated row of one benchmark section."""
    n = int(section.get("n", 0))
    for row in section.get("rows", ()):
        backend = row.get("backend")
        if backend not in GATED_BACKENDS or "speedup" not in row:
            continue
        key = (row.get("format"), backend, bool(row.get("fusion", False)))
        yield key, float(row["speedup"]), int(row.get("n", n))


def _check_trace_overhead(current: Dict, max_trace_overhead: float) -> Iterator[str]:
    """Yield one failure line per violated trace-overhead bound."""
    section = current.get("trace_overhead")
    if not isinstance(section, dict):
        print("section 'trace_overhead': not in the current artifact, skipped")
        return
    fraction = section.get("overhead_fraction")
    if not isinstance(fraction, (int, float)):
        print("section 'trace_overhead': no overhead_fraction recorded, skipped")
        return
    verdict = "ok" if fraction <= max_trace_overhead else "TOO EXPENSIVE"
    print(
        f"trace_overhead: measured {fraction * 100:+.2f}% "
        f"(untraced {section.get('untraced_best', float('nan')):.4f}s vs "
        f"traced {section.get('traced_best', float('nan')):.4f}s, "
        f"n={section.get('n')}, best of {section.get('repeats')}) "
        f"<= limit {max_trace_overhead * 100:.1f}% -> {verdict}"
    )
    if fraction > max_trace_overhead:
        yield (
            f"trace_overhead: {fraction * 100:+.2f}% exceeds the "
            f"{max_trace_overhead * 100:.1f}% limit "
            f"(untraced {section.get('untraced_best')}s, traced {section.get('traced_best')}s)"
        )


def check(
    current_path: Path,
    baseline_path: Path,
    *,
    tolerance: float,
    cross_size_tolerance: float,
    max_trace_overhead: float = 0.03,
) -> int:
    current = _load(current_path)
    failures: list = []
    compared = 0

    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; skipping speedup comparison")
        baseline = {}
    else:
        baseline = _load(baseline_path)

    for name in SECTIONS:
        cur_section = current.get(name)
        base_section = baseline.get(name)
        if not isinstance(cur_section, dict) or not isinstance(base_section, dict):
            print(f"section {name!r}: missing on one side, skipped")
            continue
        base_rows = {key: (s, n) for key, s, n in _speedup_rows(base_section)}
        for key, cur_speedup, cur_n in _speedup_rows(cur_section):
            if key not in base_rows:
                continue
            base_speedup, base_n = base_rows[key]
            if base_speedup <= 0:
                continue
            tol = tolerance if cur_n == base_n else cross_size_tolerance
            floor = tol * base_speedup
            compared += 1
            verdict = "ok" if cur_speedup >= floor else "REGRESSED"
            print(
                f"{name} {key}: current {cur_speedup:.2f}x (n={cur_n}) vs "
                f"stored {base_speedup:.2f}x (n={base_n}), floor {floor:.2f}x "
                f"-> {verdict}"
            )
            if cur_speedup < floor:
                fmt, backend, fusion = key
                failures.append(
                    f"{name}: format={fmt} backend={backend} fusion={fusion} "
                    f"n={cur_n}: current {cur_speedup:.2f}x < floor {floor:.2f}x "
                    f"(stored {base_speedup:.2f}x at n={base_n}, "
                    f"short by {(floor - cur_speedup) / floor * 100:.0f}%)"
                )

    failures.extend(_check_trace_overhead(current, max_trace_overhead))

    if failures:
        print(f"\n{len(failures)} benchmark gate failure(s):")
        for line in failures:
            print(f"  {line}")
        return 1
    if not compared:
        print("no comparable speedup rows between the two artifacts")
        return 0
    print(f"\nall {compared} compared speedups within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly measured benchmark JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_runtime.json",
        help="committed trajectory to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fraction of the stored speedup a same-size row must reach",
    )
    parser.add_argument(
        "--cross-size-tolerance",
        type=float,
        default=0.25,
        help="fraction required when the stored row measured a different n",
    )
    parser.add_argument(
        "--max-trace-overhead",
        type=float,
        default=0.03,
        help="largest tolerated traced-vs-untraced overhead fraction",
    )
    args = parser.parse_args(argv)
    return check(
        args.current,
        args.baseline,
        tolerance=args.tolerance,
        cross_size_tolerance=args.cross_size_tolerance,
        max_trace_overhead=args.max_trace_overhead,
    )


if __name__ == "__main__":
    sys.exit(main())
