"""Guard the recorded speedup trajectory against regressions.

Thin CLI over :mod:`repro.obs.trajectory`: compares a freshly measured
benchmark artifact (written by the benchmark suite under
``REPRO_BENCH_JSON``) against the committed ``benchmarks/BENCH_runtime.json``
and fails when a parallel/process speedup or a concurrent-backend solve
throughput (``solve_throughput`` rows, solves/sec) regressed past the
tolerance, when a recorded observability overhead fraction (traced,
traced+metered) exceeds ``--max-trace-overhead``, or when the zero-copy
data plane's wire-byte savings over the pickle plane
(``distributed_weak_scaling`` per-plane rows) drop below
``--min-comm-savings``.  Used by the ``speedup-smoke`` /
``trace-smoke`` / ``metrics-smoke`` / ``distributed-smoke`` CI jobs::

    REPRO_BENCH_JSON=/tmp/bench-current.json PYTHONPATH=src \
        python -m pytest benchmarks/test_compress_scaling.py \
                         benchmarks/test_runtime_parallel_speedup.py -q
    python benchmarks/check_speedup_trajectory.py /tmp/bench-current.json

See the trajectory module for the matching and tolerance semantics (rows
match on section/format/backend/fusion; same-size same-core-count rows gate
at ``--tolerance``, anything cross-size or cross-machine at the lenient
``--cross-size-tolerance``; machine stamps are read backfill-tolerantly).
Failures print a readable diff of every offending row before the non-zero
exit.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Runnable without PYTHONPATH=src (the CI jobs invoke it bare).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.trajectory import (  # noqa: E402
    GATED_BACKENDS,
    SECTIONS,
    check_trajectory,
)

__all__ = ["SECTIONS", "GATED_BACKENDS", "main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly measured benchmark JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_runtime.json",
        help="committed trajectory to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fraction of the stored speedup a same-size row must reach",
    )
    parser.add_argument(
        "--cross-size-tolerance",
        type=float,
        default=0.25,
        help="fraction required when the stored row measured a different n "
        "or a different core count",
    )
    parser.add_argument(
        "--max-trace-overhead",
        type=float,
        default=0.03,
        help="largest tolerated observability overhead fraction (applies to "
        "both the traced and the traced+metered measurements)",
    )
    parser.add_argument(
        "--min-comm-savings",
        type=float,
        default=10.0,
        help="floor on the zero-copy data plane's physical-byte savings "
        "factor over the pickle plane (distributed_weak_scaling rows)",
    )
    args = parser.parse_args(argv)
    result = check_trajectory(
        args.current,
        args.baseline,
        tolerance=args.tolerance,
        cross_size_tolerance=args.cross_size_tolerance,
        max_trace_overhead=args.max_trace_overhead,
        min_comm_savings=args.min_comm_savings,
    )
    for line in result.lines:
        print(line)
    print()
    print(result.summary())
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
