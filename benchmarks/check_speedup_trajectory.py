"""Guard the recorded speedup trajectory against regressions.

Compares a freshly measured benchmark artifact (written by the benchmark
suite under ``REPRO_BENCH_JSON``) against the committed
``benchmarks/BENCH_runtime.json`` and fails when a parallel/process speedup
regressed past the tolerance.  Used by the ``speedup-smoke`` CI job::

    REPRO_BENCH_JSON=/tmp/bench-current.json PYTHONPATH=src \
        python -m pytest benchmarks/test_compress_scaling.py \
                         benchmarks/test_runtime_parallel_speedup.py -q
    python benchmarks/check_speedup_trajectory.py /tmp/bench-current.json

Rows match on ``(section, format, backend, fusion)``; only the concurrent
backends (``thread``/``parallel``/``process``) gate, since that is the
trajectory the north star tracks.  Absolute speedups are machine- and
size-dependent, so the check is deliberately lenient: a current row must
reach ``--tolerance`` (default 0.5) of the stored speedup when both runs
measured the same problem size, and a looser ``--cross-size-tolerance``
(default 0.25) when the committed trajectory was recorded at another size
(e.g. a quick CI sweep against a committed ``REPRO_FULL=1`` artifact).
Missing baselines, sections or rows are reported but never fail the check --
the guard only ever compares what both artifacts actually measured.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, Tuple

#: Sections carrying speedup rows, with the per-row key fields.
SECTIONS = ("parallel_speedup", "compress_scaling")

#: Backends whose speedup trajectory gates the check.
GATED_BACKENDS = ("thread", "parallel", "process")


def _load(path: Path) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object, got {type(data).__name__}")
    return data


def _speedup_rows(section: Dict) -> Iterator[Tuple[Tuple, float, int]]:
    """Yield ``(key, speedup, n)`` per gated row of one benchmark section."""
    n = int(section.get("n", 0))
    for row in section.get("rows", ()):
        backend = row.get("backend")
        if backend not in GATED_BACKENDS or "speedup" not in row:
            continue
        key = (row.get("format"), backend, bool(row.get("fusion", False)))
        yield key, float(row["speedup"]), int(row.get("n", n))


def check(
    current_path: Path,
    baseline_path: Path,
    *,
    tolerance: float,
    cross_size_tolerance: float,
) -> int:
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; nothing to compare")
        return 0
    current = _load(current_path)
    baseline = _load(baseline_path)

    failures = []
    compared = 0
    for name in SECTIONS:
        cur_section = current.get(name)
        base_section = baseline.get(name)
        if not isinstance(cur_section, dict) or not isinstance(base_section, dict):
            print(f"section {name!r}: missing on one side, skipped")
            continue
        base_rows = {key: (s, n) for key, s, n in _speedup_rows(base_section)}
        for key, cur_speedup, cur_n in _speedup_rows(cur_section):
            if key not in base_rows:
                continue
            base_speedup, base_n = base_rows[key]
            if base_speedup <= 0:
                continue
            tol = tolerance if cur_n == base_n else cross_size_tolerance
            floor = tol * base_speedup
            compared += 1
            verdict = "ok" if cur_speedup >= floor else "REGRESSED"
            print(
                f"{name} {key}: current {cur_speedup:.2f}x (n={cur_n}) vs "
                f"stored {base_speedup:.2f}x (n={base_n}), floor {floor:.2f}x "
                f"-> {verdict}"
            )
            if cur_speedup < floor:
                failures.append((name, key, cur_speedup, floor))

    if not compared:
        print("no comparable speedup rows between the two artifacts")
        return 0
    if failures:
        print(f"\n{len(failures)} speedup regression(s) past tolerance:")
        for name, key, speedup, floor in failures:
            print(f"  {name} {key}: {speedup:.2f}x < floor {floor:.2f}x")
        return 1
    print(f"\nall {compared} compared speedups within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly measured benchmark JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_runtime.json",
        help="committed trajectory to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fraction of the stored speedup a same-size row must reach",
    )
    parser.add_argument(
        "--cross-size-tolerance",
        type=float,
        default=0.25,
        help="fraction required when the stored row measured a different n",
    )
    args = parser.parse_args(argv)
    return check(
        args.current,
        args.baseline,
        tolerance=args.tolerance,
        cross_size_tolerance=args.cross_size_tolerance,
    )


if __name__ == "__main__":
    sys.exit(main())
