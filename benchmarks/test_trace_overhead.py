"""Benchmark: measured observability must be near-free on the hot path.

The tracing layer only appends raw stamp tuples while tasks run and builds
:class:`~repro.runtime.tracing.TaskSpan` objects after the run, and the
metrics registry consumes those same stamps post-run, so enabling either
should not perturb the very timings they exist to explain.  This benchmark
executes the same recorded HSS-ULV task graph on the thread pool three ways
-- bare, traced, and traced with a :class:`~repro.obs.MetricsRegistry`
attached -- interleaved per repeat so machine drift hits all arms alike, and
records the deltas (with the raw per-repeat samples) into
``BENCH_runtime.json``.  The CI gate
(``benchmarks/check_speedup_trajectory.py --max-trace-overhead``) fails the
trajectory check when either recorded overhead fraction exceeds 3%.

The in-test assertion is deliberately looser (10%) than the recorded 3%
claim: a loaded container can add noise past any tight threshold, and the
trajectory check is where the gate belongs.
"""

import time

from bench_utils import bench_repeats, full_scale, print_table, record_bench

from repro.core.hss_ulv_dtd import hss_ulv_factorize_dtd
from repro.formats.hss import build_hss
from repro.geometry.points import uniform_grid_2d
from repro.kernels.assembly import KernelMatrix
from repro.kernels.greens import kernel_by_name
from repro.obs import MetricsRegistry

N = 4096 if full_scale() else 2048
WORKERS = 4
REPEATS = max(bench_repeats(), 5)


def _measure():
    kmat = KernelMatrix(kernel_by_name("yukawa"), uniform_grid_2d(N))
    matrix = build_hss(kmat, leaf_size=256, max_rank=60)

    def record(trace, metrics=None):
        # Fresh graph per run: an executed graph cannot run again.
        _, rt = hss_ulv_factorize_dtd(matrix, execution="deferred", execute=False)
        rt.trace = trace
        rt.metrics = metrics
        return rt

    untraced = []
    traced = []
    metered = []
    num_spans = 0
    num_tasks = 0
    for _ in range(REPEATS):
        rt = record(False)
        t0 = time.perf_counter()
        rt.run_parallel(n_workers=WORKERS)
        untraced.append(time.perf_counter() - t0)
        assert rt.last_trace is None

        rt = record(True)
        t0 = time.perf_counter()
        rt.run_parallel(n_workers=WORKERS)
        traced.append(time.perf_counter() - t0)
        assert rt.last_trace is not None
        num_spans = len(rt.last_trace.spans)
        num_tasks = rt.num_tasks

        registry = MetricsRegistry()
        rt = record(True, metrics=registry)
        t0 = time.perf_counter()
        rt.run_parallel(n_workers=WORKERS)
        metered.append(time.perf_counter() - t0)
        assert rt.last_trace is not None
        assert registry.value(
            "repro_tasks_executed_total", backend="parallel"
        ) == num_tasks
    return untraced, traced, metered, num_spans, num_tasks


def test_trace_overhead(benchmark):
    untraced, traced, metered, num_spans, num_tasks = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    best_untraced = min(untraced)
    best_traced = min(traced)
    best_metered = min(metered)
    overhead_fraction = (best_traced - best_untraced) / best_untraced
    metered_overhead_fraction = (best_metered - best_untraced) / best_untraced
    print_table(
        f"Observability overhead (HSS-ULV thread execution, N={N}, "
        f"{WORKERS} workers, best of {REPEATS})",
        f"bare best {best_untraced:.4f} s   traced best {best_traced:.4f} s "
        f"({overhead_fraction * 100:+.2f}%)   traced+metered best "
        f"{best_metered:.4f} s ({metered_overhead_fraction * 100:+.2f}%)   "
        f"spans {num_spans}",
    )
    record_bench(
        "trace_overhead",
        {
            "n": N,
            "backend": "parallel",
            "n_workers": WORKERS,
            "repeats": REPEATS,
            "num_spans": num_spans,
            "num_tasks": num_tasks,
            "untraced_best": best_untraced,
            "traced_best": best_traced,
            "metered_best": best_metered,
            "overhead_fraction": overhead_fraction,
            "metered_overhead_fraction": metered_overhead_fraction,
            "untraced_samples": untraced,
            "traced_samples": traced,
            "metered_samples": metered,
        },
    )

    # tracing recorded exactly one span per executed task
    assert num_spans == num_tasks > 0
    # loose in-test bounds; the 3% gate lives in check_speedup_trajectory.py
    assert overhead_fraction < 0.10
    assert metered_overhead_fraction < 0.10
