"""Benchmark: sequential vs thread-pool execution of the ULV task graphs.

The paper's central claim is that the ULV factorization, expressed as
``insert_task`` calls, runs correctly and scalably under out-of-order parallel
execution.  This benchmark records the actual wall time of the same recorded
task graph executed (a) sequentially in insertion order and (b) out-of-order
on a thread pool -- once as recorded and once with record-time task
fusion/batching -- for the HSS-ULV, BLR2-ULV and HODLR-ULV task graphs, and
verifies the parallel factors stay bit-identical to the sequential reference.
Both sides of every ratio use best-of-N warmed timings.

Speedups depend on the available core count, BLAS threading and machine load
(on a single-core machine the thread pool can only add overhead), so the wall
times are *reported* but only correctness (and completion) is asserted.
"""

from bench_utils import bench_repeats, full_scale, print_table, record_bench

from repro.experiments.parallel_speedup import format_parallel_speedup, run_parallel_speedup

N = 4096 if full_scale() else 2048
WORKERS = 4
REPEATS = bench_repeats()


def _run():
    rows = run_parallel_speedup(
        n=N, leaf_size=256, max_rank=60, n_workers=WORKERS, repeats=REPEATS
    )
    rows += run_parallel_speedup(
        n=N, leaf_size=256, max_rank=60, n_workers=WORKERS, fusion=True,
        repeats=REPEATS,
    )
    return rows


def test_runtime_parallel_speedup(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table(
        f"Sequential vs parallel task-graph execution "
        f"(N={N}, {WORKERS} workers, best of {REPEATS})",
        format_parallel_speedup(rows),
    )
    record_bench(
        "parallel_speedup",
        {
            "n": N,
            "workers": WORKERS,
            "backend": "thread",
            "repeats": REPEATS,
            "rows": [
                {
                    "algorithm": r.algorithm,
                    "format": r.format,
                    "backend": r.backend,
                    "num_tasks": r.num_tasks,
                    "n_workers": r.n_workers,
                    "requested_workers": r.requested_workers,
                    "nodes": r.nodes,
                    "fusion": r.fusion,
                    "repeats": r.repeats,
                    "seq_seconds": r.seq_seconds,
                    "par_seconds": r.par_seconds,
                    "speedup": r.speedup,
                    "max_abs_diff": r.max_abs_diff,
                    "seq_samples": r.seq_samples,
                    "par_samples": r.par_samples,
                }
                for r in rows
            ],
        },
    )

    assert {r.algorithm for r in rows} == {"HSS-ULV", "BLR2-ULV", "HODLR-ULV"}
    assert {r.format for r in rows} == {"hss", "blr2", "hodlr"}
    tasks = {(r.format, r.fusion): r.num_tasks for r in rows}
    for row in rows:
        assert row.n >= 2048
        assert row.num_tasks > 0
        # the executor never spawns more workers than tasks (or than asked)
        assert 1 <= row.n_workers <= row.requested_workers == WORKERS
        assert row.repeats == REPEATS
        assert row.seq_seconds > 0 and row.par_seconds > 0
        # the recorded raw samples are the evidence behind the best-of claim
        assert len(row.seq_samples) == len(row.par_samples) == REPEATS
        assert min(row.seq_samples) == row.seq_seconds
        assert min(row.par_samples) == row.par_seconds
        # out-of-order execution must not change a single bit of the factors
        assert row.max_abs_diff <= 1e-10
    # fusion only ever shrinks the task census
    for fmt in ("hss", "blr2", "hodlr"):
        assert tasks[(fmt, True)] <= tasks[(fmt, False)]
