"""Ablation benchmarks for the design choices discussed (but not measured) in the paper.

Two ablations called out in DESIGN.md:

1. **DTD vs PTG interface** (paper Sec. 4.2 / 5.3.3).  The paper attributes
   HATRIX-DTD's residual weak-scaling loss to the DTD interface discovering the
   whole task graph on every process, and names the Parameterized Task Graph
   (PTG) interface as the lower-overhead alternative it leaves for future work.
   The ablation simulates the same HSS-ULV task graph under both insertion
   models.

2. **Row-cyclic vs block-cyclic distribution for HATRIX-DTD** (paper Sec. 4.3).
   The paper argues a block-cyclic distribution "would generate too much
   communication between tasks on the same row"; the ablation measures exactly
   that communication volume and the resulting simulated time.
"""

from bench_utils import print_table

from repro.core.hss_ulv_dtd import build_hss_ulv_taskgraph
from repro.distribution.strategies import BlockCyclicDistribution, RowCyclicDistribution
from repro.formats.hss import HSSStructure
from repro.runtime.machine import fugaku_like
from repro.runtime.simulator import simulate


def _dtd_vs_ptg():
    rows = []
    for nodes in (16, 64, 128):
        n = 2048 * nodes
        structure = HSSStructure.synthetic(n, 512, 100)
        graph = build_hss_ulv_taskgraph(structure, nodes=nodes).graph
        machine = fugaku_like(nodes)
        dtd = simulate(graph, machine, policy="async", dtd_mode="dtd")
        ptg = simulate(graph, machine, policy="async", dtd_mode="ptg")
        rows.append((nodes, n, dtd.makespan, ptg.makespan, dtd.runtime_overhead, ptg.runtime_overhead))
    return rows


def test_ablation_dtd_vs_ptg(benchmark):
    rows = benchmark.pedantic(_dtd_vs_ptg, rounds=1, iterations=1)
    body = [f"{'Nodes':<8}{'N':<10}{'DTD time':<12}{'PTG time':<12}{'DTD ovh':<12}{'PTG ovh':<12}", "-" * 66]
    for nodes, n, t_dtd, t_ptg, o_dtd, o_ptg in rows:
        body.append(f"{nodes:<8}{n:<10}{t_dtd:<12.4f}{t_ptg:<12.4f}{o_dtd:<12.4f}{o_ptg:<12.4f}")
    print_table("Ablation: DTD vs PTG task-insertion interface (simulated HSS-ULV)", "\n".join(body))

    # PTG never loses, and its advantage grows with the node count (the DTD
    # discovery overhead grows with the *global* task count).
    for nodes, n, t_dtd, t_ptg, _, _ in rows:
        assert t_ptg <= t_dtd * 1.001
    first_gain = rows[0][2] / rows[0][3]
    last_gain = rows[-1][2] / rows[-1][3]
    assert last_gain >= first_gain


def _row_vs_block_cyclic():
    rows = []
    for nodes in (16, 64, 128):
        n = 2048 * nodes
        structure = HSSStructure.synthetic(n, 512, 100)
        machine = fugaku_like(nodes)
        g_row = build_hss_ulv_taskgraph(
            structure, nodes=nodes, distribution=RowCyclicDistribution(nodes, max_level=structure.max_level)
        ).graph
        g_blk = build_hss_ulv_taskgraph(
            structure, nodes=nodes, distribution=BlockCyclicDistribution(nodes)
        ).graph
        row = simulate(g_row, machine, policy="async")
        blk = simulate(g_blk, machine, policy="async")
        rows.append(
            (nodes, n, row.makespan, blk.makespan, g_row.communication_bytes(), g_blk.communication_bytes())
        )
    return rows


def test_ablation_row_vs_block_cyclic(benchmark):
    rows = benchmark.pedantic(_row_vs_block_cyclic, rounds=1, iterations=1)
    body = [
        f"{'Nodes':<8}{'N':<10}{'row-cyc time':<14}{'blk-cyc time':<14}{'row-cyc MB':<12}{'blk-cyc MB':<12}",
        "-" * 70,
    ]
    for nodes, n, t_row, t_blk, b_row, b_blk in rows:
        body.append(
            f"{nodes:<8}{n:<10}{t_row:<14.4f}{t_blk:<14.4f}{b_row / 1e6:<12.1f}{b_blk / 1e6:<12.1f}"
        )
    print_table("Ablation: row-cyclic vs block-cyclic distribution for HATRIX-DTD", "\n".join(body))

    # The paper's argument (Sec. 4.3): the row-cyclic distribution is the
    # better fit for HSS-ULV with an asynchronous runtime.  At block
    # granularity the communication volumes are close (the paper's stronger
    # claim concerns ScaLAPACK-style *element* block-cyclic distribution of
    # each block), so the assertion is on the simulated factorization time.
    for nodes, n, t_row, t_blk, b_row, b_blk in rows:
        assert t_row <= t_blk * 1.05
    # At scale the row-cyclic distribution is strictly faster.
    assert rows[-1][2] < rows[-1][3]
