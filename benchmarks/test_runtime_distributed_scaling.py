"""Benchmark: distributed weak scaling, measured vs simulated on the same graph.

The headline claim of the paper is *distributed-memory* ULV factorization
driven by a task runtime.  This benchmark runs the weak-scaling sweep of
:mod:`repro.experiments.distributed_weak_scaling`: for each node count the
same recorded task graph executes on the real multi-process backend (forked
workers, owner-computes placement, explicit transfers) and is replayed
through the discrete-event machine simulator, under both the row-cyclic and
the block-cyclic distribution, and under both distributed data planes
(zero-copy ``"shm"`` vs legacy ``"pickle"``).

Wall times depend on the host, so they are reported (and recorded in
``BENCH_runtime.json``); the assertions cover correctness of the accounting:
measured *logical* communication volume must equal the static model of the
graph on every plane, and the shm plane's *physical* (wire) bytes must stay
at least :data:`MIN_COMM_SAVINGS` times below the pickle plane's -- the
factor ``benchmarks/check_speedup_trajectory.py`` gates in CI.
"""

import os

import pytest

from bench_utils import full_scale, print_table, record_bench

from repro.experiments.distributed_weak_scaling import (
    comm_plane_savings,
    format_distributed_weak_scaling,
    run_distributed_weak_scaling,
)

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="distributed backend requires fork (POSIX)"
)

BASE_N = 1024 if full_scale() else 256
NODE_COUNTS = (1, 2, 4)
DATA_PLANES = ("shm", "pickle")

#: Wire-byte advantage the zero-copy plane must keep over the pickle plane
#: (matches the default of ``check_speedup_trajectory.py --min-comm-savings``).
MIN_COMM_SAVINGS = 10.0


def _run():
    return run_distributed_weak_scaling(
        base_n=BASE_N,
        node_counts=NODE_COUNTS,
        leaf_size=64,
        max_rank=24,
        distributions=("row", "block"),
        data_planes=DATA_PLANES,
    )


def test_distributed_weak_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table(
        f"Distributed weak scaling, measured vs simulated (base N={BASE_N})",
        format_distributed_weak_scaling(rows),
    )
    record_bench(
        "distributed_weak_scaling",
        {
            "format": "hss",
            "base_n": BASE_N,
            "node_counts": list(NODE_COUNTS),
            "rows": [
                {
                    "distribution": r.distribution,
                    "nodes": r.nodes,
                    "n": r.n,
                    "num_tasks": r.num_tasks,
                    "measured_seconds": r.measured_seconds,
                    "simulated_makespan": r.simulated_makespan,
                    "measured_messages": r.measured_messages,
                    "measured_bytes": r.measured_bytes,
                    "modeled_bytes": r.modeled_bytes,
                    "data_plane": r.data_plane,
                    "physical_bytes": r.physical_bytes,
                    "mapped_bytes": r.mapped_bytes,
                }
                for r in rows
            ],
        },
    )

    assert len(rows) == 2 * len(NODE_COUNTS) * len(DATA_PLANES)
    for row in rows:
        assert row.measured_seconds > 0
        assert row.simulated_makespan > 0
        # the measured *logical* transfers must match the graph's static
        # communication model on every data plane
        assert row.comm_bytes_match
        if row.nodes == 1:
            assert row.measured_messages == 0
    # more processes must not reduce the communication volume to zero
    multi = [r for r in rows if r.nodes > 1]
    assert any(r.measured_bytes > 0 for r in multi)
    # the zero-copy plane keeps array bytes off the wire: shm segments carry
    # them instead, and every multi-node configuration must clear the savings
    # floor the CI trajectory gate enforces
    for row in multi:
        if row.data_plane == "shm":
            assert row.mapped_bytes > 0
            assert row.physical_bytes < row.measured_bytes
    savings = comm_plane_savings(rows)
    assert set(savings) == {
        (r.distribution, r.nodes) for r in multi
    }
    for key, factor in savings.items():
        assert factor >= MIN_COMM_SAVINGS, (
            f"{key}: zero-copy wire savings {factor:.1f}x below "
            f"{MIN_COMM_SAVINGS}x"
        )