"""Benchmark regenerating Table 1: measured compute/communication complexity.

Paper reference (Table 1):

===================  ======  =============  ==========  ============
Library              Format  Algorithm      Compute     Communication
===================  ======  =============  ==========  ============
DPLASMA / SLATE      Dense   Tile Cholesky  O(N^3)      O(N^3)
LORAPO               BLR     Tile Cholesky  O(N^2)      O(N^3)
STRUMPACK            HSS     ULV            O(N)        O(N^2)
HATRIX-DTD           HSS     ULV            O(N)        O(N)
===================  ======  =============  ==========  ============

The benchmark measures the scaling exponents of total task flops and
inter-process communication volume from the generated task graphs.
"""

from bench_utils import full_scale, print_table

from repro.experiments.table1_complexity import format_table1, run_table1


def _run():
    sizes = (4096, 8192, 16384, 32768) if full_scale() else (2048, 4096, 8192)
    return run_table1(sizes=sizes, leaf_size=256, rank=64, nodes=8)


def test_table1_complexity_survey(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Table 1 (measured): compute / communication scaling exponents", format_table1(rows))

    by_lib = {r.library: r for r in rows}
    # Who-wins shape checks: dense is cubic, HSS-ULV is (near) linear,
    # BLR tile Cholesky sits in between / above.
    assert by_lib["DPLASMA/SLATE (dense)"].compute_exponent > 2.5
    assert by_lib["HATRIX-DTD"].compute_exponent < 1.5
    assert by_lib["STRUMPACK"].compute_exponent < 1.5
    assert by_lib["LORAPO"].compute_exponent > by_lib["HATRIX-DTD"].compute_exponent + 0.5
