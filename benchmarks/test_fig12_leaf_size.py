"""Benchmark regenerating Fig. 12: impact of leaf size (128 nodes, N=262,144).

Paper reference (Fig. 12, Yukawa, rank 100 for the HSS codes, LORAPO max rank
= leaf/2): HATRIX-DTD is the fastest at small leaf sizes and degrades steeply
as the leaf grows (single-core tasks get huge and parallelism disappears);
STRUMPACK is much less sensitive because its distributed dense kernels spread
one block over many processes; LORAPO prefers a mid-range leaf size.
"""

from bench_utils import full_scale, print_table

from repro.experiments.fig12_leaf_size import format_fig12, run_fig12


def _run():
    if full_scale():
        return run_fig12(n=262144, nodes=128, leaf_sizes=(512, 1024, 2048, 4096, 8192))
    return run_fig12(n=65536, nodes=128, leaf_sizes=(512, 1024, 2048, 4096, 8192), max_lorapo_blocks=128)


def test_fig12_leaf_size_sweep(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Fig. 12 (simulated): leaf-size sweep at constant problem size", format_fig12(results))

    hatrix = {r.leaf_size: r.time for r in results if r.code == "HATRIX-DTD"}
    strumpack = {r.leaf_size: r.time for r in results if r.code == "STRUMPACK"}
    lorapo = {r.leaf_size: r.time for r in results if r.code == "LORAPO"}

    leaves = sorted(hatrix)
    # HATRIX-DTD is fastest at the smallest leaf size and degrades with leaf size.
    assert hatrix[leaves[0]] < strumpack[leaves[0]]
    assert hatrix[leaves[-1]] > hatrix[leaves[0]]
    # STRUMPACK tolerates the largest leaf far better than HATRIX-DTD.
    assert strumpack[leaves[-1]] < hatrix[leaves[-1]]
    # LORAPO's optimum is an interior leaf size (not the largest).
    if lorapo:
        lorapo_leaves = sorted(lorapo)
        best = min(lorapo, key=lorapo.get)
        assert best != lorapo_leaves[-1]
