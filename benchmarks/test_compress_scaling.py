"""Benchmark: compression-phase speedup and comm volume of the task graphs.

The construction phase was the last serial phase of the pipeline; this
benchmark measures it running through the DTD runtime for every registered
format (sequential reference vs deferred/parallel/distributed task graphs,
plus the fused parallel and forked process-pool configurations) and records
the wall times, speedups, task counts and distributed communication volume
into ``BENCH_runtime.json``, so the compression-phase trajectory is tracked
across PRs like the factorize/solve numbers.  Both sides of every speedup
use best-of-N warmed timings.

Absolute speedups depend on the machine (python-level task bodies at bench
sizes mostly measure runtime overhead), so only the correctness contracts
are asserted: bit-identity with the sequential ``formats.build_*`` output on
every backend, a distributed comm ledger that matches the static transfer
plan exactly, and a task census that fusion only ever shrinks.
"""

from bench_utils import bench_repeats, full_scale, print_table, record_bench

from repro.experiments.compress_scaling import (
    format_compress_scaling,
    run_compress_scaling,
)

N = 4096 if full_scale() else 1024
BACKENDS = ("deferred", "parallel", "distributed")
#: Swept a second time with fusion forced on (process is fused by default).
FUSED_BACKENDS = ("parallel", "process")
REPEATS = bench_repeats()


def _run():
    result = run_compress_scaling(
        n=N,
        leaf_size=256,
        max_rank=30,
        backends=BACKENDS,
        n_workers=4,
        nodes=2,
        repeats=REPEATS,
    )
    # The fused sweep runs single-worker: on this container the fusion win is
    # the batched/stacked kernel path beating the per-block reference, and
    # extra pool threads only add contention on top of it.
    fused = run_compress_scaling(
        n=N,
        leaf_size=256,
        max_rank=30,
        backends=FUSED_BACKENDS,
        n_workers=1,
        nodes=2,
        fusion=True,
        repeats=REPEATS,
    )
    result["rows"] = list(result["rows"]) + list(fused["rows"])
    return result


def test_compress_scaling(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table(
        f"Task-graph compression scaling (N={N}, best of {REPEATS})",
        format_compress_scaling(result),
    )
    record_bench(
        "compress_scaling",
        {
            "n": result["n"],
            "kernel": result["kernel"],
            "leaf_size": result["leaf_size"],
            "max_rank": result["max_rank"],
            "n_workers": result["n_workers"],
            "nodes": result["nodes"],
            "repeats": result["repeats"],
            "rows": [row.as_dict() for row in result["rows"]],
        },
    )

    rows = result["rows"]
    assert {r.backend for r in rows} == set(BACKENDS) | set(FUSED_BACKENDS)
    formats = {r.format for r in rows}
    assert {"hss", "blr2", "hodlr"} <= formats
    for row in rows:
        assert row.wall_seconds > 0 and row.sequential_seconds > 0
        assert row.tasks > 0
        assert row.repeats == REPEATS
        # the recorded raw samples are the evidence behind the best-of claim
        assert len(row.sequential_samples) == len(row.wall_samples) == REPEATS
        assert min(row.sequential_samples) == row.sequential_seconds
        assert min(row.wall_samples) == row.wall_seconds
        # rows carry the concurrency they actually used
        if row.backend in ("parallel", "process"):
            assert row.n_workers == (1 if row.fusion else 4) and row.nodes == 1
        elif row.backend == "distributed":
            assert row.n_workers == 1 and row.nodes == 2
        else:
            assert row.n_workers == 1 and row.nodes == 1
        # the correctness contract: graph-built compression is bit-identical
        assert row.bit_identical, (row.format, row.backend)
        # distributed comm must match the static transfer plan exactly
        assert row.comm_matches_plan, (row.format, row.backend)
        if row.backend != "distributed":
            assert row.comm_messages == 0
    # fusion only ever shrinks the task census
    tasks = {(r.format, r.backend, r.fusion): r.tasks for r in rows}
    for fmt in ("hss", "blr2", "hodlr"):
        assert tasks[(fmt, "parallel", True)] <= tasks[(fmt, "parallel", False)]
