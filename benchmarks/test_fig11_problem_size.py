"""Benchmark regenerating Fig. 11: growing problem size on a fixed 64 nodes.

Paper reference (Fig. 11, Yukawa, 64 Fugaku nodes, N = 8k..262k):
STRUMPACK's time is almost uniform (communication dominated), HATRIX-DTD
follows an O(N) trend because its runtime overhead grows with the task count,
and LORAPO follows an O(N^2) trend (its curve stops at N=65,536).  At the
largest problem size STRUMPACK overtakes HATRIX-DTD -- the paper's closing
observation (Sec. 5.4).
"""

from bench_utils import full_scale, print_table

from repro.analysis.complexity import fit_power_law
from repro.experiments.fig11_problem_size import format_fig11, run_fig11


def _run():
    sizes = (8192, 16384, 32768, 65536, 131072, 262144) if full_scale() else (8192, 16384, 32768, 65536, 131072)
    return run_fig11(nodes=64, sizes=sizes)


def test_fig11_problem_size_sweep(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Fig. 11 (simulated): problem-size sweep on 64 nodes", format_fig11(results))

    hatrix = {r.n: r.time for r in results if r.code == "HATRIX-DTD"}
    strumpack = {r.n: r.time for r in results if r.code == "STRUMPACK"}
    lorapo = {r.n: r.time for r in results if r.code == "LORAPO"}

    sizes = sorted(hatrix)
    # STRUMPACK is nearly flat; HATRIX-DTD grows ~O(N); LORAPO grows fastest.
    strumpack_exp = fit_power_law(sizes, [strumpack[n] for n in sizes]).exponent
    hatrix_exp = fit_power_law(sizes, [hatrix[n] for n in sizes]).exponent
    lorapo_sizes = sorted(lorapo)
    lorapo_exp = fit_power_law(lorapo_sizes, [lorapo[n] for n in lorapo_sizes]).exponent

    assert strumpack_exp < 0.6
    assert 0.4 < hatrix_exp < 1.3
    assert lorapo_exp > hatrix_exp

    # HATRIX-DTD wins at small N; STRUMPACK catches up (or wins) at the largest N.
    assert hatrix[sizes[0]] < strumpack[sizes[0]]
    assert hatrix[sizes[-1]] / strumpack[sizes[-1]] > 0.6
