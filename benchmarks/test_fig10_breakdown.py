"""Benchmark regenerating Fig. 10: per-worker breakdown of the Yukawa weak scaling.

Paper reference (Fig. 10a/b/c):

* LORAPO -- runtime overhead far exceeds compute-task time and grows with the
  node count (its poor weak scaling is an overhead problem);
* STRUMPACK -- compute time per worker is roughly flat while MPI time grows
  with the node count;
* HATRIX-DTD -- compute-task time per worker is almost flat (perfect weak
  scaling of the work) while the DTD runtime overhead grows with the total
  task count.
"""

from bench_utils import full_scale, print_table

from repro.experiments.fig10_breakdown import format_fig10, run_fig10


def _run():
    return run_fig10(max_nodes=128, lorapo_max_nodes=512 if full_scale() else 128)


def test_fig10_performance_breakdown(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Fig. 10 (simulated): per-worker compute vs overhead/MPI breakdown", format_fig10(rows))

    hatrix = sorted((r for r in rows if r.code == "HATRIX-DTD"), key=lambda r: r.nodes)
    strumpack = sorted((r for r in rows if r.code == "STRUMPACK"), key=lambda r: r.nodes)
    lorapo = sorted((r for r in rows if r.code == "LORAPO"), key=lambda r: r.nodes)

    # Fig. 10c: HATRIX-DTD compute per worker is nearly flat, overhead grows.
    assert hatrix[-1].compute_time < hatrix[0].compute_time * 4
    assert hatrix[-1].overhead_time > hatrix[0].overhead_time * 4

    # Fig. 10b: STRUMPACK MPI time grows with the node count.
    assert strumpack[-1].overhead_time > strumpack[0].overhead_time

    # Fig. 10a: LORAPO overhead exceeds its compute-task time at scale.
    assert lorapo[-1].overhead_time > lorapo[-1].compute_time
