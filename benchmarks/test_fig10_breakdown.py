"""Benchmark regenerating Fig. 10: per-worker breakdown of the Yukawa weak scaling.

Paper reference (Fig. 10a/b/c):

* LORAPO -- runtime overhead far exceeds compute-task time and grows with the
  node count (its poor weak scaling is an overhead problem);
* STRUMPACK -- compute time per worker is roughly flat while MPI time grows
  with the node count;
* HATRIX-DTD -- compute-task time per worker is almost flat (perfect weak
  scaling of the work) while the DTD runtime overhead grows with the total
  task count.
"""

from bench_utils import full_scale, print_table, record_bench

from repro.experiments.fig10_breakdown import (
    format_fig10,
    format_fig10_measured,
    run_fig10,
    run_fig10_measured,
)


def _run():
    return run_fig10(max_nodes=128, lorapo_max_nodes=512 if full_scale() else 128)


def test_fig10_performance_breakdown(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Fig. 10 (simulated): per-worker compute vs overhead/MPI breakdown", format_fig10(rows))

    hatrix = sorted((r for r in rows if r.code == "HATRIX-DTD"), key=lambda r: r.nodes)
    strumpack = sorted((r for r in rows if r.code == "STRUMPACK"), key=lambda r: r.nodes)
    lorapo = sorted((r for r in rows if r.code == "LORAPO"), key=lambda r: r.nodes)

    # Fig. 10c: HATRIX-DTD compute per worker is nearly flat, overhead grows.
    assert hatrix[-1].compute_time < hatrix[0].compute_time * 4
    assert hatrix[-1].overhead_time > hatrix[0].overhead_time * 4

    # Fig. 10b: STRUMPACK MPI time grows with the node count.
    assert strumpack[-1].overhead_time > strumpack[0].overhead_time

    # Fig. 10a: LORAPO overhead exceeds its compute-task time at scale.
    assert lorapo[-1].overhead_time > lorapo[-1].compute_time


def test_fig10_measured_breakdown(benchmark):
    """Measured per-worker breakdowns from real traced executions.

    Every backend's point appears twice -- the measured trace-derived
    breakdown and the simulator's prediction for the same recorded graph --
    and the pairs land in ``BENCH_runtime.json`` so the model can be
    cross-validated against reality across PRs.
    """
    n = 1024 if full_scale() else 512
    rows = benchmark.pedantic(
        lambda: run_fig10_measured(n=n, leaf_size=128, max_rank=30, n_workers=4, nodes=2),
        rounds=1,
        iterations=1,
    )
    print_table(
        f"Fig. 10 (measured vs simulated, n={n}): per-worker breakdowns "
        "of real traced executions",
        format_fig10_measured(rows),
    )
    record_bench("fig10_measured", {"n": n, "rows": [r.as_dict() for r in rows]})

    backends = {"deferred", "parallel", "process", "distributed"}
    assert {r.backend for r in rows} == backends
    # every backend contributes one measured and one simulated row
    assert {(r.backend, r.source) for r in rows} == {
        (b, s) for b in backends for s in ("measured", "simulated")
    }
    for r in rows:
        assert r.num_tasks > 0 and r.n_workers >= 1
        assert r.makespan > 0 and r.compute_time > 0
        if r.source == "measured":
            # the four components reconcile with the wall time: idle is the
            # clamped per-worker remainder, so the sum can only exceed the
            # makespan by measurement jitter
            total = r.compute_time + r.overhead_time + r.comm_time + r.idle_time
            assert total >= 0.9 * r.makespan
            assert total <= 1.5 * r.makespan + 1e-3
        if r.backend != "distributed" and r.source == "measured":
            assert r.comm_time == 0.0 or r.backend == "process"
