"""Benchmark regenerating Fig. 9: weak scaling of factorization time (3 kernels).

Paper reference (Fig. 9a/b/c): on 2..128 Fugaku nodes with N growing from
4,096 to 262,144, HATRIX-DTD is the fastest of the three codes at scale
(up to ~2x faster than STRUMPACK), STRUMPACK grows faster with the node count
because of fork-join MPI overhead, and LORAPO (whose node count grows 4x per
2x in N) is the slowest and scales worst.

The factorization times below come from replaying the generated task graphs on
the Fugaku-like machine model at full paper scale (the simulator is cheap).
"""

from bench_utils import full_scale, print_table

from repro.experiments.fig9_weak_scaling import format_fig9, run_fig9


def _run():
    max_nodes = 128
    lorapo_max_nodes = 512 if full_scale() else 128
    return run_fig9(max_nodes=max_nodes, lorapo_max_nodes=lorapo_max_nodes)


def test_fig9_weak_scaling(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Fig. 9 (simulated): weak scaling of factorization time", format_fig9(results))

    for kernel in {r.kernel for r in results}:
        hatrix = {r.nodes: r.time for r in results if r.code == "HATRIX-DTD" and r.kernel == kernel}
        strumpack = {r.nodes: r.time for r in results if r.code == "STRUMPACK" and r.kernel == kernel}
        lorapo = {r.nodes: r.time for r in results if r.code == "LORAPO" and r.kernel == kernel}

        # HATRIX-DTD beats STRUMPACK at the largest node count (paper: up to 2x).
        assert hatrix[128] < strumpack[128]
        assert strumpack[128] / hatrix[128] > 1.2
        # LORAPO is the slowest code at every common node count.
        for nodes, t in lorapo.items():
            if nodes in hatrix:
                assert t > hatrix[nodes]
        # Weak scaling of HATRIX-DTD is far from the 64x problem growth.
        assert hatrix[128] / hatrix[2] < 30
