"""Benchmark: solve-phase wall time and solves/sec of the SolverService.

The serving story of the reproduction: one cached factorization amortized
over a stream of right-hand sides, drained as batched task-graph solves.
This benchmark records the solve-phase wall time and solves/sec per
(backend, batch size) into ``BENCH_runtime.json`` alongside the
factorization numbers, so the serving throughput trajectory is tracked
across PRs like the factorization speedups.

Absolute throughput depends on the machine, so only correctness (residuals
at direct-solver accuracy) and completion are asserted.
"""

from bench_utils import full_scale, print_table, record_bench

from repro.experiments.solve_throughput import (
    format_solve_throughput,
    run_solve_throughput,
)

N = 2048 if full_scale() else 1024
REQUESTS = 32 if full_scale() else 16
BATCH_SIZES = (1, 4, 16)
BACKENDS = ("reference", "sequential", "parallel")


def _run():
    return run_solve_throughput(
        n=N,
        leaf_size=128,
        max_rank=30,
        requests=REQUESTS,
        batch_sizes=BATCH_SIZES,
        backends=BACKENDS,
        n_workers=4,
    )


def test_solve_throughput(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table(
        f"SolverService throughput (N={N}, {REQUESTS} requests)",
        format_solve_throughput(result),
    )
    record_bench(
        "solve_throughput",
        {
            "n": result["n"],
            "format": result["format"],
            "leaf_size": result["leaf_size"],
            "max_rank": result["max_rank"],
            "requests": result["requests"],
            "factor_seconds": result["factor_seconds"],
            "rows": [row.as_dict() for row in result["rows"]],
        },
    )

    rows = result["rows"]
    assert {r.backend for r in rows} == set(BACKENDS)
    assert {r.batch_size for r in rows} == set(BATCH_SIZES)
    for row in rows:
        assert row.requests == REQUESTS
        assert row.wall_seconds > 0
        assert row.solves_per_sec > 0
        # every served solution must stay at direct-solver accuracy
        assert row.max_residual < 1e-10
