"""Helpers shared by the benchmark modules (scale switch and table printing)."""

from __future__ import annotations

import os

__all__ = ["full_scale", "print_table"]


def full_scale() -> bool:
    """True when the user asked for paper-scale runs (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false", "False")


def print_table(title: str, body: str) -> None:
    """Print a benchmark table so it appears in the pytest output (-s or summary)."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    print(body)
