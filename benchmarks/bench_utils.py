"""Helpers shared by the benchmark modules.

Besides the scale switch and table printing, this module emits the
machine-readable ``BENCH_runtime.json`` artifact: every benchmark that
measures something calls :func:`record_bench` with a plain-dict payload (wall
times, speedups, communication volume, ...), and the entries accumulate into
one JSON file so the performance trajectory can be tracked across PRs and CI
runs.  The default target is a gitignored scratch file (see
:func:`bench_json_path`); the committed baseline is only ever replaced
deliberately, through the ``--refresh`` validation of
``check_speedup_trajectory.py``.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import time
from pathlib import Path
from typing import Any, Dict

from repro.experiments.timing import bench_repeats  # noqa: F401  (re-export)

__all__ = [
    "full_scale",
    "machine_stamp",
    "print_table",
    "record_bench",
    "bench_json_path",
    "bench_repeats",
]


def full_scale() -> bool:
    """True when the user asked for paper-scale runs (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false", "False")


def print_table(title: str, body: str) -> None:
    """Print a benchmark table so it appears in the pytest output (-s or summary)."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    print(body)


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5,
        )
        return out.stdout.strip() if out.returncode == 0 else ""
    except OSError:
        return ""


def machine_stamp() -> Dict[str, Any]:
    """Where and when a section was measured: git SHA, hostname, core count.

    Stamped into every recorded section so single-core-container numbers are
    never conflated with multi-core runs -- the trajectory gate
    (:func:`repro.obs.trajectory.machine_stamp`) compares cross-machine rows
    at the lenient tolerance.  Readers must tolerate its absence (artifacts
    recorded before the stamp existed).
    """
    return {
        "git_sha": _git_sha(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def bench_json_path() -> Path:
    """Location of the benchmark artifact (override with REPRO_BENCH_JSON).

    Defaults to the *gitignored scratch file* ``BENCH_runtime.local.json``,
    never the committed ``BENCH_runtime.json``: a bare ``pytest`` run must
    not silently overwrite the baseline every regression floor is derived
    from (noisy local runs used to land in the diff that way).  Refreshing
    the committed baseline is deliberate: record with
    ``REPRO_BENCH_JSON=/tmp/bench-new.json``, validate with
    ``check_speedup_trajectory.py --refresh``, then copy it over.
    """
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "BENCH_runtime.local.json"


def record_bench(section: str, payload: Dict[str, Any]) -> Path:
    """Merge one benchmark's measurements into ``BENCH_runtime.json``.

    ``section`` names the benchmark (e.g. ``"parallel_speedup"``); ``payload``
    must be JSON-serializable (floats/ints/strings/lists/dicts).  Existing
    sections from earlier benchmarks in the same run are preserved; a corrupt
    or missing file is replaced.  The scale flag is recorded per section, so
    sections measured at different REPRO_FULL settings stay correctly
    labelled, and every section carries the :func:`machine_stamp` of the run
    that measured it.  Returns the artifact path.
    """
    path = bench_json_path()
    data: Dict[str, Any] = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            loaded = json.load(fh)
        if isinstance(loaded, dict):
            data = loaded
    except (OSError, ValueError):
        pass
    data[section] = {"full_scale": full_scale(), "machine": machine_stamp(), **payload}
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path
